"""Mutexes: standard FIFO and lottery-scheduled (paper section 6.1).

The lottery-scheduled mutex extends the CThreads-style lock with two
kernel objects (paper Figure 10):

* a **mutex currency**, funded by ticket transfers from every thread
  blocked on the lock;
* an **inheritance ticket**, issued in the mutex currency and funding
  whichever thread currently holds the lock.

The net effect: the owner executes with its own funding *plus* the
aggregate funding of all waiters, which solves priority inversion the
way priority inheritance does [Sha90] -- a poorly funded owner cannot
crawl while richly funded threads wait behind it.

On release, the owner holds a **lottery among the waiting threads**
(weighted by each waiter's funding captured at block time) to pick the
next owner, moves the inheritance ticket to the winner, revokes the
winner's transfer, and wakes it.  The released thread keeps running --
"the next thread to execute may be the selected waiter or some other
thread; the normal processor lottery will choose fairly based on
relative funding."

Waiting-time and acquisition statistics are recorded per thread so
Figure 11's histograms/ratios can be regenerated.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.core.lottery import hold_lottery
from repro.core.prng import ParkMillerPRNG
from repro.core.transfers import TransferHandle, transfer_funding
from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["MutexBase", "Mutex", "LotteryMutex"]


class _Waiter:
    """Book-keeping for one blocked thread."""

    __slots__ = ("thread", "since", "funding", "transfer")

    def __init__(self, thread: "Thread", since: float, funding: float,
                 transfer: Optional[TransferHandle]) -> None:
        self.thread = thread
        self.since = since
        self.funding = funding
        self.transfer = transfer


class MutexBase:
    """Common owner/statistics machinery for both mutex flavours."""

    def __init__(self, kernel: "Kernel", name: str = "mutex") -> None:
        self.kernel = kernel
        self.name = name
        self.owner: Optional["Thread"] = None
        #: Per-thread acquisition counts (tid -> count).
        self.acquisitions: Dict[int, int] = {}
        #: Per-thread waiting times in ms (tid -> list of waits).
        self.waiting_times: Dict[int, List[float]] = {}
        self._acquired_at: Optional[float] = None
        #: Total time the lock was held (contention diagnostics).
        self.held_time = 0.0

    # -- subclass hooks ---------------------------------------------------------

    def _enqueue_waiter(self, thread: "Thread") -> None:
        raise NotImplementedError

    def _pick_next(self) -> Optional[_Waiter]:
        raise NotImplementedError

    def _on_acquired(self, thread: "Thread") -> None:
        """Funding hand-off hook (inheritance ticket)."""

    def _on_released(self, thread: "Thread") -> None:
        """Funding hand-off hook."""

    def _has_waiters(self) -> bool:
        raise NotImplementedError

    # -- operations (called by the kernel's syscall interpreter) --------------------

    def acquire(self, thread: "Thread") -> Any:
        """Take the lock or block; returns kernel.BLOCK when blocking."""
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        if self.owner is thread:
            raise KernelError(f"thread {thread.name!r} already owns {self.name!r}")
        if self.owner is None:
            self._grant(thread, waited=0.0)
            return None
        self._enqueue_waiter(thread)
        return BLOCK

    def release(self, thread: "Thread") -> None:
        """Give up the lock, handing it to a waiter if any."""
        if self.owner is not thread:
            raise KernelError(
                f"thread {thread.name!r} released {self.name!r} without owning it"
            )
        if self._acquired_at is not None:
            self.held_time += self.kernel.now - self._acquired_at
            self._acquired_at = None
        self._on_released(thread)
        self.owner = None
        waiter = self._pick_next()
        if waiter is None:
            return
        if waiter.transfer is not None:
            waiter.transfer.revoke()
        waited = self.kernel.now - waiter.since
        self._grant(waiter.thread, waited=waited)
        self.kernel.wake(waiter.thread)

    # -- internals -------------------------------------------------------------------

    def _grant(self, thread: "Thread", waited: float) -> None:
        self.owner = thread
        self._acquired_at = self.kernel.now
        self.acquisitions[thread.tid] = self.acquisitions.get(thread.tid, 0) + 1
        self.waiting_times.setdefault(thread.tid, []).append(waited)
        self._on_acquired(thread)

    # -- statistics ----------------------------------------------------------------------

    def mean_waiting_time(self, thread: "Thread") -> float:
        """Average time this thread spent blocked per acquisition (ms)."""
        waits = self.waiting_times.get(thread.tid, [])
        if not waits:
            return 0.0
        return sum(waits) / len(waits)

    def total_acquisitions(self) -> int:
        """Lock grants across all threads."""
        return sum(self.acquisitions.values())

    @property
    def locked(self) -> bool:
        """Whether some thread currently owns the lock."""
        return self.owner is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.owner.name if self.owner else None
        return f"<{type(self).__name__} {self.name!r} owner={owner!r}>"


class Mutex(MutexBase):
    """The standard CThreads-style mutex: FIFO waiters, no funding flow."""

    def __init__(self, kernel: "Kernel", name: str = "mutex") -> None:
        super().__init__(kernel, name)
        self._waiters: Deque[_Waiter] = deque()

    def _enqueue_waiter(self, thread: "Thread") -> None:
        self._waiters.append(_Waiter(thread, self.kernel.now, 0.0, None))

    def _pick_next(self) -> Optional[_Waiter]:
        if not self._waiters:
            return None
        return self._waiters.popleft()

    def _has_waiters(self) -> bool:
        return bool(self._waiters)


class LotteryMutex(MutexBase):
    """Lottery-scheduled mutex with waiter funding inheritance.

    Parameters
    ----------
    kernel:
        Owning kernel (supplies the ledger and wake operations).
    name:
        Used to name the mutex currency (must be unique per ledger).
    prng:
        Stream for release lotteries; defaults to a fresh one.
    """

    def __init__(self, kernel: "Kernel", name: str = "lock",
                 prng: Optional[ParkMillerPRNG] = None) -> None:
        super().__init__(kernel, name)
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        ledger = kernel.ledger
        #: The mutex currency, funded by waiter transfers (Figure 10).
        self.currency = ledger.create_currency(f"mutex:{name}")
        #: The inheritance ticket, moved to each successive owner.
        self.inheritance_ticket = ledger.create_ticket(
            1, currency=self.currency, tag="inheritance"
        )
        self._waiters: List[_Waiter] = []
        #: Release lotteries held (diagnostics).
        self.release_lotteries = 0

    # -- funding hooks ------------------------------------------------------------

    def _on_acquired(self, thread: "Thread") -> None:
        # Move the inheritance ticket to the new owner: it now executes
        # with its own funding plus the aggregate waiter funding backing
        # the mutex currency.
        if self.inheritance_ticket.target is not None:
            self.inheritance_ticket.unfund()
        self.inheritance_ticket.fund(thread)

    def _on_released(self, thread: "Thread") -> None:
        if self.inheritance_ticket.target is thread:
            self.inheritance_ticket.unfund()

    # -- waiter management -----------------------------------------------------------

    def _enqueue_waiter(self, thread: "Thread") -> None:
        # Capture funding before minting the transfer (the mint would
        # dilute the nominal view), then transfer the waiter's rights to
        # the mutex currency.
        funding = thread.nominal_funding()
        transfer = transfer_funding(self.kernel.ledger, thread, self.currency)
        self._waiters.append(
            _Waiter(thread, self.kernel.now, funding, transfer)
        )

    def _pick_next(self) -> Optional[_Waiter]:
        if not self._waiters:
            return None
        if len(self._waiters) == 1:
            winner = self._waiters.pop()
            return winner
        entries = [(w, w.funding) for w in self._waiters]
        if all(f <= 0 for _, f in entries):
            # Unfunded waiters: fall back to FIFO.
            winner = self._waiters.pop(0)
        else:
            winner = hold_lottery(entries, self.prng)
            self._waiters.remove(winner)
        self.release_lotteries += 1
        return winner

    def _has_waiters(self) -> bool:
        return bool(self._waiters)

    def waiter_funding(self) -> float:
        """Aggregate funding currently backing the mutex currency."""
        return self.currency.base_value()
