"""Counting semaphore for the simulated kernel.

Not described in the paper, but required substrate for realistic
multithreaded workloads (bounded buffers in the database server
example) -- and a natural place to show that "a lottery can be used to
allocate resources wherever queueing is necessary" (section 6): the
wake order can be FIFO or funding-weighted lottery.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from repro.core.lottery import hold_lottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["Semaphore"]


class Semaphore:
    """Counting semaphore with FIFO or lottery wake order.

    Parameters
    ----------
    kernel:
        Owning kernel.
    value:
        Initial count (must be non-negative).
    lottery_wakeup:
        When True, ``up`` picks the waiter to wake by a lottery over
        waiter funding instead of FIFO order.
    """

    def __init__(self, kernel: "Kernel", value: int = 0, name: str = "sem",
                 lottery_wakeup: bool = False,
                 prng: Optional[ParkMillerPRNG] = None) -> None:
        if value < 0:
            raise KernelError(f"semaphore value must be non-negative, got {value}")
        self.kernel = kernel
        self.name = name
        self.value = value
        self.lottery_wakeup = lottery_wakeup
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        self._waiters: Deque[Tuple["Thread", float]] = deque()
        self.downs = 0
        self.ups = 0

    def down(self, thread: "Thread") -> Any:
        """P: take a unit or block; returns kernel.BLOCK when blocking."""
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        self.downs += 1
        if self.value > 0:
            self.value -= 1
            return None
        self._waiters.append((thread, self.kernel.now))
        return BLOCK

    def up(self, thread: Optional["Thread"] = None) -> None:
        """V: release a unit, waking one waiter if any."""
        self.ups += 1
        if not self._waiters:
            self.value += 1
            return
        if self.lottery_wakeup and len(self._waiters) > 1:
            entries = [(w, w[0].nominal_funding()) for w in self._waiters]
            if any(f > 0 for _, f in entries):
                chosen = hold_lottery(entries, self.prng)
            else:
                chosen = self._waiters[0]
            self._waiters.remove(chosen)
        else:
            chosen = self._waiters.popleft()
        waiter, _since = chosen
        self.kernel.wake(waiter)

    def waiting(self) -> int:
        """Number of threads currently blocked in down()."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Semaphore {self.name!r} value={self.value} waiting={len(self._waiters)}>"
