"""Synchronization primitives: standard and lottery-scheduled."""

from repro.sync.condition import Condition
from repro.sync.mutex import LotteryMutex, Mutex, MutexBase
from repro.sync.semaphore import Semaphore

__all__ = ["Condition", "LotteryMutex", "Mutex", "MutexBase", "Semaphore"]
