"""SLO feedback loop: ticket inflation driven by wake->dispatch p99.

Two halves:

* :class:`ClassLatencyProbe` -- a recorder sink (the same protocol as
  :class:`repro.metrics.recorder.SchedulerRecorder`) that attributes
  each wake->dispatch latency sample to a *service class* by thread
  name (``fe:<class>:<n>`` by default) and folds it into a bounded
  :class:`~repro.serving.stats.LatencyDigest` per class;
* :class:`SloController` -- a periodic control loop, run as an
  ordinary simulated thread, that compares each class's windowed p99
  against its target and **inflates** the class's lever tickets
  (``Ticket.set_amount``, the paper's section 3.2 primitive) on breach,
  deflating back toward the floor once the class runs comfortably
  under target.

Everything the controller reads (bin deltas at virtual-time epochs)
and everything it writes (ticket amounts) is inside the simulation, so
a controlled run remains a pure function of the seed: the feedback
loop changes *which* deterministic history happens, never determinism
itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.tickets import Ticket
from repro.errors import ReproError
from repro.kernel.syscalls import Sleep
from repro.serving.stats import LatencyDigest, ServingStats, \
    percentile_from_counts

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["ClassLatencyProbe", "SloController", "SloClassState"]

#: Thread-name prefix that marks a class-attributed serving thread:
#: ``fe:<class>:<index>``.
FRONTEND_PREFIX = "fe:"


class ClassLatencyProbe:
    """Recorder sink folding wake->dispatch latency into class digests.

    Class attribution is by thread name (``fe:gold:0`` -> ``gold``),
    resolved once per thread and cached by id; threads may also be
    registered explicitly with :meth:`watch`.  Implements the full
    recorder event surface (audited by lint rule RPR009 via
    ``RECORDER_SINKS``).
    """

    def __init__(self, stats: Optional[ServingStats] = None,
                 prefix: str = FRONTEND_PREFIX,
                 bin_ms: float = 5.0) -> None:
        self.stats = stats
        self.prefix = prefix
        self.bin_ms = float(bin_ms)
        #: Cumulative per-class wake->dispatch digests (the controller
        #: reads windowed deltas out of these).
        self.window: Dict[str, LatencyDigest] = {}
        #: id(thread) -> class name ("" = not a serving thread).
        self._by_tid: Dict[int, str] = {}

    def watch(self, thread: "Thread", service_class: str) -> None:
        """Explicitly attribute ``thread`` to ``service_class``."""
        self._by_tid[id(thread)] = service_class

    def _class_of(self, thread: "Thread") -> str:
        tid = id(thread)
        cached = self._by_tid.get(tid)
        if cached is None:
            name = thread.name
            if name.startswith(self.prefix):
                cached = name[len(self.prefix):].split(":", 1)[0]
            else:
                cached = ""
            self._by_tid[tid] = cached
        return cached

    def digest(self, service_class: str) -> LatencyDigest:
        existing = self.window.get(service_class)
        if existing is None:
            existing = LatencyDigest(self.bin_ms)
            self.window[service_class] = existing
        return existing

    # -- recorder event surface -------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        service_class = self._class_of(thread)
        if not service_class:
            return
        runnable_since = thread.runnable_since
        if runnable_since is None:
            return
        latency = time - runnable_since
        if latency < 0:
            return
        self.digest(service_class).record(latency)
        if self.stats is not None:
            self.stats.record_wake(service_class, latency)

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        pass

    def on_block(self, thread: "Thread", time: float) -> None:
        pass

    def on_wake(self, thread: "Thread", time: float) -> None:
        pass

    def on_exit(self, thread: "Thread", time: float) -> None:
        # Drop the cache entry so a recycled id cannot inherit a class.
        self._by_tid.pop(id(thread), None)

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "prefix": self.prefix,
            "window": {name: digest.snapshot_state()
                       for name, digest in sorted(self.window.items())},
        }


class SloClassState:
    """Per-class controller bookkeeping (target, lever, window base)."""

    def __init__(self, name: str, target_p99_ms: float,
                 levers: List[Ticket], floor: float,
                 ceiling: float) -> None:
        if target_p99_ms <= 0:
            raise ReproError(
                f"SLO target must be positive: {target_p99_ms}")
        if not levers:
            raise ReproError(f"class {name!r} has no lever tickets")
        if floor <= 0 or ceiling < floor:
            raise ReproError(
                f"bad lever bounds for {name!r}: [{floor}, {ceiling}]")
        self.name = name
        self.target_p99_ms = float(target_p99_ms)
        self.levers = list(levers)
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.baseline: Dict[int, int] = {}

    def amount(self) -> float:
        return self.levers[0].amount

    def set_amount(self, amount: float) -> None:
        for lever in self.levers:
            lever.set_amount(amount)

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "name": self.name,
            "target_p99_ms": self.target_p99_ms,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "amount": self.amount(),
            "levers": len(self.levers),
        }


class SloController:
    """Windowed p99 -> multiplicative ticket inflation, per epoch.

    Each control epoch the controller takes the delta of a class's
    wake->dispatch bins since the previous epoch, computes the window
    p99, and multiplies the class's lever tickets by ``inflate`` on a
    breach (clamped to ``ceiling``) or ``deflate`` once p99 falls below
    ``comfort * target`` (clamped back to ``floor``).  Multiplicative
    increase converges geometrically; the comfort band keeps the loop
    from oscillating around the target.
    """

    def __init__(self, probe: ClassLatencyProbe,
                 epoch_ms: float = 500.0,
                 min_samples: int = 20,
                 inflate: float = 1.3,
                 deflate: float = 0.85,
                 comfort: float = 0.5) -> None:
        if epoch_ms <= 0:
            raise ReproError(f"epoch must be positive: {epoch_ms}")
        if inflate <= 1.0 or not 0.0 < deflate < 1.0:
            raise ReproError(
                f"need inflate > 1 > deflate > 0: {inflate}, {deflate}")
        self.probe = probe
        self.epoch_ms = float(epoch_ms)
        self.min_samples = int(min_samples)
        self.inflate = float(inflate)
        self.deflate = float(deflate)
        self.comfort = float(comfort)
        self.classes: Dict[str, SloClassState] = {}
        self.epochs = 0
        #: One row per (epoch, class) decision, in control order.
        self.history: List[Dict[str, Any]] = []

    def add_class(self, name: str, target_p99_ms: float,
                  levers: List[Ticket],
                  floor: Optional[float] = None,
                  ceiling: Optional[float] = None) -> None:
        """Register a class: its SLO target and its lever tickets."""
        if name in self.classes:
            raise ReproError(f"class {name!r} already registered")
        base = levers[0].amount if levers else 0.0
        self.classes[name] = SloClassState(
            name, target_p99_ms, levers,
            floor=base if floor is None else floor,
            ceiling=base * 16.0 if ceiling is None else ceiling)

    def control(self, now_ms: float) -> None:
        """Run one control epoch over all registered classes."""
        self.epochs += 1
        for name in sorted(self.classes):
            state = self.classes[name]
            digest = self.probe.digest(name)
            window = digest.window_since(state.baseline)
            state.baseline = digest.counts_copy()
            samples = sum(window.values())
            old = state.amount()
            if samples < self.min_samples:
                action, p99, new = "idle", 0.0, old
            else:
                p99 = percentile_from_counts(
                    window, digest.bin_ms, 99.0)
                if p99 > state.target_p99_ms:
                    action = "inflate"
                    new = min(state.ceiling, old * self.inflate)
                elif (p99 < state.target_p99_ms * self.comfort
                      and old > state.floor):
                    action = "deflate"
                    new = max(state.floor, old * self.deflate)
                else:
                    action, new = "hold", old
            if new != old:
                state.set_amount(new)
            self.history.append({
                "epoch": self.epochs,
                "time_ms": now_ms,
                "class": name,
                "samples": samples,
                "window_p99_ms": p99,
                "amount_before": old,
                "amount_after": new,
                "action": action,
            })

    def body(self):
        """Thread body running :meth:`control` every ``epoch_ms``."""
        controller = self

        def _body(ctx):
            while True:
                yield Sleep(controller.epoch_ms)
                controller.control(ctx.now)

        return _body

    def recovery_epoch(self, name: str) -> Optional[int]:
        """First epoch at which ``name`` met its target after a breach.

        None if the class never breached or never recovered.
        """
        target = self.classes[name].target_p99_ms
        breached = False
        for row in self.history:
            if row["class"] != name or row["action"] == "idle":
                continue
            if row["window_p99_ms"] > target:
                breached = True
            elif breached:
                return row["epoch"]
        return None

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "epoch_ms": self.epoch_ms,
            "epochs": self.epochs,
            "min_samples": self.min_samples,
            "inflate": self.inflate,
            "deflate": self.deflate,
            "comfort": self.comfort,
            "classes": {name: state.snapshot_state()
                        for name, state in sorted(self.classes.items())},
            "decisions": len(self.history),
        }
