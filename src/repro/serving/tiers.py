"""Multi-tier serving topology: pumps -> frontends -> backends.

Three thread roles per the ROADMAP's heavy-traffic scenario:

* **pump** (one per service class) -- replays an open-loop arrival
  process (:mod:`repro.workloads.arrivals`): sleeps until each
  request's scheduled instant, consults admission, and ``Send``s the
  admitted request to the class ingress port.  Pumps never wait for
  completions, so offered load is independent of service rate.
* **frontend** (per class, funded in the class currency) -- receives
  from the ingress, does a little parsing work, then ``Call``s the
  shared backend port with a **ticket transfer**, so backend workers
  compute with the *client's* funding (paper section 4.6).  On reply
  it records end-to-end latency against the request's scheduled
  arrival instant -- queueing delay anywhere in the pipeline is
  measured, not hidden.
* **backend** (shared pool) -- receive / compute / reply.

Bodies are plain generator factories usable both by the single-kernel
arena (:mod:`repro.serving.arena`) and, via the registered shard
builders, inside :class:`~repro.shard.core.ShardCore` workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.kernel.syscalls import Call, Compute, Receive, Reply, Send, Sleep
from repro.serving.stats import ServingStats
from repro.workloads.arrivals import ArrivalProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

__all__ = [
    "ServiceClassSpec",
    "DEFAULT_CLASSES",
    "capacity_rps",
    "ServingRuntime",
    "pump_body",
    "frontend_body",
    "backend_body",
]


@dataclass(frozen=True)
class ServiceClassSpec:
    """Static description of one service class.

    ``weight`` is the class's fraction of the total offered request
    rate; ``tickets`` its funding (and thus its CPU share and its
    admission price).  ``arrival_params`` is a tuple of (key, value)
    pairs forwarded to the arrival-process constructor (tuple, not
    dict, to keep the spec hashable and JSON-stable).
    """

    name: str
    tickets: float
    weight: float
    arrival_kind: str
    front_ms: float
    back_ms: float
    target_p99_ms: float
    frontends: int = 2
    arrival_params: Tuple[Tuple[str, Any], ...] = ()

    def request_cpu_ms(self) -> float:
        """CPU milliseconds one request of this class consumes."""
        return self.front_ms + self.back_ms


#: The arena's stock three-class mix -- gold/silver/bronze at 4:2:1
#: funding (the paper's canonical ratios), each on a different arrival
#: model so every generator kind is exercised under load.
DEFAULT_CLASSES: Tuple[ServiceClassSpec, ...] = (
    ServiceClassSpec(
        name="gold", tickets=400.0, weight=0.25,
        arrival_kind="poisson", front_ms=0.5, back_ms=4.5,
        target_p99_ms=60.0),
    ServiceClassSpec(
        name="silver", tickets=200.0, weight=0.35,
        arrival_kind="mmpp", front_ms=0.5, back_ms=4.5,
        target_p99_ms=120.0,
        arrival_params=(("burst_factor", 4.0),
                        ("mean_dwell_ms", 1_000.0))),
    ServiceClassSpec(
        name="bronze", tickets=100.0, weight=0.40,
        arrival_kind="diurnal", front_ms=0.5, back_ms=4.5,
        target_p99_ms=240.0,
        arrival_params=(("period_ms", 4_000.0), ("amplitude", 0.6))),
)


def capacity_rps(classes: Tuple[ServiceClassSpec, ...] = DEFAULT_CLASSES,
                 cores: int = 1) -> float:
    """Sustainable requests/second: CPU budget over mean request cost.

    The simulated CPU supplies 1000 ms of compute per second per core;
    the mean request costs the weight-averaged per-class CPU time.
    Offered loads in the experiment are expressed as multiples of this.
    """
    mean_cost_ms = sum(spec.weight * spec.request_cpu_ms()
                       for spec in classes)
    total_weight = sum(spec.weight for spec in classes)
    return 1000.0 * cores * total_weight / mean_cost_ms


class ServingRuntime:
    """Shared mutable context the tier bodies record into.

    One per kernel (the arena's, or one per shard core).  Completion
    recording also forwards to an attached telemetry hub's
    ``on_request_complete`` so the class-keyed end-to-end histogram
    (``repro_request_e2e_ms``) fills without the arena depending on
    telemetry being present.
    """

    def __init__(self, kernel: "Kernel",
                 stats: Optional[ServingStats] = None) -> None:
        self.kernel = kernel
        self.stats = stats if stats is not None else ServingStats()
        #: Optional ClassLatencyProbe; owned by whoever attached it.
        self.probe = None

    def complete(self, service_class: str, e2e_ms: float) -> None:
        self.stats.record_completion(service_class, e2e_ms)
        telemetry = getattr(self.kernel, "telemetry", None)
        if telemetry is not None:
            telemetry.on_request_complete(
                self.kernel, service_class, e2e_ms)


def pump_body(runtime: ServingRuntime, service_class: str,
              process: ArrivalProcess, ingress: Any, count: int,
              admit: Optional[Callable[[float], bool]] = None):
    """Open-loop arrival pump for one class: replay, shed, send.

    ``admit`` is called with each request's *scheduled* arrival
    instant (not the pump's dispatch time), so shedding is a pure
    function of the arrival trace.  The ingress message carries that
    instant; end-to-end latency is measured against it, which charges
    any pump scheduling delay to the system under test.
    """

    def body(ctx):
        for _ in range(count):
            scheduled_ms = process.next_arrival_ms()
            runtime.stats.record_offered(service_class)
            if admit is not None and not admit(scheduled_ms):
                runtime.stats.record_shed(service_class)
                continue
            wait = scheduled_ms - ctx.now
            if wait > 0:
                yield Sleep(wait)
            yield Send(ingress, (service_class, scheduled_ms))

    return body


def frontend_body(runtime: ServingRuntime, service_class: str,
                  ingress: Any, backend: Any, front_ms: float,
                  back_ms: float, transfer_fraction: float = 1.0):
    """Frontend worker: receive, parse, RPC the backend, record e2e."""

    def body(ctx):
        while True:
            request = yield Receive(ingress)
            _, scheduled_ms = request.message
            if front_ms > 0:
                yield Compute(front_ms)
            yield Call(backend, (service_class, scheduled_ms, back_ms),
                       transfer_fraction)
            runtime.complete(service_class, ctx.now - scheduled_ms)

    return body


def backend_body(backend: Any):
    """Backend worker: compute for whatever funding the RPC carried."""

    def body(ctx):
        while True:
            request = yield Receive(backend)
            service_class, _, back_ms = request.message
            if back_ms > 0:
                yield Compute(back_ms)
            yield Reply(request, ("done", service_class))

    return body
