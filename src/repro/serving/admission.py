"""Ticket-priced admission control: deterministic load shedding.

Under open-loop overload *something* must give; the arena gives at the
front door.  Each service class owns a token bucket whose refill rate
is the class's **ticket share** of the provisioned capacity -- tickets
price admission exactly as they price CPU (the paper's "tickets as a
universal resource right", section 3.1).  Refill is computed
analytically at each request's *scheduled* arrival instant, so the
admit/shed decision is a pure function of the arrival trace and the
bucket parameters -- independent of when the pump thread actually got
dispatched -- which keeps the shed pattern bit-identical across
policies, runs, and shard placements.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.errors import ReproError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Analytic token bucket clocked by scheduled arrival instants."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ReproError(f"refill rate must be positive: {rate_per_s}")
        if burst < 1.0:
            raise ReproError(f"burst must admit at least one: {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock_ms = 0.0
        self.admitted = 0
        self.shed = 0

    def admit(self, at_ms: float, cost: float = 1.0) -> bool:
        """Charge ``cost`` tokens at instant ``at_ms``; False = shed.

        ``at_ms`` instants must be non-decreasing per bucket (arrival
        streams are monotone by construction); a stale instant refills
        nothing rather than rewinding the bucket.
        """
        if at_ms > self.clock_ms:
            elapsed_ms = at_ms - self.clock_ms
            self.clock_ms = at_ms
            self.tokens = min(
                self.burst,
                self.tokens + elapsed_ms * self.rate_per_s / 1000.0)
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            return True
        self.shed += 1
        return False

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "tokens": self.tokens,
            "clock_ms": self.clock_ms,
            "admitted": self.admitted,
            "shed": self.shed,
        }


class AdmissionController:
    """Per-class token buckets priced by ticket share of capacity.

    ``capacity_rps * headroom`` requests/second of admission are
    divided among the classes in proportion to their ticket amounts:
    a class holding p% of tickets may sustain p% of the provisioned
    admission rate, with ``burst_s`` seconds of that rate as burst
    allowance.
    """

    def __init__(self, capacity_rps: float, shares: Mapping[str, float],
                 headroom: float = 1.2, burst_s: float = 0.5) -> None:
        if capacity_rps <= 0:
            raise ReproError(f"capacity must be positive: {capacity_rps}")
        if not shares:
            raise ReproError("admission controller needs at least one class")
        total = float(sum(shares.values()))
        if total <= 0:
            raise ReproError(f"ticket shares must sum positive: {total}")
        self.capacity_rps = float(capacity_rps)
        self.headroom = float(headroom)
        self.burst_s = float(burst_s)
        self.buckets: Dict[str, TokenBucket] = {}
        for name in sorted(shares):
            rate = capacity_rps * headroom * float(shares[name]) / total
            burst = max(1.0, rate * burst_s)
            self.buckets[name] = TokenBucket(rate, burst)

    def admit(self, name: str, at_ms: float) -> bool:
        """Admit/shed one request of class ``name`` arriving at ``at_ms``."""
        try:
            bucket = self.buckets[name]
        except KeyError:
            raise ReproError(f"no admission bucket for class {name!r}; "
                             f"known: {sorted(self.buckets)}") from None
        return bucket.admit(at_ms)

    def rows(self) -> List[Dict[str, Any]]:
        """Deterministic per-class admission summary."""
        return [{
            "class": name,
            "rate_per_s": bucket.rate_per_s,
            "admitted": bucket.admitted,
            "shed": bucket.shed,
        } for name, bucket in sorted(self.buckets.items())]

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "capacity_rps": self.capacity_rps,
            "headroom": self.headroom,
            "burst_s": self.burst_s,
            "buckets": {name: bucket.snapshot_state()
                        for name, bucket in sorted(self.buckets.items())},
        }
