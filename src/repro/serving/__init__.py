"""Heavy-traffic serving arena: open-loop overload on the paper's kernel.

The ROADMAP's north-star scenario: deterministic open-loop arrival
streams (:mod:`repro.workloads.arrivals`) drive a multi-tier service --
per-class arrival pumps feeding frontend threads that RPC a backend
pool with ticket transfers -- through admission control priced in
tickets and an SLO feedback loop that inflates a class's tickets when
its wake->dispatch p99 breaches target.  ``experiments/serving_tail``
is the head-to-head harness; ``docs/SERVING.md`` the narrative.
"""

from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.arena import ArenaConfig, ServingArena, build_arena
from repro.serving.shardplan import serving_plan
from repro.serving.slo_controller import ClassLatencyProbe, SloController
from repro.serving.stats import LatencyDigest, ServingStats
from repro.serving.tiers import (DEFAULT_CLASSES, ServiceClassSpec,
                                 ServingRuntime, capacity_rps)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ArenaConfig",
    "ServingArena",
    "build_arena",
    "serving_plan",
    "ClassLatencyProbe",
    "SloController",
    "LatencyDigest",
    "ServingStats",
    "DEFAULT_CLASSES",
    "ServiceClassSpec",
    "ServingRuntime",
    "capacity_rps",
]
