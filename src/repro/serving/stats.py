"""Bounded per-class latency accounting for the serving arena.

The arena replays millions of requests, so per-request samples cannot
be kept (:class:`repro.metrics.histogram.Histogram` stores raw values).
:class:`LatencyDigest` keeps only fixed-width bin counts plus count /
sum / max scalars -- O(distinct bins) memory regardless of traffic --
and answers percentiles by the same nearest-rank-over-bins rule as
:func:`repro.telemetry.aggregate.percentile_from_bins`, returning the
upper bin edge so two runs that fill identical bins report identical
quantiles.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.errors import ReproError

__all__ = ["LatencyDigest", "ServingStats", "percentile_from_counts"]


def percentile_from_counts(counts: Dict[int, int], bin_ms: float,
                           q: float) -> float:
    """Nearest-rank percentile over ``{bin_index: count}``; upper edge.

    Same convention as ``repro.telemetry.aggregate.percentile_from_bins``
    so arena digests and telemetry histograms agree bin-for-bin.
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q * total / 100.0))
    seen = 0
    for index in sorted(counts):
        seen += counts[index]
        if seen >= rank:
            return (index + 1) * bin_ms
    return (max(counts) + 1) * bin_ms  # pragma: no cover - defensive


class LatencyDigest:
    """Fixed-width binned latency accumulator (bounded memory)."""

    def __init__(self, bin_ms: float = 5.0) -> None:
        if bin_ms <= 0:
            raise ReproError(f"bin width must be positive: {bin_ms}")
        self.bin_ms = float(bin_ms)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        #: bin index -> sample count; index = floor(latency / bin_ms).
        self.counts: Dict[int, int] = {}

    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            return
        index = int(latency_ms // self.bin_ms)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (upper bin edge); 0.0 when empty."""
        return percentile_from_counts(self.counts, self.bin_ms, q)

    def mean(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def counts_copy(self) -> Dict[int, int]:
        """Snapshot of the bin counts (for windowed deltas)."""
        return dict(self.counts)

    def window_since(self, baseline: Dict[int, int]) -> Dict[int, int]:
        """Bin counts accumulated since ``baseline`` (a counts_copy)."""
        return {index: count - baseline.get(index, 0)
                for index, count in self.counts.items()
                if count > baseline.get(index, 0)}

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "bin_ms": self.bin_ms,
            "count": self.count,
            "total_ms": self.total_ms,
            "max_ms": self.max_ms,
            "bins": [[index, self.counts[index]]
                     for index in sorted(self.counts)],
        }


class ServingStats:
    """Per-service-class counters and latency digests for one arena.

    Two digests per class: ``wake`` (scheduler wake->dispatch latency,
    fed by the recorder probe) and ``e2e`` (arrival->reply, fed by the
    frontend on completion).  Offered = admitted + shed; completed <=
    admitted (the difference is queued in-flight work at the horizon --
    expected to grow without bound under overload).
    """

    def __init__(self, bin_ms: float = 5.0) -> None:
        self.bin_ms = float(bin_ms)
        self.offered: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        self.completed: Dict[str, int] = {}
        self.e2e: Dict[str, LatencyDigest] = {}
        self.wake: Dict[str, LatencyDigest] = {}

    def ensure_class(self, name: str) -> None:
        if name not in self.offered:
            self.offered[name] = 0
            self.shed[name] = 0
            self.completed[name] = 0
            self.e2e[name] = LatencyDigest(self.bin_ms)
            self.wake[name] = LatencyDigest(self.bin_ms)

    # -- recording hooks --------------------------------------------------

    def record_offered(self, name: str) -> None:
        self.ensure_class(name)
        self.offered[name] += 1

    def record_shed(self, name: str) -> None:
        self.ensure_class(name)
        self.shed[name] += 1

    def record_completion(self, name: str, e2e_ms: float) -> None:
        self.ensure_class(name)
        self.completed[name] += 1
        self.e2e[name].record(e2e_ms)

    def record_wake(self, name: str, latency_ms: float) -> None:
        self.ensure_class(name)
        self.wake[name].record(latency_ms)

    # -- reporting ----------------------------------------------------------

    def classes(self) -> List[str]:
        return sorted(self.offered)

    def row(self, name: str) -> Dict[str, Any]:
        """One deterministic report row for a class."""
        wake = self.wake[name]
        e2e = self.e2e[name]
        return {
            "class": name,
            "offered": self.offered[name],
            "shed": self.shed[name],
            "completed": self.completed[name],
            "wake_p99_ms": wake.percentile(99.0),
            "wake_p999_ms": wake.percentile(99.9),
            "e2e_p99_ms": e2e.percentile(99.0),
            "e2e_p999_ms": e2e.percentile(99.9),
            "e2e_mean_ms": e2e.mean(),
        }

    def rows(self) -> List[Dict[str, Any]]:
        return [self.row(name) for name in self.classes()]

    def merge(self, other: "ServingStats") -> None:
        """Fold another stats object in (per-core -> whole-plan view)."""
        for name in other.classes():
            self.ensure_class(name)
            self.offered[name] += other.offered[name]
            self.shed[name] += other.shed[name]
            self.completed[name] += other.completed[name]
            for mine, theirs in ((self.e2e[name], other.e2e[name]),
                                 (self.wake[name], other.wake[name])):
                for index, count in theirs.counts.items():
                    mine.counts[index] = mine.counts.get(index, 0) + count
                mine.count += theirs.count
                mine.total_ms += theirs.total_ms
                if theirs.max_ms > mine.max_ms:
                    mine.max_ms = theirs.max_ms

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "bin_ms": self.bin_ms,
            "classes": {
                name: {
                    "offered": self.offered[name],
                    "shed": self.shed[name],
                    "completed": self.completed[name],
                    "e2e": self.e2e[name].snapshot_state(),
                    "wake": self.wake[name].snapshot_state(),
                }
                for name in self.classes()
            },
        }
