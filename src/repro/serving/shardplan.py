"""Serving arena on the sharded multicore engine.

``serving_plan`` partitions the arena across cores: each core runs a
complete, core-local service stack -- per-class pumps, frontends, a
backend pool, and (optionally) an SLO controller -- with the class
arrival streams split per core by **derived seeds**, so every core
replays its own decorrelated slice of the offered load and the merged
event stream stays a pure function of the plan (the canonical barrier
order then makes single / inline / mp backends bit-identical, checked
by ``repro.shard verify``).

Channels are homed on their own core, so frontend->backend RPCs keep
full local semantics including ticket transfers; cross-core traffic is
not what this plan measures (the ``mix`` plan covers it).

The body factories below are registered in
:mod:`repro.shard.builders` under ``serving_pump`` /
``serving_frontend`` / ``serving_backend`` / ``serving_slo``.  Each
core's mutable measurement context (stats, probe, admission) is a
:class:`~repro.serving.tiers.ServingRuntime` stashed on the
:class:`~repro.shard.core.ShardCore` at first use; it is measurement
state only -- nothing in the core's checksummed state tree reads it.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.kernel.syscalls import Sleep
from repro.serving.admission import TokenBucket
from repro.serving.slo_controller import ClassLatencyProbe, SloController
from repro.serving.stats import ServingStats
from repro.serving.tiers import (DEFAULT_CLASSES, ServingRuntime,
                                 backend_body, capacity_rps, frontend_body,
                                 pump_body)
from repro.shard.plan import ShardPlan
from repro.workloads.arrivals import make_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.shard.core import ShardCore

__all__ = [
    "serving_plan",
    "serving_runtime_for",
    "build_shard_pump",
    "build_shard_frontend",
    "build_shard_backend",
    "build_shard_slo",
]

#: Decorrelates a core's per-class arrival streams from each other,
#: from other cores', and from the cores' own scheduling PRNGs
#: (``core_seed = seed + 101 * core``).
_STREAM_SEED_STRIDE = 7919


def serving_runtime_for(core: "ShardCore") -> ServingRuntime:
    """The core's serving measurement context, created at first use.

    ShardCore is deliberately not slotted and not snapshot-audited, so
    stashing the runtime on it is safe; the latency probe is attached
    to the core kernel's recorder mux exactly once.
    """
    runtime = getattr(core, "serving_runtime", None)
    if runtime is None:
        runtime = ServingRuntime(core.kernel, ServingStats())
        probe = ClassLatencyProbe(runtime.stats)
        core.kernel.attach_recorder(probe)
        runtime.probe = probe
        core.serving_runtime = runtime
    return runtime


# -- registered body factories (see repro.shard.builders) --------------------


def build_shard_pump(core: "ShardCore", args: Dict[str, Any]):
    """``serving_pump``: one class's open-loop arrival slice."""
    runtime = serving_runtime_for(core)
    process = make_arrivals(
        str(args["kind"]), int(args["seed"]), float(args["rate_per_s"]),
        **dict(args.get("params") or {}))
    admit = None
    admit_rate = float(args.get("admit_rate_per_s", 0.0))
    if admit_rate > 0:
        bucket = TokenBucket(admit_rate,
                             float(args.get("admit_burst", 1.0)))
        admit = bucket.admit
    return pump_body(runtime, str(args["cls"]), process,
                     core.channel(str(args["channel"])),
                     int(args["count"]), admit)


def build_shard_frontend(core: "ShardCore", args: Dict[str, Any]):
    """``serving_frontend``: class worker; RPCs the backend channel."""
    runtime = serving_runtime_for(core)
    return frontend_body(
        runtime, str(args["cls"]),
        core.channel(str(args["ingress"])),
        core.channel(str(args["backend"])),
        float(args.get("front_ms", 0.5)),
        float(args.get("back_ms", 4.5)),
        float(args.get("transfer_fraction", 1.0)))


def build_shard_backend(core: "ShardCore", args: Dict[str, Any]):
    """``serving_backend``: receive / compute / reply pool worker."""
    return backend_body(core.channel(str(args["channel"])))


def build_shard_slo(core: "ShardCore", args: Dict[str, Any]):
    """``serving_slo``: per-core SLO controller thread.

    Levers are the funding tickets of the core's own frontend threads
    (shard spawns fund in base -- there are no per-class currencies on
    a shard core), resolved by name prefix at the controller's first
    dispatch, after every frontend in the plan has been spawned.
    """
    runtime = serving_runtime_for(core)
    controller = SloController(
        runtime.probe,
        epoch_ms=float(args.get("epoch_ms", 250.0)),
        min_samples=int(args.get("min_samples", 10)))
    targets = {str(name): float(target)
               for name, target in dict(args["targets"]).items()}
    core.serving_slo = controller

    def body(ctx):
        for name in sorted(targets):
            levers = [ticket
                      for thread in core.kernel.threads
                      if thread.alive and thread.name.startswith(
                          f"fe:{name}:")
                      for ticket in thread.tickets]
            controller.add_class(name, targets[name], levers)
        while True:
            yield Sleep(controller.epoch_ms)
            controller.control(ctx.now)

    return body


# -- the plan -----------------------------------------------------------------


def serving_plan(seed: int = 2026, cores: int = 2,
                 load_factor: float = 1.5,
                 requests_per_class: int = 200,
                 frontends: int = 2, backends: int = 2,
                 quantum: float = 20.0, epoch_ms: float = 250.0,
                 slo: bool = False,
                 admission: bool = True) -> ShardPlan:
    """Exemplar plan: the serving arena partitioned across ``cores``.

    ``requests_per_class`` is *per core*: each core pumps its own
    derived-seed slice of every class at the single-core offered rate,
    so total offered load scales with the core count exactly as
    capacity does.
    """
    plan = ShardPlan(seed=seed, cores=cores, quantum=quantum,
                     epoch_ms=epoch_ms)
    classes = DEFAULT_CLASSES
    core_capacity = capacity_rps(classes)
    for core in range(cores):
        backend_channel = f"svc-be-c{core}"
        plan.add_channel(backend_channel, home=core)
        for index, spec in enumerate(classes):
            ingress = f"svc-in-{spec.name}-c{core}"
            plan.add_channel(ingress, home=core)
            rate = load_factor * core_capacity * spec.weight
            admit_rate = 0.0
            admit_burst = 1.0
            if admission:
                total = sum(s.tickets for s in classes)
                admit_rate = (core_capacity * 1.2
                              * spec.tickets / total)
                admit_burst = max(1.0, admit_rate * 0.5)
            plan.add_thread(
                core, "serving_pump", f"pump:{spec.name}@c{core}", 50.0,
                cls=spec.name, kind=spec.arrival_kind,
                seed=seed + _STREAM_SEED_STRIDE * (
                    1 + index + core * len(classes)),
                rate_per_s=rate, count=requests_per_class,
                channel=ingress, params=dict(spec.arrival_params),
                admit_rate_per_s=admit_rate, admit_burst=admit_burst)
            for worker in range(frontends):
                plan.add_thread(
                    core, "serving_frontend",
                    f"fe:{spec.name}:c{core}w{worker}", spec.tickets,
                    cls=spec.name, ingress=ingress,
                    backend=backend_channel, front_ms=spec.front_ms,
                    back_ms=spec.back_ms, transfer_fraction=1.0)
        for worker in range(backends):
            plan.add_thread(core, "serving_backend",
                            f"be:c{core}w{worker}", 50.0,
                            channel=backend_channel)
        if slo:
            plan.add_thread(
                core, "serving_slo", f"slo:c{core}", 50.0,
                targets={spec.name: spec.target_p99_ms
                         for spec in classes},
                epoch_ms=epoch_ms, min_samples=10)
    return plan
