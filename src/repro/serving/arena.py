"""Single-kernel serving arena: wire the tiers onto one simulated CPU.

``build_arena`` assembles, on a caller-provided kernel (so any
scheduling policy from ``experiments.common`` can sit underneath):

* one currency + backing ticket per service class (the backing ticket
  is the SLO controller's inflation lever -- raising it raises every
  thread funded in the class currency at once, section 3.3's currency
  abstraction doing the fan-out);
* one ingress port, one arrival pump, and N frontends per class;
* a shared backend port with a worker pool funded in base;
* optionally an admission controller and an SLO feedback thread.

The arena measures; it never decides.  All policy lives in the
scheduler underneath, the admission pricing, and the SLO loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.kernel.ipc import Port
from repro.serving.admission import AdmissionController
from repro.serving.slo_controller import ClassLatencyProbe, SloController
from repro.serving.stats import ServingStats
from repro.serving.tiers import (DEFAULT_CLASSES, ServiceClassSpec,
                                 ServingRuntime, backend_body, capacity_rps,
                                 frontend_body, pump_body)
from repro.workloads.arrivals import make_arrivals

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

__all__ = ["ArenaConfig", "ServingArena", "build_arena"]

#: Per-class arrival streams are decorrelated from each other and from
#: the kernel's own seed by this prime stride.
_CLASS_SEED_STRIDE = 7919


@dataclass(frozen=True)
class ArenaConfig:
    """Everything that determines an arena run, hashable and explicit."""

    seed: int = 2026
    load_factor: float = 1.0
    requests_per_class: int = 500
    classes: Tuple[ServiceClassSpec, ...] = DEFAULT_CLASSES
    backends: int = 3
    transfer_fraction: float = 1.0
    admission: bool = True
    admission_headroom: float = 1.2
    admission_burst_s: float = 0.5
    slo: bool = False
    slo_epoch_ms: float = 250.0
    slo_min_samples: int = 20
    pump_tickets: float = 50.0
    frontend_tickets: float = 100.0
    backend_tickets: float = 50.0
    bin_ms: float = 5.0

    def capacity_rps(self) -> float:
        return capacity_rps(self.classes)

    def class_rate_per_s(self, spec: ServiceClassSpec) -> float:
        """Offered arrival rate for one class (requests/second)."""
        return self.load_factor * self.capacity_rps() * spec.weight

    def horizon_ms(self, margin: float = 1.1) -> float:
        """Virtual time by which every pump has replayed its trace.

        The slowest class finishes its ``requests_per_class`` arrivals
        last; a small margin lets in-flight work at that instant drain
        a little (under overload the backlog never fully drains -- by
        design).
        """
        slowest_s = max(self.requests_per_class / self.class_rate_per_s(spec)
                        for spec in self.classes)
        return slowest_s * 1000.0 * margin


class ServingArena:
    """A built arena: threads are spawned, ports wired, stats shared."""

    def __init__(self, kernel: "Kernel", config: ArenaConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.runtime = ServingRuntime(
            kernel, ServingStats(bin_ms=config.bin_ms))
        self.probe = ClassLatencyProbe(
            self.runtime.stats, bin_ms=config.bin_ms)
        self.runtime.probe = self.probe
        self.admission: Optional[AdmissionController] = None
        self.controller: Optional[SloController] = None
        self.levers: Dict[str, Any] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        kernel, config = self.kernel, self.config
        kernel.attach_recorder(self.probe)
        if config.admission:
            self.admission = AdmissionController(
                config.capacity_rps(),
                {spec.name: spec.tickets for spec in config.classes},
                headroom=config.admission_headroom,
                burst_s=config.admission_burst_s)
        if config.slo:
            self.controller = SloController(
                self.probe, epoch_ms=config.slo_epoch_ms,
                min_samples=config.slo_min_samples)
        backend = Port(kernel, "svc:backend")
        for index, spec in enumerate(config.classes):
            currency = kernel.ledger.create_currency(spec.name)
            backing = kernel.ledger.create_ticket(
                spec.tickets, fund=currency, tag=f"class:{spec.name}")
            self.levers[spec.name] = backing
            ingress = Port(kernel, f"svc:in:{spec.name}")
            process = make_arrivals(
                spec.arrival_kind,
                config.seed + _CLASS_SEED_STRIDE * (index + 1),
                self.config.class_rate_per_s(spec),
                **dict(spec.arrival_params))
            admit = None
            if self.admission is not None:
                controller = self.admission
                admit = (lambda at_ms, _name=spec.name:
                         controller.admit(_name, at_ms))
            kernel.spawn(
                pump_body(self.runtime, spec.name, process, ingress,
                          config.requests_per_class, admit),
                f"pump:{spec.name}", tickets=config.pump_tickets)
            for worker in range(spec.frontends):
                kernel.spawn(
                    frontend_body(self.runtime, spec.name, ingress,
                                  backend, spec.front_ms, spec.back_ms,
                                  config.transfer_fraction),
                    f"fe:{spec.name}:{worker}",
                    tickets=config.frontend_tickets, currency=currency)
            if self.controller is not None:
                self.controller.add_class(
                    spec.name, spec.target_p99_ms, [backing])
        for worker in range(config.backends):
            kernel.spawn(backend_body(backend), f"be:{worker}",
                         tickets=config.backend_tickets)
        if self.controller is not None:
            kernel.spawn(self.controller.body(), "slo:controller",
                         tickets=config.pump_tickets)

    # -- execution and reporting -------------------------------------------

    @property
    def stats(self) -> ServingStats:
        return self.runtime.stats

    def run(self, until_ms: Optional[float] = None) -> None:
        """Advance the kernel to ``until_ms`` (default: the horizon)."""
        horizon = until_ms if until_ms is not None \
            else self.config.horizon_ms()
        self.kernel.run_until(horizon)

    def rows(self) -> List[Dict[str, Any]]:
        return self.stats.rows()

    def snapshot_state(self) -> Dict[str, Any]:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        state: Dict[str, Any] = {
            "stats": self.stats.snapshot_state(),
            "probe": self.probe.snapshot_state(),
        }
        if self.admission is not None:
            state["admission"] = self.admission.snapshot_state()
        if self.controller is not None:
            state["slo"] = self.controller.snapshot_state()
        return state


def build_arena(kernel: "Kernel", config: ArenaConfig) -> ServingArena:
    """Construct a :class:`ServingArena` on ``kernel``."""
    return ServingArena(kernel, config)
