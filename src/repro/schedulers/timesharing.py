"""Decay-usage timesharing baseline (the Mach/Unix standard policy).

This is the "standard Mach timesharing policy" the prototype's overhead
is compared against in section 5.6, and the decay-usage scheme the
introduction cites as poorly understood ([Hel93]): each thread carries a
CPU-usage estimate that recent execution raises and an exponential
decay lowers; effective priority worsens with usage, so interactive
threads bubble up and compute-bound hogs sink.

Model (classic 4.3BSD-flavoured):

* ``usage`` accumulates CPU milliseconds consumed;
* every ``decay_period`` ms, ``usage *= decay`` for all threads;
* effective priority = ``base_priority - usage_weight * usage`` (higher
  is better here, consistent with :mod:`repro.schedulers.priority`);
* ``select`` picks the best effective priority, round-robin among ties
  (insertion order breaks ties deterministically).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["TimesharingPolicy"]


class TimesharingPolicy(SchedulingPolicy):
    """Multilevel-feedback decay-usage scheduler.

    Parameters
    ----------
    decay_period:
        Virtual ms between global usage decays (Unix: 1000).
    decay:
        Multiplier applied to every thread's usage each period.
    usage_weight:
        Priority penalty per accumulated CPU millisecond.
    """

    name = "timesharing"

    def __init__(
        self,
        decay_period: float = 1000.0,
        decay: float = 0.5,
        usage_weight: float = 0.01,
    ) -> None:
        if decay_period <= 0:
            raise SchedulerError("decay_period must be positive")
        if not 0.0 <= decay <= 1.0:
            raise SchedulerError("decay must lie in [0, 1]")
        self.decay_period = decay_period
        self.decay = decay
        self.usage_weight = usage_weight
        self._usage: Dict[int, float] = {}
        self._queue: List[Tuple["Thread", int]] = []
        # Plain integer counter (not itertools.count) so the tie-break
        # sequence position is part of the observable state tree.
        self._seq = 0
        self._kernel: Optional["Kernel"] = None
        #: Number of global decay sweeps performed.
        self.decay_sweeps = 0

    # -- policy interface -----------------------------------------------------

    def attach(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        kernel.engine.call_after(self.decay_period, self._decay_tick,
                                 label="usage-decay")

    def enqueue(self, thread: "Thread") -> None:
        if any(t is thread for t, _ in self._queue):
            raise SchedulerError(f"thread {thread.name!r} already queued")
        self._usage.setdefault(thread.tid, 0.0)
        self._queue.append((thread, self._seq))
        self._seq += 1

    def dequeue(self, thread: "Thread") -> None:
        for index, (queued, _) in enumerate(self._queue):
            if queued is thread:
                del self._queue[index]
                return
        raise SchedulerError(f"thread {thread.name!r} not queued")

    def select(self) -> Optional["Thread"]:
        if not self._queue:
            return None
        best_index = 0
        best_key = self._sort_key(*self._queue[0])
        for index in range(1, len(self._queue)):
            key = self._sort_key(*self._queue[index])
            if key > best_key:
                best_key = key
                best_index = index
        thread, _ = self._queue.pop(best_index)
        return thread

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        self._usage[thread.tid] = self._usage.get(thread.tid, 0.0) + used

    def thread_exited(self, thread: "Thread") -> None:
        self._usage.pop(thread.tid, None)

    def runnable_count(self) -> int:
        return len(self._queue)

    def runnable_threads(self) -> List["Thread"]:
        return [thread for thread, _ in self._queue]

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update({
            "seq": self._seq,
            "decay_sweeps": self.decay_sweeps,
            "usage": {str(tid): value
                      for tid, value in sorted(self._usage.items())},
            "queue_seqs": [seq for _, seq in self._queue],
        })
        return state

    # -- internals ----------------------------------------------------------------

    def effective_priority(self, thread: "Thread") -> float:
        """Base priority minus the decay-usage penalty (higher runs first)."""
        return thread.priority - self.usage_weight * self._usage.get(thread.tid, 0.0)

    def _sort_key(self, thread: "Thread", seq: int) -> Tuple[float, int]:
        # Higher priority first; older queue entries break ties (the -seq
        # makes earlier arrivals compare greater).
        return (self.effective_priority(thread), -seq)

    def _decay_tick(self) -> None:
        for tid in self._usage:
            self._usage[tid] *= self.decay
        self.decay_sweeps += 1
        assert self._kernel is not None
        self._kernel.engine.call_after(self.decay_period, self._decay_tick,
                                       label="usage-decay")
