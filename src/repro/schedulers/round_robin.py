"""Round-robin baseline policy.

The simplest time-sharing discipline: runnable threads form a FIFO
queue; each runs for one quantum and rejoins the tail.  Equal service
regardless of importance -- the behaviour the paper's Figure 7 clients
suffer when the X server round-robins their requests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(SchedulingPolicy):
    """FIFO circular run queue."""

    name = "round-robin"

    def __init__(self) -> None:
        self._queue: Deque["Thread"] = deque()

    def enqueue(self, thread: "Thread") -> None:
        if thread in self._queue:
            raise SchedulerError(f"thread {thread.name!r} already queued")
        self._queue.append(thread)

    def dequeue(self, thread: "Thread") -> None:
        try:
            self._queue.remove(thread)
        except ValueError:
            raise SchedulerError(f"thread {thread.name!r} not queued") from None

    def select(self) -> Optional["Thread"]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def runnable_count(self) -> int:
        return len(self._queue)

    def runnable_threads(self) -> List["Thread"]:
        return list(self._queue)
