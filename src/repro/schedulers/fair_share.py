"""Fair-share scheduler baseline ([Hen84], [Kay88]).

Classical fair-share schedulers grant users/groups *machine shares*
honoured over long periods: a feedback loop periodically compares each
party's actual CPU consumption against its entitlement and adjusts
conventional priorities to push usage toward the shares.  The paper's
critique (sections 1 and 7) is that the feedback operates at a time
scale of minutes -- far too coarse for interactive control -- which is
exactly the behaviour this model exhibits when compared against the
lottery in the ablation benchmarks.

Model: each thread belongs to a share **group** with a configured
share.  Every ``adjust_period`` ms the scheduler recomputes a per-group
priority from the (exponentially decayed) usage-to-share ratio; between
adjustments, selection is strict priority with round-robin ties --
i.e. the feedback is only as responsive as the adjustment period.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["FairSharePolicy"]


class FairSharePolicy(SchedulingPolicy):
    """Group fair-share with periodic priority adjustment.

    Parameters
    ----------
    adjust_period:
        Virtual ms between feedback adjustments (fair-share schedulers
        historically used seconds-to-minutes; default 1000 ms).
    decay:
        Exponential decay applied to group usage at each adjustment.
    """

    name = "fair-share"

    def __init__(self, adjust_period: float = 1000.0, decay: float = 0.9) -> None:
        if adjust_period <= 0:
            raise SchedulerError("adjust_period must be positive")
        self.adjust_period = adjust_period
        self.decay = decay
        self._shares: Dict[str, float] = {}
        self._usage: Dict[str, float] = {}
        self._group_priority: Dict[str, float] = {}
        self._group_of: Dict[int, str] = {}
        self._queue: List[Tuple["Thread", int]] = []
        # Plain integer counter (not itertools.count) so the tie-break
        # sequence position is part of the observable state tree.
        self._seq = 0
        self._kernel: Optional["Kernel"] = None
        self.adjustments = 0

    # -- configuration -----------------------------------------------------------

    def set_share(self, group: str, share: float) -> None:
        """Declare a group's machine share (relative weight)."""
        if share <= 0:
            raise SchedulerError(f"share must be positive, got {share}")
        self._shares[group] = share
        self._usage.setdefault(group, 0.0)
        self._group_priority.setdefault(group, 0.0)

    def assign(self, thread: "Thread", group: str) -> None:
        """Place a thread in a share group (must exist)."""
        if group not in self._shares:
            raise SchedulerError(f"unknown share group {group!r}")
        self._group_of[thread.tid] = group

    # -- policy interface ------------------------------------------------------------

    def attach(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        kernel.engine.call_after(self.adjust_period, self._adjust_tick,
                                 label="fair-share-adjust")

    def enqueue(self, thread: "Thread") -> None:
        if any(t is thread for t, _ in self._queue):
            raise SchedulerError(f"thread {thread.name!r} already queued")
        if thread.tid not in self._group_of:
            # Unassigned threads get a default group with unit share.
            if "_default" not in self._shares:
                self.set_share("_default", 1.0)
            self._group_of[thread.tid] = "_default"
        self._queue.append((thread, self._seq))
        self._seq += 1

    def dequeue(self, thread: "Thread") -> None:
        for index, (queued, _) in enumerate(self._queue):
            if queued is thread:
                del self._queue[index]
                return
        raise SchedulerError(f"thread {thread.name!r} not queued")

    def select(self) -> Optional["Thread"]:
        if not self._queue:
            return None
        best_index = 0
        best_key = self._sort_key(*self._queue[0])
        for index in range(1, len(self._queue)):
            key = self._sort_key(*self._queue[index])
            if key > best_key:
                best_key = key
                best_index = index
        thread, _ = self._queue.pop(best_index)
        return thread

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        group = self._group_of.get(thread.tid, "_default")
        self._usage[group] = self._usage.get(group, 0.0) + used

    def thread_exited(self, thread: "Thread") -> None:
        self._group_of.pop(thread.tid, None)

    def runnable_count(self) -> int:
        return len(self._queue)

    def runnable_threads(self) -> List["Thread"]:
        return [thread for thread, _ in self._queue]

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update({
            "seq": self._seq,
            "adjustments": self.adjustments,
            "shares": dict(sorted(self._shares.items())),
            "usage": dict(sorted(self._usage.items())),
            "group_priority": dict(sorted(self._group_priority.items())),
            "group_of": {str(tid): group
                         for tid, group in sorted(self._group_of.items())},
            "queue_seqs": [seq for _, seq in self._queue],
        })
        return state

    # -- internals ----------------------------------------------------------------------

    def _sort_key(self, thread: "Thread", seq: int) -> Tuple[float, int]:
        group = self._group_of.get(thread.tid, "_default")
        return (self._group_priority.get(group, 0.0), -seq)

    def _adjust_tick(self) -> None:
        """The feedback step: usage/share ratio becomes (negated) priority."""
        total_share = sum(self._shares.values()) or 1.0
        for group, share in sorted(self._shares.items()):
            entitled = share / total_share
            ratio = self._usage.get(group, 0.0) / max(entitled, 1e-9)
            self._group_priority[group] = -ratio
            self._usage[group] = self._usage.get(group, 0.0) * self.decay
        self.adjustments += 1
        assert self._kernel is not None
        self._kernel.engine.call_after(self.adjust_period, self._adjust_tick,
                                       label="fair-share-adjust")
