"""Scheduling-policy interface the simulated kernel dispatches through.

The kernel is policy-agnostic: it calls ``enqueue`` when a thread
becomes runnable, ``select`` to choose the next thread to run (the
selected thread is *removed* from the policy's structure for the
duration of its quantum, matching Mach's run-queue behaviour -- which is
also what deactivates a lottery thread's tickets while it runs), and
``quantum_end`` when the thread comes off the CPU, reporting how much
of its quantum it used.  Policies that need the clock or an event
engine (decay-usage recomputation) get them via ``attach``.
"""

from __future__ import annotations

import abc
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["SchedulingPolicy"]


class SchedulingPolicy(abc.ABC):
    """Abstract base for all scheduling policies."""

    #: Human-readable policy name, used in experiment reports.
    name: str = "abstract"

    #: True for policies that drive ticket (de)activation through
    #: run-queue membership; lets the invariant sanitizer know whether
    #: ``thread.competing`` must mirror queue membership.
    uses_tickets: bool = False

    def attach(self, kernel: "Kernel") -> None:
        """Called once when the kernel adopts this policy.

        Policies needing periodic work (priority decay) schedule their
        timers here.  The default does nothing.
        """

    @abc.abstractmethod
    def enqueue(self, thread: "Thread") -> None:
        """A thread became runnable; admit it to the run queue."""

    @abc.abstractmethod
    def dequeue(self, thread: "Thread") -> None:
        """A runnable (not running) thread left the queue (blocked/exited)."""

    @abc.abstractmethod
    def select(self) -> Optional["Thread"]:
        """Choose and remove the next thread to run; None leaves the CPU idle."""

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        """The thread came off the CPU after consuming ``used`` of ``quantum``.

        Called *after* the kernel has re-enqueued a still-runnable
        thread, so ticket-activation state is settled when policies
        (e.g. compensation) inspect funding.  The default does nothing.
        """

    def thread_exited(self, thread: "Thread") -> None:
        """The thread terminated; release any per-thread policy state."""

    def runnable_count(self) -> int:
        """Number of threads currently admitted (diagnostics)."""
        return len(self.runnable_threads())

    def runnable_threads(self) -> List["Thread"]:
        """The threads currently admitted, in a deterministic order.

        Consumed by the invariant sanitizer to cross-check run-queue
        membership against thread state and ticket activation.  The
        default (no structure to report) is an empty list.
        """
        return []

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The base tree records the policy name and the run-queue order by
        thread id; policies with internal state (PRNG position, passes,
        usage counters) must extend this so that two runs of the same
        recipe can be compared field-for-field.
        """
        return {
            "policy": self.name,
            "queue": [thread.tid for thread in self.runnable_threads()],
        }
