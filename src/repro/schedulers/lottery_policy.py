"""The lottery scheduling policy (the paper's contribution, section 4).

Wires the core mechanisms into the kernel's policy interface:

* the run queue is a :class:`~repro.core.lottery.ListLottery` with the
  prototype's move-to-front heuristic (or an O(log n)
  :class:`~repro.core.lottery.TreeLottery`);
* run-queue entry/exit activates/deactivates the thread's tickets,
  propagating through the currency graph (section 4.4);
* each ``select`` holds one lottery over the runnable threads' current
  base-unit funding;
* quantum accounting grants compensation tickets to threads that
  under-use their quanta (section 4.5).

Threads whose funding is zero cannot win (the paper's guarantee is for
clients holding tickets); by default a zero-funding run queue falls
back to FIFO order so simulations without any funded thread still make
progress -- disable with ``zero_funding_fallback=False`` to get the
strict starve-the-unfunded semantics.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.compensation import CompensationManager
from repro.core.lottery import ListLottery, TreeLottery
from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.errors import EmptyLotteryError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["LotteryPolicy", "set_full_refresh"]

#: Escape hatch for the perf equivalence suite: force the tree path to
#: revalue every member per select (the pre-dirty-tracking behaviour)
#: instead of only the members whose funding was invalidated.
_full_refresh = False


def set_full_refresh(enabled: bool) -> bool:
    """Toggle full per-select revaluation; returns the previous setting."""
    global _full_refresh
    previous = _full_refresh
    _full_refresh = bool(enabled)
    return previous


class LotteryPolicy(SchedulingPolicy):
    """Proportional-share scheduling by lottery.

    Parameters
    ----------
    ledger:
        The ticket/currency registry funding the threads.
    prng:
        Winning-ticket source; defaults to a fresh Park-Miller stream.
    move_to_front:
        Apply the prototype's move-to-front heuristic (section 4.2).
    use_tree:
        Use the O(log n) partial-sum tree instead of the list.  Stored
        values are kept current by funding-invalidation watchers: a
        select only revalues the members whose funding actually changed
        since the last draw (``static_funding`` promises values never
        change off-queue and skips the tracking entirely).
    compensation:
        Grant compensation tickets (section 4.5).  The ablation
        experiment turns this off to reproduce the 1:5 distortion.
    zero_funding_fallback:
        Run unfunded threads FIFO instead of starving them.
    """

    name = "lottery"
    uses_tickets = True

    def __init__(
        self,
        ledger: Ledger,
        prng: Optional[ParkMillerPRNG] = None,
        move_to_front: bool = True,
        use_tree: bool = False,
        static_funding: bool = False,
        compensation: bool = True,
        zero_funding_fallback: bool = True,
    ) -> None:
        self.ledger = ledger
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        self._use_tree = use_tree
        self._static_funding = static_funding
        self._zero_funding_fallback = zero_funding_fallback
        self.compensation: Optional[CompensationManager] = (
            CompensationManager(ledger) if compensation else None
        )
        if use_tree:
            self._tree: Optional[TreeLottery["Thread"]] = TreeLottery()
            self._list: Optional[ListLottery["Thread"]] = None
            # Insertion-ordered membership index with O(1) removal (a
            # dict used as an ordered set; a list's remove() made every
            # dequeue O(n), defeating the tree's O(log n) draws).
            self._members: dict = {}
        else:
            self._tree = None
            self._list = ListLottery(
                value_of=lambda t: t.funding(), move_to_front=move_to_front
            )
        #: Members whose funding was invalidated since their stored tree
        #: value was last pushed (ordered set; tree mode only).  Fed by
        #: the holders' funding watchers, drained by :meth:`select`.
        self._dirty: dict = {}
        #: Lotteries actually held (overhead accounting).
        self.lotteries_held = 0
        #: Times the zero-funding FIFO fallback fired.
        self.fallback_selections = 0
        #: Optional observer called with a dict per lottery draw
        #: (winner, nominal funding, total at stake, clients examined,
        #: PRNG position, fallback flag).  Installed by
        #: ``repro.telemetry``; must not mutate scheduling state.
        self.draw_hook = None

    # -- policy interface -----------------------------------------------------

    def enqueue(self, thread: "Thread") -> None:
        thread.start_competing()
        if self._tree is not None:
            # funding() below recomputes (competing just changed), so
            # the stored value is fresh; only invalidations arriving
            # after this point need to dirty the member.
            self._tree.add(thread, thread.funding())
            self._members[thread] = None
            if not self._static_funding:
                thread.watch_funding(self._mark_dirty)
        else:
            assert self._list is not None
            self._list.add(thread)

    def dequeue(self, thread: "Thread") -> None:
        if self._tree is not None:
            self._tree.remove(thread)
            self._members.pop(thread, None)
            # Unhook before stop_competing: the deactivations below must
            # not re-dirty a member that no longer has a tree slot.
            thread.unwatch_funding()
            self._dirty.pop(thread, None)
        else:
            assert self._list is not None
            self._list.remove(thread)
        thread.stop_competing()

    def _mark_dirty(self, holder: "Thread") -> None:
        self._dirty[holder] = None

    def select(self) -> Optional["Thread"]:
        structure = self._tree if self._tree is not None else self._list
        assert structure is not None
        if len(structure) == 0:
            return None
        if self._tree is not None and not self._static_funding:
            if _full_refresh:
                # Escape hatch (perf equivalence suite): revalue every
                # member, the pre-dirty-tracking behaviour.
                for member in self._members:  # repro: noqa[RPR010] -- equivalence-test escape hatch
                    self._tree.set_value(member, member.funding())
                self._dirty.clear()
            elif self._dirty:
                # Only members whose funding actually changed since
                # their stored value was pushed; Fenwick nodes are pure
                # functions of the stored values, so skipping unchanged
                # members leaves the tree bit-identical to a full
                # refresh.
                for member in self._dirty:  # repro: noqa[RPR010] -- O(invalidated), not O(n): only watcher-flagged members
                    self._tree.set_value(member, member.funding())
                self._dirty.clear()
        fallback = False
        examined_before = structure.stats.comparisons
        try:
            winner = structure.draw(self.prng)
            self.lotteries_held += 1
        except EmptyLotteryError:
            if not self._zero_funding_fallback:
                return None
            winner = self._first_member()
            self.fallback_selections += 1
            fallback = True
        draw = None
        if self.draw_hook is not None:
            # Funding totals must be read before dequeue deactivates the
            # winner's tickets; nominal funding is activation-independent.
            draw = {
                "winner": winner,
                "funding": winner.nominal_funding(),
                "total": structure.total(),
                "runnable": len(structure),
                "examined": structure.stats.comparisons - examined_before,
                "fallback": fallback,
                "prng_state": self.prng.state,
            }
        self.dequeue(winner)
        if self.compensation is not None:
            # A fresh quantum begins: outstanding compensation expires
            # (section 4.5: "until the thread starts its next quantum").
            self.compensation.on_quantum_start(winner)
        if draw is not None:
            self.draw_hook(draw)
        return winner

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        if self.compensation is not None:
            self.compensation.on_quantum_end(thread, used, quantum)

    def thread_exited(self, thread: "Thread") -> None:
        if self.compensation is not None:
            self.compensation.on_holder_removed(thread)

    def runnable_count(self) -> int:
        structure = self._tree if self._tree is not None else self._list
        assert structure is not None
        return len(structure)

    def runnable_threads(self) -> list:
        if self._tree is not None:
            return list(self._members)  # insertion (enqueue) order
        assert self._list is not None
        return self._list.clients()

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update({
            "prng": self.prng.snapshot_state(),
            "use_tree": self._use_tree,
            "static_funding": self._static_funding,
            "zero_funding_fallback": self._zero_funding_fallback,
            "lotteries_held": self.lotteries_held,
            "fallback_selections": self.fallback_selections,
            "compensation": (None if self.compensation is None
                             else self.compensation.snapshot_state()),
        })
        if self._tree is not None:
            state["structure"] = self._tree.snapshot_state(
                key=lambda t: t.tid)
        else:
            assert self._list is not None
            state["structure"] = self._list.snapshot_state(
                key=lambda t: t.tid)
        return state

    # -- internals ----------------------------------------------------------------

    def _first_member(self) -> "Thread":
        if self._tree is not None:
            return next(iter(self._members))
        assert self._list is not None
        return self._list.head()

    def draw_stats(self):
        """Search-length statistics of the underlying structure."""
        structure = self._tree if self._tree is not None else self._list
        assert structure is not None
        return structure.stats
