"""Scheduling policies: the lottery and the baselines it is compared to."""

from repro.schedulers.base import SchedulingPolicy
from repro.schedulers.fair_share import FairSharePolicy
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.schedulers.priority import FixedPriorityPolicy
from repro.schedulers.round_robin import RoundRobinPolicy
from repro.schedulers.stride import STRIDE1, StridePolicy
from repro.schedulers.timesharing import TimesharingPolicy

__all__ = [
    "FairSharePolicy",
    "FixedPriorityPolicy",
    "LotteryPolicy",
    "RoundRobinPolicy",
    "STRIDE1",
    "SchedulingPolicy",
    "StridePolicy",
    "TimesharingPolicy",
]
