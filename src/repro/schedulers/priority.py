"""Fixed-priority baseline policy.

A task with higher priority gets *absolute* precedence over lower
priority (the conventional scheme the paper's introduction criticizes:
no encapsulation, no proportional control, starvation of the low end).
Equal-priority threads are served round-robin, as in Mach's
fixed-priority class (paper footnote 9).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["FixedPriorityPolicy"]


class FixedPriorityPolicy(SchedulingPolicy):
    """Strict priority levels; higher ``thread.priority`` wins."""

    name = "fixed-priority"

    def __init__(self) -> None:
        self._levels: Dict[int, Deque["Thread"]] = {}

    def enqueue(self, thread: "Thread") -> None:
        level = self._levels.setdefault(thread.priority, deque())
        if thread in level:
            raise SchedulerError(f"thread {thread.name!r} already queued")
        level.append(thread)

    def dequeue(self, thread: "Thread") -> None:
        level = self._levels.get(thread.priority)
        if level is None:
            raise SchedulerError(f"thread {thread.name!r} not queued")
        try:
            level.remove(thread)
        except ValueError:
            raise SchedulerError(f"thread {thread.name!r} not queued") from None

    def select(self) -> Optional["Thread"]:
        for priority in sorted(self._levels, reverse=True):
            level = self._levels[priority]
            if level:
                return level.popleft()
        return None

    def runnable_count(self) -> int:
        return sum(len(level) for level in self._levels.values())

    def runnable_threads(self) -> List["Thread"]:
        return [thread
                for priority in sorted(self._levels, reverse=True)
                for thread in self._levels[priority]]
