"""Stride scheduling: the deterministic proportional-share counterpart.

The paper's related/future work points toward deterministic
proportional-share mechanisms; stride scheduling is the authors' own
follow-up (Waldspurger & Weihl, 1995) and is included here both as an
extension and as the variance ablation A3: a lottery's absolute error
over ``n`` allocations is O(sqrt(n)) while stride's is O(1).

Mechanism: each client has ``stride = STRIDE1 / tickets`` and a
``pass`` value; the client with the minimum pass runs, then its pass
advances by its stride (scaled by the fraction of the quantum actually
used, so partial quanta are charged fairly).  Global pass/stride
bookkeeping lets clients leave and rejoin without gaming the queue.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SchedulerError
from repro.schedulers.base import SchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["StridePolicy", "STRIDE1"]

#: Fixed-point stride constant (large so integer-ish strides stay precise).
STRIDE1 = float(1 << 20)


class StridePolicy(SchedulingPolicy):
    """Deterministic proportional share via per-client pass values.

    Parameters
    ----------
    tickets_of:
        Callable giving a thread's ticket count.  Defaults to the
        thread's nominal funding (so the same funding used for lottery
        experiments drives stride), falling back to 1 when unfunded.
    """

    name = "stride"

    def __init__(self, tickets_of: Optional[Callable[["Thread"], float]] = None) -> None:
        self._tickets_of = tickets_of or self._default_tickets
        self._heap: List[Tuple[float, int, "Thread"]] = []
        self._entries: Dict[int, Tuple[float, int]] = {}  # tid -> (pass, seq)
        self._removed: Dict[int, bool] = {}
        # Plain integer counter (not itertools.count) so the tie-break
        # sequence position is part of the observable state tree.
        self._seq = 0
        # Global virtual time bookkeeping.
        self._global_tickets = 0.0
        self._global_pass = 0.0
        #: tid -> remaining pass offset saved when a client leaves.
        self._remain: Dict[int, float] = {}
        self._strides: Dict[int, float] = {}
        #: Pass value of the most recently selected client (the base the
        #: post-quantum charge is applied to).
        self._pending_pass = 0.0

    @staticmethod
    def _default_tickets(thread: "Thread") -> float:
        funding = thread.nominal_funding()
        return funding if funding > 0 else 1.0

    # -- policy interface ------------------------------------------------------------

    def enqueue(self, thread: "Thread") -> None:
        if thread.tid in self._entries:
            raise SchedulerError(f"thread {thread.name!r} already queued")
        tickets = self._tickets_of(thread)
        if tickets <= 0:
            tickets = 1.0
        stride = STRIDE1 / tickets
        self._strides[thread.tid] = stride
        offset = self._remain.pop(thread.tid, stride)
        pass_value = self._global_pass + offset
        seq = self._seq
        self._seq += 1
        self._entries[thread.tid] = (pass_value, seq)
        heapq.heappush(self._heap, (pass_value, seq, thread))
        self._global_tickets += tickets

    def dequeue(self, thread: "Thread") -> None:
        entry = self._entries.pop(thread.tid, None)
        if entry is None:
            raise SchedulerError(f"thread {thread.name!r} not queued")
        pass_value, _ = entry
        # Save how far ahead of global pass the client was, so a rejoin
        # cannot reset its debt (standard stride leave/join rule).
        self._remain[thread.tid] = max(pass_value - self._global_pass, 0.0)
        tickets = STRIDE1 / self._strides[thread.tid]
        self._global_tickets = max(self._global_tickets - tickets, 0.0)
        # Lazy heap deletion: stale entries are skipped in select().

    def select(self) -> Optional["Thread"]:
        while self._heap:
            pass_value, seq, thread = heapq.heappop(self._heap)
            current = self._entries.get(thread.tid)
            if current is None or current != (pass_value, seq):
                continue  # stale
            del self._entries[thread.tid]
            tickets = STRIDE1 / self._strides[thread.tid]
            self._global_tickets = max(self._global_tickets - tickets, 0.0)
            self._remain[thread.tid] = max(pass_value - self._global_pass, 0.0)
            self._pending_pass = pass_value
            return thread
        return None

    def quantum_end(self, thread: "Thread", used: float, quantum: float,
                    still_runnable: bool) -> None:
        """Advance the client's pass by its stride, scaled by usage.

        The kernel re-enqueues a still-runnable thread *before* this
        hook, so we adjust the freshly queued entry's pass.
        """
        fraction = min(max(used / quantum, 0.0), 1.0) if quantum > 0 else 1.0
        charge = self._strides.get(thread.tid, STRIDE1) * fraction
        if self._global_tickets > 0:
            self._global_pass += (STRIDE1 / self._global_tickets) * fraction
        if thread.tid in self._entries:
            old_pass, _ = self._entries[thread.tid]
            base = getattr(self, "_pending_pass", old_pass)
            new_pass = base + charge
            seq = self._seq
            self._seq += 1
            self._entries[thread.tid] = (new_pass, seq)
            heapq.heappush(self._heap, (new_pass, seq, thread))
        else:
            # Blocked: bank the advanced pass for the rejoin.
            base = getattr(self, "_pending_pass", self._global_pass)
            self._remain[thread.tid] = max(base + charge - self._global_pass, 0.0)

    def thread_exited(self, thread: "Thread") -> None:
        self._entries.pop(thread.tid, None)
        self._remain.pop(thread.tid, None)
        self._strides.pop(thread.tid, None)

    def runnable_count(self) -> int:
        return len(self._entries)

    def runnable_threads(self) -> List["Thread"]:
        # Filter lazy-deleted heap entries; sort on (pass, seq) so the
        # unique seq settles ties before Thread would be compared.
        live: List["Thread"] = []
        for pass_value, seq, thread in sorted(self._heap,
                                              key=lambda e: (e[0], e[1])):
            if self._entries.get(thread.tid) == (pass_value, seq):
                live.append(thread)
        return live

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update({
            "seq": self._seq,
            "global_tickets": self._global_tickets,
            "global_pass": self._global_pass,
            "pending_pass": self._pending_pass,
            "entries": {str(tid): {"pass": entry[0], "seq": entry[1]}
                        for tid, entry in sorted(self._entries.items())},
            "remain": {str(tid): value
                       for tid, value in sorted(self._remain.items())},
            "strides": {str(tid): value
                        for tid, value in sorted(self._strides.items())},
        })
        return state
