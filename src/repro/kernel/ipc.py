"""Ports, messages, and synchronous RPC with ticket transfers.

This is the analogue of the prototype's modified ``mach_msg`` (section
4.6).  A **port** is a message queue with a set of receiver threads.
Three operations exist:

* ``send`` -- asynchronous enqueue, no resource-right movement;
* ``call`` -- synchronous RPC: the client blocks, and its resource
  rights are *transferred* to the server side until the reply.  If a
  server thread is already waiting in ``receive``, the transfer funds
  that thread directly; otherwise the transfer is attached to the
  queued request and claimed by whichever server thread eventually
  receives it (the paper's "list that is checked by the server thread
  when it attempts to receive").  Ports created with a **currency**
  instead fund that currency, which backs every server thread at once --
  the footnote-4 variant the paper recommends for servers with fewer
  threads than incoming messages;
* ``reply`` -- destroys the transfer and wakes the client.

Response times (request creation to reply) are recorded per port, since
Figure 7's evaluation reports both throughput and response-time ratios.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from repro.core.tickets import Currency
from repro.core.transfers import TransferHandle, transfer_funding
from repro.errors import IpcError
from repro.kernel.thread import ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["Port", "Request"]

#: Injection point for the determinism-race sanitizer (see
#: :mod:`repro.analysis.races`); assigned by ``tracker.activate()``
#: under ``REPRO_SANITIZE=1``.  Declared barrier-shared in
#: ``repro/analysis/shardmap.toml``.
_race_tracker = None

#: Injection point for the sharded multicore engine (see
#: :mod:`repro.shard.router`); assigned by ``ShardRouter.install()``
#: while a sharded run is executing.  Consulted on the reply/delivery
#: paths to divert wakes aimed at :class:`RemoteClient` stubs (callers
#: blocked on another core) into barrier payloads.  Declared
#: barrier-shared in ``repro/analysis/shardmap.toml``.
_shard_router = None


def _race_seam(name: str):
    """Barrier-seam context for legal cross-kernel wakes (no-op when
    the sanitizer is inactive)."""
    if _race_tracker is not None and _race_tracker.active:
        return _race_tracker.seam(name)
    return nullcontext()


class Request:
    """One message in flight, with reply plumbing for RPCs.

    For ``call``-origin requests, ``client`` is the blocked caller and
    ``transfer`` the live ticket transfer funding the server side; for
    ``send``-origin messages both are None and ``reply`` is invalid.
    """

    __slots__ = (
        "port",
        "message",
        "client",
        "transfer",
        "transfer_fraction",
        "created_at",
        "replied_at",
        "reply_value",
        "delivery_attempts",
    )

    def __init__(self, port: "Port", message: Any,
                 client: Optional["Thread"], transfer_fraction: float = 1.0) -> None:
        self.port = port
        self.message = message
        self.client = client
        self.transfer: Optional[TransferHandle] = None
        self.transfer_fraction = transfer_fraction
        self.created_at = port.kernel.now
        self.replied_at: Optional[float] = None
        self.reply_value: Any = None
        #: Delivery attempts so far (> 1 only under an injected
        #: message-drop window with retransmission).
        self.delivery_attempts = 0

    @property
    def is_rpc(self) -> bool:
        """True when a client is blocked awaiting a reply."""
        return self.client is not None

    def reply(self, value: Any) -> None:
        """Complete the RPC: revoke the transfer and wake the client."""
        if self.client is None:
            raise IpcError("reply to a send-origin message")
        if self.replied_at is not None:
            raise IpcError("request already replied to")
        self.replied_at = self.port.kernel.now
        self.reply_value = value
        if self.transfer is not None:
            self.transfer.revoke()
            self.transfer = None
        self.port._record_response(self.replied_at - self.created_at)
        telemetry = getattr(self.port.kernel, "telemetry", None)
        if telemetry is not None:
            telemetry.on_ipc_reply(self.port, self)
        if self.client.state is ThreadState.EXITED:
            # The caller was killed (node crash / injected fault) while
            # the RPC was in flight: drop the reply on the floor.  The
            # transfer above is still revoked, so no rights leak.
            self.port.dead_replies += 1
            return
        # Wake via client.kernel (not port.kernel): the client may have
        # been re-placed on another node while blocked.  Crossing into
        # the client's kernel is a declared barrier seam.  Under a
        # sharded run the client may be a remote-caller stub whose wake
        # must travel as a barrier payload instead of a direct call.
        with _race_seam("ipc.reply"):
            router = _shard_router
            if router is not None and router.intercept_wake(self.client,
                                                            value):
                return
            self.client.kernel.wake(self.client, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "rpc" if self.is_rpc else "send"
        return f"<Request {kind} port={self.port.name!r} msg={self.message!r}>"


class Port:
    """A named message queue with lottery-funded RPC semantics.

    Parameters
    ----------
    kernel:
        Owning kernel (supplies the clock, ledger, and wake operations).
    name:
        Diagnostic name.
    currency:
        Optional server currency.  When given, client transfers fund
        this currency (accelerating *all* server threads backed by it)
        instead of the single receiving thread.
    """

    def __init__(self, kernel: "Kernel", name: str,
                 currency: Optional[Currency] = None) -> None:
        self.kernel = kernel
        self.name = name
        self.currency = currency
        self._queue: Deque[Request] = deque()
        self._receivers: Deque["Thread"] = deque()
        kernel.ports.append(self)
        # -- statistics ------------------------------------------------------
        self.messages_sent = 0
        self.calls_made = 0
        self.replies_sent = 0
        #: Replies whose client had been killed while the RPC was in
        #: flight (the reply is discarded, the transfer still revoked).
        self.dead_replies = 0
        self.response_times: List[float] = []

    # -- client side --------------------------------------------------------------

    def send(self, sender: "Thread", message: Any) -> None:
        """Asynchronous message; never blocks, transfers nothing."""
        self.messages_sent += 1
        request = Request(self, message, client=None)
        telemetry = getattr(self.kernel, "telemetry", None)
        if telemetry is not None:
            telemetry.on_ipc_send(self, request, rpc=False)
        self._deliver_or_queue(request)

    def call(self, client: "Thread", message: Any,
             transfer_fraction: float = 1.0) -> Any:
        """Synchronous RPC: block the client, transferring its rights.

        Returns the kernel BLOCK sentinel (the caller thread resumes
        with the reply value when the server responds).
        """
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        self.calls_made += 1
        request = Request(self, message, client=client,
                          transfer_fraction=transfer_fraction)
        telemetry = getattr(self.kernel, "telemetry", None)
        if telemetry is not None:
            telemetry.on_ipc_send(self, request, rpc=True)
        if self.currency is not None:
            # Footnote-4 variant: fund the server currency immediately,
            # accelerating every thread it backs.
            request.transfer = transfer_funding(
                self.kernel.ledger, client, self.currency, transfer_fraction
            )
        self._deliver_or_queue(request)
        return BLOCK

    # -- server side -----------------------------------------------------------------

    def receive(self, server: "Thread") -> Any:
        """Dequeue a message, or block until one arrives.

        Claims the pending ticket transfer of an already-queued RPC
        (paper: the transfer list checked at receive time).
        """
        from repro.kernel.kernel import BLOCK  # local import: cycle guard

        if self._queue:
            request = self._queue.popleft()
            self._claim_transfer(request, server)
            return request
        self._receivers.append(server)
        return BLOCK

    # -- internals -----------------------------------------------------------------------

    def _deliver_or_queue(self, request: Request) -> None:
        """Delivery entry point; the fault seam sits in front of it.

        During an injected drop/delay window the kernel carries an
        ``ipc_faults`` model whose ``intercept`` may consume the
        delivery (dropping it, or rescheduling ``_deliver_now`` after
        a backoff/delay); otherwise delivery happens immediately.
        """
        faults = getattr(self.kernel, "ipc_faults", None)
        if faults is not None and faults.intercept(self, request):
            return
        self._deliver_now(request)

    def _deliver_now(self, request: Request) -> None:
        request.delivery_attempts += 1
        if self._receivers:
            server = self._receivers.popleft()
            self._claim_transfer(request, server)
            # Wake via server.kernel (not self.kernel): receivers, like
            # clients, may have been re-placed while blocked.  Crossing
            # into the receiver's kernel is a declared barrier seam.
            with _race_seam("ipc.deliver"):
                router = _shard_router
                if router is not None and router.intercept_wake(server,
                                                                request):
                    return
                server.kernel.wake(server, request)
        else:
            # For RPCs with no waiting server and no server currency, the
            # transfer stays latent on the request until a receive claims
            # it (the paper's pending-transfer list).
            self._queue.append(request)

    def _claim_transfer(self, request: Request, server: "Thread") -> None:
        """Attach the client's rights to the receiving server thread.

        Zero-fraction requests transfer nothing and skip the funding
        machinery entirely; cross-core calls materialized from barrier
        payloads rely on this (their :class:`RemoteClient` stubs are
        not ticket holders, and cores own separate ledgers).
        """
        if (not request.is_rpc or self.currency is not None
                or request.transfer_fraction <= 0.0):
            return
        assert request.client is not None
        if request.transfer is None:
            request.transfer = transfer_funding(
                self.kernel.ledger, request.client, server,
                request.transfer_fraction,
            )
        else:
            request.transfer.retarget(server)

    def _record_response(self, elapsed: float) -> None:
        self.replies_sent += 1
        self.response_times.append(elapsed)

    # -- statistics ---------------------------------------------------------------------------

    def mean_response_time(self) -> float:
        """Average RPC response time seen on this port (ms)."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def queue_depth(self) -> int:
        """Messages waiting for a receiver right now."""
        return len(self._queue)

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        In-flight IPC is part of the checkpointed universe: queued
        requests (message repr, caller, attempts, transfer presence),
        blocked receivers, and the per-port statistics all have to
        match between two runs of the same recipe.
        """
        def describe(request: Request) -> dict:
            return {
                "message": repr(request.message),
                "client": None if request.client is None
                else request.client.tid,
                "is_rpc": request.is_rpc,
                "transfer_fraction": request.transfer_fraction,
                "has_transfer": request.transfer is not None,
                "created_at": request.created_at,
                "delivery_attempts": request.delivery_attempts,
            }

        return {
            "name": self.name,
            "currency": self.currency.name if self.currency else None,
            "queued": [describe(r) for r in self._queue],
            "receivers": [t.tid for t in self._receivers],
            "messages_sent": self.messages_sent,
            "calls_made": self.calls_made,
            "replies_sent": self.replies_sent,
            "dead_replies": self.dead_replies,
            "responses": len(self.response_times),
            "response_time_sum": sum(self.response_times),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Port {self.name!r} queued={len(self._queue)}"
            f" receivers={len(self._receivers)}>"
        )
