"""Threads and tasks for the simulated microkernel.

Mirrors the Mach structure the prototype scheduled: a **task** is a
resource container that (optionally) owns a ticket **currency**, and
**threads** within the task are funded by tickets denominated in that
currency (paper Figure 3: task currencies backed by user currencies,
thread tickets issued in task currencies).

A :class:`Thread` is a :class:`~repro.core.tickets.TicketHolder`, so
the entire currency machinery -- activation on run-queue entry,
compensation tickets, transfers while blocked -- applies to it without
special cases.  The thread's *body* is a generator yielding
:mod:`~repro.kernel.syscalls` objects.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

from repro.core.tickets import Currency, Ledger, Ticket, TicketHolder
from repro.errors import ThreadStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.syscalls import Syscall

__all__ = ["Thread", "Task", "ThreadState", "ThreadBody", "ThreadContext"]

#: Injection point for the determinism-race sanitizer: set to the
#: :data:`repro.analysis.races.tracker` singleton by its ``activate()``
#: (under ``REPRO_SANITIZE=1``), never imported from here -- the kernel
#: zone must not depend on the analysis package.  Declared
#: barrier-shared in ``repro/analysis/shardmap.toml``.
_race_tracker = None

#: A thread body: called with a ThreadContext, returns a syscall generator.
ThreadBody = Callable[["ThreadContext"], Generator["Syscall", Any, None]]


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    CREATED = "created"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class ThreadContext:
    """Per-thread view handed to the body generator.

    Gives bodies access to the clock and their own identity without
    exposing the whole kernel mutation surface.
    """

    __slots__ = ("kernel", "thread")

    def __init__(self, kernel: "Kernel", thread: "Thread") -> None:
        self.kernel = kernel
        self.thread = thread

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.kernel.now


class Task:
    """A resource container owning threads and (optionally) a currency.

    If ``currency`` is provided, threads spawned into this task are
    funded by tickets denominated in it, so user-level inflation inside
    the task is insulated from the rest of the system (section 3.3).
    """

    __slots__ = ("name", "currency", "threads")

    def __init__(self, name: str, currency: Optional[Currency] = None) -> None:
        self.name = name
        self.currency = currency
        self.threads: List["Thread"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = self.currency.name if self.currency else None
        return f"<Task {self.name!r} currency={cur!r} threads={len(self.threads)}>"

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "name": self.name,
            "currency": self.currency.name if self.currency else None,
            "threads": [thread.tid for thread in self.threads],
        }


class Thread(TicketHolder):
    """A schedulable thread of control.

    Attributes of note:

    * ``funding_currency`` -- the denomination of this thread's own
      tickets, consulted by :mod:`repro.core.transfers` when the thread
      blocks on an RPC or mutex;
    * ``cpu_time`` -- total virtual CPU milliseconds consumed;
    * ``dispatches`` -- number of lotteries won (times dispatched);
    * ``priority`` -- consulted only by the fixed-priority and
      decay-usage baseline policies.
    """

    # ``pinned`` is assigned by the cluster layer (node placement) and
    # read with getattr(..., False); it needs a slot here because
    # TicketHolder-rooted instances carry no __dict__.
    __slots__ = ("tid", "task", "kernel", "priority", "state", "_context",
                 "_generator", "_started", "_pending_send",
                 "current_syscall", "cpu_time", "dispatches",
                 "voluntary_yields", "created_at", "exited_at",
                 "runnable_since", "pinned")

    def __init__(
        self,
        name: str,
        task: Task,
        body: ThreadBody,
        kernel: "Kernel",
        priority: int = 0,
    ) -> None:
        super().__init__(name)
        # Engine-scoped allocation: re-executing the same recipe on a
        # fresh engine reproduces the same tids, which is what lets
        # checkpoint state trees and replay streams compare bit-exactly.
        self.tid = kernel.engine.next_tid()
        self.task = task
        self.kernel = kernel
        self.priority = priority
        self.state = ThreadState.CREATED
        self.funding_currency: Optional[Currency] = task.currency

        self._context = ThreadContext(kernel, self)
        self._generator: Generator["Syscall", Any, None] = body(self._context)
        self._started = False
        #: Value to deliver into the generator on the next advance
        #: (e.g. an RPC reply).
        self._pending_send: Any = None
        #: The in-progress syscall (a partially consumed Compute).
        self.current_syscall: Optional["Syscall"] = None

        # -- accounting ----------------------------------------------------
        self.cpu_time = 0.0
        self.dispatches = 0
        self.voluntary_yields = 0
        self.created_at = kernel.now
        self.exited_at: Optional[float] = None
        #: Set when the thread last became runnable; used for
        #: scheduling-latency measurements.
        self.runnable_since: Optional[float] = None

        task.threads.append(self)

        if _race_tracker is not None and _race_tracker.active:
            # Attach-time ownership: this thread belongs to the kernel
            # that constructed it until a migration seam re-tags it.
            _race_tracker.tag(self, kernel)

    # -- generator stepping ---------------------------------------------------

    def advance(self) -> Optional["Syscall"]:
        """Step the body to its next syscall; None means the body returned."""
        if self.state is ThreadState.EXITED:
            raise ThreadStateError(f"thread {self.name!r} already exited")
        try:
            if not self._started:
                self._started = True
                return next(self._generator)
            value, self._pending_send = self._pending_send, None
            return self._generator.send(value)
        except StopIteration:
            return None

    def deliver(self, value: Any) -> None:
        """Stage a value (RPC reply, received message) for the next advance."""
        self._pending_send = value

    # -- state transitions --------------------------------------------------------

    def transition(self, new_state: ThreadState) -> None:
        """Move between lifecycle states, validating the edge."""
        valid = {
            ThreadState.CREATED: {ThreadState.RUNNABLE, ThreadState.EXITED},
            ThreadState.RUNNABLE: {ThreadState.RUNNING, ThreadState.EXITED},
            ThreadState.RUNNING: {
                ThreadState.RUNNABLE,
                ThreadState.BLOCKED,
                ThreadState.EXITED,
            },
            ThreadState.BLOCKED: {ThreadState.RUNNABLE, ThreadState.EXITED},
            ThreadState.EXITED: set(),
        }
        if new_state not in valid[self.state]:
            raise ThreadStateError(
                f"thread {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        if _race_tracker is not None and _race_tracker.active:
            # Lifecycle transitions are the mutation surface every
            # scheduling path funnels through; trap cross-owner ones.
            _race_tracker.check(self, f"transition to {new_state.value}")
        self.state = new_state

    # -- funding convenience ----------------------------------------------------------

    def fund_from(self, ledger: Ledger, amount: float,
                  currency: Optional[Currency] = None) -> Ticket:
        """Issue a ticket funding this thread.

        Denominated in the task currency when one exists (and no
        explicit ``currency`` is given), else in base.
        """
        denomination = currency or self.task.currency or ledger.base
        self.funding_currency = denomination
        return ledger.create_ticket(amount, currency=denomination, fund=self)

    @property
    def alive(self) -> bool:
        """True until the thread's body returns or Exit is processed."""
        return self.state is not ThreadState.EXITED

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The body generator's frame is deliberately NOT captured (no
        pickling of live objects); restore re-executes the recipe, so
        the tree only needs to *describe* execution progress -- state,
        accounting, and the in-progress syscall's remaining time --
        precisely enough that two runs can be diffed field-for-field.
        """
        state = super().snapshot_state()
        syscall = self.current_syscall
        if syscall is None:
            syscall_desc = None
        else:
            syscall_desc = {"kind": type(syscall).__name__}
            remaining = getattr(syscall, "remaining", None)
            if remaining is not None:
                syscall_desc["remaining"] = remaining
        state.update({
            "tid": self.tid,
            "task": self.task.name,
            "state": self.state.value,
            "priority": self.priority,
            "funding_currency": (self.funding_currency.name
                                 if self.funding_currency else None),
            "started": self._started,
            "current_syscall": syscall_desc,
            "cpu_time": self.cpu_time,
            "dispatches": self.dispatches,
            "voluntary_yields": self.voluntary_yields,
            "created_at": self.created_at,
            "exited_at": self.exited_at,
            "runnable_since": self.runnable_since,
        })
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.name!r} tid={self.tid} {self.state.value}"
            f" cpu={self.cpu_time:.1f}ms>"
        )

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other: object) -> bool:
        return self is other
