"""Syscall objects yielded by simulated thread bodies.

A thread body is a Python generator that *yields* instances of these
classes; the kernel interprets each one, advances virtual time, blocks
or resumes the thread, and (for call-style syscalls) sends the result
back into the generator.  The vocabulary mirrors what the paper's
prototype exercises: CPU consumption, voluntary yielding (the
compensation-ticket experiments), sleeping, synchronous Mach-style RPC
with ticket transfer, and lottery-scheduled mutex operations.

Example body::

    def client(ctx):
        while True:
            yield Compute(5.0)                       # 5 ms of CPU
            reply = yield Call(server_port, "query") # blocking RPC
            yield Sleep(10.0)                        # 10 ms off-CPU
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.kernel.ipc import Port
    from repro.sync.mutex import MutexBase
    from repro.sync.semaphore import Semaphore

__all__ = [
    "Syscall",
    "Compute",
    "YieldCPU",
    "Sleep",
    "Exit",
    "Send",
    "Call",
    "Receive",
    "Reply",
    "AcquireMutex",
    "ReleaseMutex",
    "SemaphoreDown",
    "SemaphoreUp",
    "WaitCondition",
    "SignalCondition",
    "BroadcastCondition",
]


class Syscall:
    """Base class for everything a thread body may yield."""

    __slots__ = ()


class Compute(Syscall):
    """Consume ``duration`` milliseconds of CPU time.

    The kernel charges this against the thread's quantum; a Compute that
    outlives the quantum is resumed (with its remaining duration) the
    next time the thread wins a lottery.
    """

    __slots__ = ("duration", "remaining")

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise KernelError(f"compute duration must be non-negative: {duration}")
        self.duration = float(duration)
        self.remaining = float(duration)


class YieldCPU(Syscall):
    """Voluntarily give up the rest of the quantum but stay runnable.

    This is how the section 4.5 experiment's thread B behaves: it uses
    20 ms of a 100 ms quantum and yields, earning a compensation ticket.
    """

    __slots__ = ()


class Sleep(Syscall):
    """Block off-CPU for ``duration`` milliseconds of virtual time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise KernelError(f"sleep duration must be non-negative: {duration}")
        self.duration = float(duration)


class Exit(Syscall):
    """Terminate the thread (returning from the generator does the same)."""

    __slots__ = ()


class Send(Syscall):
    """Asynchronously enqueue ``message`` on ``port`` (never blocks)."""

    __slots__ = ("port", "message")

    def __init__(self, port: "Port", message: Any) -> None:
        self.port = port
        self.message = message


class Call(Syscall):
    """Synchronous RPC: send ``message`` to ``port`` and block for the reply.

    This is the modified ``mach_msg`` of section 4.6: while blocked, the
    caller's resource rights are transferred to the server side (to the
    waiting server thread directly, or onto the port's pending-transfer
    list that a later Receive collects).  The yield evaluates to the
    server's reply value.
    """

    __slots__ = ("port", "message", "transfer_fraction")

    def __init__(self, port: "Port", message: Any, transfer_fraction: float = 1.0) -> None:
        self.port = port
        self.message = message
        self.transfer_fraction = transfer_fraction


class Receive(Syscall):
    """Block until a message arrives on ``port``.

    Evaluates to a :class:`repro.kernel.ipc.Request`; for Call-origin
    messages the request carries the reply handle and the client's
    ticket transfer, which funds the receiving thread until it replies.
    """

    __slots__ = ("port",)

    def __init__(self, port: "Port") -> None:
        self.port = port


class Reply(Syscall):
    """Complete an RPC: deliver ``value`` to the blocked caller.

    Destroys the transfer ticket and wakes the client.  Never blocks.
    """

    __slots__ = ("request", "value")

    def __init__(self, request: Any, value: Any) -> None:
        self.request = request
        self.value = value


class AcquireMutex(Syscall):
    """Acquire a mutex, blocking (with ticket transfer for the
    lottery-scheduled variant) if it is held."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "MutexBase") -> None:
        self.mutex = mutex


class ReleaseMutex(Syscall):
    """Release a held mutex, waking one waiter (chosen by lottery for
    the lottery-scheduled variant).  Never blocks."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: "MutexBase") -> None:
        self.mutex = mutex


class SemaphoreDown(Syscall):
    """P operation: decrement or block until positive."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: "Semaphore") -> None:
        self.semaphore = semaphore


class SemaphoreUp(Syscall):
    """V operation: increment, waking one waiter.  Never blocks."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: "Semaphore") -> None:
        self.semaphore = semaphore


class WaitCondition(Syscall):
    """Atomically release the condition's mutex and block until signalled.

    On wake-up the mutex has been *re-acquired on the thread's behalf*
    (the signal path routes the waiter through the mutex's acquisition
    queue), so the body resumes holding the lock, as with POSIX
    condition variables.
    """

    __slots__ = ("condition",)

    def __init__(self, condition: Any) -> None:
        self.condition = condition


class SignalCondition(Syscall):
    """Wake one thread waiting on the condition.  Never blocks."""

    __slots__ = ("condition",)

    def __init__(self, condition: Any) -> None:
        self.condition = condition


class BroadcastCondition(Syscall):
    """Wake every thread waiting on the condition.  Never blocks."""

    __slots__ = ("condition",)

    def __init__(self, condition: Any) -> None:
        self.condition = condition
