"""Simulated microkernel: threads, tasks, dispatch loop, and IPC."""

from repro.kernel.ipc import Port, Request
from repro.kernel.kernel import BLOCK, Kernel
from repro.kernel.syscalls import (
    AcquireMutex,
    Call,
    Compute,
    Exit,
    Receive,
    ReleaseMutex,
    Reply,
    SemaphoreDown,
    SemaphoreUp,
    Send,
    Sleep,
    Syscall,
    YieldCPU,
)
from repro.kernel.thread import Task, Thread, ThreadContext, ThreadState

__all__ = [
    "AcquireMutex",
    "BLOCK",
    "Call",
    "Compute",
    "Exit",
    "Kernel",
    "Port",
    "Receive",
    "ReleaseMutex",
    "Reply",
    "Request",
    "SemaphoreDown",
    "SemaphoreUp",
    "Send",
    "Sleep",
    "Syscall",
    "Task",
    "Thread",
    "ThreadContext",
    "ThreadState",
    "YieldCPU",
]
