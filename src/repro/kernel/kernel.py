"""The simulated microkernel: dispatch loop and syscall interpreter.

This is the substrate standing in for Mach 3.0 (section 4): a
uniprocessor kernel that repeatedly asks its scheduling policy for the
next thread, runs it for up to one quantum of virtual time, and
interprets the syscalls the thread's body generator yields.  As in
Mach, the running thread is removed from the run queue for the duration
of its quantum -- which for the lottery policy is exactly what
deactivates its tickets (section 4.4) -- and a thread that blocks or
yields early comes off the CPU immediately, triggering the policy's
``quantum_end`` hook (where compensation tickets are granted).

There is no mid-quantum preemption on wakeup: a thread that becomes
runnable joins the run queue and competes in the next lottery, matching
the prototype's 100 ms-quantum behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.tickets import Currency, Ledger
from repro.errors import KernelError, SimulationError
from repro.kernel import syscalls as sc
from repro.kernel.thread import Task, Thread, ThreadBody, ThreadState
from repro.schedulers.base import SchedulingPolicy
from repro.sim.engine import Engine

__all__ = ["Kernel", "BLOCK", "add_construction_hook",
           "remove_construction_hook"]

#: Process-wide hooks invoked with every newly constructed kernel.
#: Used by :func:`repro.analysis.sanitizer.install_autosanitize` to
#: instrument whole test suites without touching call sites.
_construction_hooks: List[Callable[["Kernel"], None]] = []


#: Injection point for the determinism-race sanitizer (see
#: :mod:`repro.analysis.races`); assigned by ``tracker.activate()``
#: under ``REPRO_SANITIZE=1``.  Declared barrier-shared in
#: ``repro/analysis/shardmap.toml``.
_race_tracker = None

#: Injection point for the sharded multicore engine (see
#: :mod:`repro.shard.router`); assigned by ``ShardRouter.install()``
#: while a sharded run is executing.  Guards ``run_until`` against
#: bypassing epoch barriers and diverts wakes aimed at remote-caller
#: stubs.  Declared barrier-shared in ``repro/analysis/shardmap.toml``.
_shard_router = None


def add_construction_hook(hook: Callable[["Kernel"], None]) -> None:
    """Register a callable invoked with each new :class:`Kernel`."""
    _construction_hooks.append(hook)


def remove_construction_hook(hook: Callable[["Kernel"], None]) -> None:
    """Deregister a construction hook (no-op if absent)."""
    try:
        _construction_hooks.remove(hook)
    except ValueError:
        pass

#: Sentinel returned by syscall handlers that blocked the thread.
BLOCK = object()

#: Guard against bodies that issue non-CPU syscalls forever at one instant.
_MAX_INSTANT_SYSCALLS = 100_000

_EPS = 1e-9

#: Fallback resolution order for syscall subclasses (matches the
#: historical isinstance chain); exact types hit the handler table.
_INSTANT_SYSCALL_ORDER = (
    sc.Sleep, sc.Send, sc.Call, sc.Receive, sc.Reply,
    sc.AcquireMutex, sc.ReleaseMutex, sc.SemaphoreDown, sc.SemaphoreUp,
    sc.WaitCondition, sc.SignalCondition, sc.BroadcastCondition,
)


def _timer_wake_owner(thread: Thread) -> None:
    """Sleep-wakeup trampoline: route through the thread's *current*
    kernel (it may have migrated since the timer was armed)."""
    thread.kernel.timer_wake(thread)


class Kernel:
    """A single simulated machine: engine + ledger + policy + threads.

    Parameters
    ----------
    engine:
        The discrete-event engine supplying virtual time.
    policy:
        The scheduling policy (lottery or a baseline).
    ledger:
        Ticket/currency registry; created fresh when omitted.
    quantum:
        Scheduling quantum in milliseconds (the prototype's was 100).
    context_switch_cost:
        Virtual milliseconds charged (to nobody) per dispatch, for
        overhead-sensitivity experiments.  Default 0.
    recorder:
        Optional metrics sink (see :mod:`repro.metrics.recorder`).
    """

    def __init__(
        self,
        engine: Engine,
        policy: SchedulingPolicy,
        ledger: Optional[Ledger] = None,
        quantum: float = 100.0,
        context_switch_cost: float = 0.0,
        recorder: Optional[Any] = None,
    ) -> None:
        if quantum <= 0:
            raise KernelError(f"quantum must be positive, got {quantum}")
        if context_switch_cost < 0:
            raise KernelError("context_switch_cost must be non-negative")
        self.engine = engine
        self.policy = policy
        self.ledger = ledger if ledger is not None else Ledger()
        self.quantum = float(quantum)
        self.context_switch_cost = float(context_switch_cost)
        self.recorder = recorder
        #: Optional :class:`repro.telemetry.probe.Telemetry` hub; ports,
        #: policies, and fault models consult it for span/metric events
        #: beyond the recorder protocol.  Installed by
        #: ``Telemetry.instrument_kernel``, never required.
        self.telemetry: Optional[Any] = None

        self.tasks: List[Task] = []
        self.threads: List[Thread] = []
        #: Ports created on this kernel, in creation order; registered
        #: by :class:`repro.kernel.ipc.Port` so checkpoints can capture
        #: in-flight IPC without a side channel.
        self.ports: List[Any] = []
        self.running: Optional[Thread] = None
        self._quantum_left = 0.0
        #: The quantum actually granted to the current dispatch (equals
        #: ``self.quantum`` unless a ``quantum_jitter`` seam adjusts it).
        self._quantum_size = self.quantum
        self._dispatch_pending = False
        self._instant_syscalls = 0
        self._instant_handlers = self._build_instant_handlers()
        #: The pending engine event of the current dispatch (context
        #: switch or compute completion); cancelled when the running
        #: thread is killed or forcibly preempted by a fault.
        self._inflight: Optional[Any] = None

        # -- fault seams (see repro.faults) ---------------------------------
        #: Maps the nominal quantum to the one granted this dispatch
        #: (clock-skew / timer-jitter injection); None means identity.
        self.quantum_jitter: Optional[Callable[[float], float]] = None
        #: Consulted by ports before each delivery (message drop/delay
        #: windows); see :class:`repro.faults.injector.IpcFaultModel`.
        self.ipc_faults: Optional[Any] = None

        # -- accounting -----------------------------------------------------
        self.dispatch_count = 0
        self.idle_time = 0.0
        self.kills = 0
        self._idle_since: Optional[float] = engine.now

        #: Post-quantum hooks ``fn(kernel, thread, outcome)`` run after
        #: every dispatch fully settles (state transition, re-enqueue,
        #: policy ``quantum_end``); the invariant sanitizer plugs in here.
        self.invariant_hooks: List[Callable[["Kernel", Thread, str], None]] = []

        policy.attach(self)
        for hook in list(_construction_hooks):
            hook(self)

    # -- recorder fan-out ------------------------------------------------------

    def attach_recorder(self, sink: Any) -> Any:
        """Add an event sink without displacing the existing recorder.

        The kernel's single ``recorder`` slot historically forced a
        choice between :class:`~repro.metrics.recorder.KernelRecorder`,
        :class:`~repro.kernel.trace.SchedulerTrace`, and the replay or
        telemetry recorders.  ``attach_recorder`` upgrades the slot to a
        :class:`~repro.metrics.recorder.RecorderMux` on demand: the
        first sink occupies the slot directly, a second converts it to a
        fan-out, and further sinks join the mux.  Returns ``sink``.
        """
        from repro.metrics.recorder import RecorderMux

        if self.recorder is None:
            # Validate the surface even for the single-sink fast path.
            self.recorder = RecorderMux(sink).sinks[0]
        elif isinstance(self.recorder, RecorderMux):
            self.recorder.add(sink)
        else:
            self.recorder = RecorderMux(self.recorder, sink)
        return sink

    def detach_recorder(self, sink: Any) -> None:
        """Remove a sink attached via :meth:`attach_recorder` (no-op if absent)."""
        from repro.metrics.recorder import RecorderMux

        if self.recorder is sink:
            self.recorder = None
        elif isinstance(self.recorder, RecorderMux):
            self.recorder.remove(sink)

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.engine.now

    def run_until(self, time: float) -> None:
        """Advance the whole machine to virtual time ``time``.

        Refused when this kernel's engine is a core adopted by a
        sharded run: advancing one core past its siblings would bypass
        the epoch barriers that keep sharded execution deterministic --
        use ``ShardedEngine.advance`` instead.
        """
        router = _shard_router
        if router is not None and router.owns_engine(self.engine):
            raise KernelError(
                "kernel belongs to a sharded run; advance through "
                "ShardedEngine.advance(), not Kernel.run_until()")
        self.engine.run(until=time)

    # -- task and thread creation --------------------------------------------------

    def create_task(self, name: str, currency: Optional[Currency] = None,
                    create_currency: bool = False) -> Task:
        """Create a task, optionally with its own (or a fresh) currency."""
        if create_currency:
            if currency is not None:
                raise KernelError("pass either currency or create_currency")
            currency = self.ledger.create_currency(name)
        task = Task(name, currency)
        self.tasks.append(task)
        return task

    def spawn(
        self,
        body: ThreadBody,
        name: str,
        task: Optional[Task] = None,
        tickets: Optional[float] = None,
        currency: Optional[Currency] = None,
        priority: int = 0,
        start: bool = True,
    ) -> Thread:
        """Create a thread, optionally fund it, and make it runnable.

        ``tickets`` issues a funding ticket denominated in ``currency``
        (default: the task's currency, else base).  Baseline policies
        ignore funding and use ``priority`` / arrival order instead.
        """
        if task is None:
            task = self.create_task(f"task:{name}")
        thread = Thread(name, task, body, self, priority=priority)
        self.threads.append(thread)
        if tickets is not None:
            thread.fund_from(self.ledger, tickets, currency=currency)
        if start:
            self.start_thread(thread)
        return thread

    def start_thread(self, thread: Thread) -> None:
        """Admit a CREATED thread to the run queue."""
        if thread.state is not ThreadState.CREATED:
            raise KernelError(f"thread {thread.name!r} already started")
        self._make_runnable(thread)

    # -- wakeups ---------------------------------------------------------------------

    def wake(self, thread: Thread, value: Any = None) -> None:
        """Unblock a thread, delivering ``value`` into its generator."""
        router = _shard_router
        if router is not None and router.intercept_wake(thread, value):
            # A remote-caller stub (sharded cross-core RPC): the wake
            # travels to the real thread's core as a barrier payload.
            return
        if thread.state is not ThreadState.BLOCKED:
            raise KernelError(
                f"cannot wake thread {thread.name!r} in state {thread.state.value}"
            )
        thread.deliver(value)
        self._make_runnable(thread)
        if self.recorder is not None:
            self.recorder.on_wake(thread, self.now)

    def timer_wake(self, thread: Thread, value: Any = None) -> None:
        """Wake from a timer, tolerating threads killed while asleep.

        Sleep wakeups are scheduled far in advance; if a fault kills
        the sleeper first, the stale timer must fizzle instead of
        raising (EXITED is terminal, so a non-BLOCKED thread here can
        only be a killed one).
        """
        if thread.state is not ThreadState.BLOCKED:
            return
        self.wake(thread, value)

    def _make_runnable(self, thread: Thread) -> None:
        thread.transition(ThreadState.RUNNABLE)
        thread.runnable_since = self.now
        self.policy.enqueue(thread)
        self._schedule_dispatch()

    # -- forced termination and preemption (fault paths) ----------------------------

    def kill(self, thread: Thread, reclaim_tickets: bool = True) -> bool:
        """Forcibly terminate a thread at the current instant.

        Unlike a voluntary exit, ``kill`` may interrupt a RUNNING
        thread mid-quantum (the in-flight compute completion is
        cancelled and its partial progress is lost) and, with
        ``reclaim_tickets`` (the default), destroys the thread's
        tickets so the ledger immediately reflects the loss -- the
        crash analogue of ticket revocation.  Returns False when the
        thread had already exited.
        """
        if thread.state is ThreadState.EXITED:
            return False
        if thread.kernel is not self:
            raise KernelError(
                f"thread {thread.name!r} belongs to another kernel; "
                "kill it via its owner"
            )
        if thread is self.running:
            self._abort_dispatch_window()
        elif thread.state is ThreadState.RUNNABLE and thread.competing:
            self.policy.dequeue(thread)
        thread.current_syscall = None
        thread.transition(ThreadState.EXITED)
        thread.exited_at = self.now
        thread.stop_competing()
        self.policy.thread_exited(thread)
        if reclaim_tickets:
            for ticket in list(thread.tickets):
                ticket.destroy()
        self.kills += 1
        if self.recorder is not None:
            self.recorder.on_exit(thread, self.now)
        self._schedule_dispatch()
        for hook in self.invariant_hooks:
            hook(self, thread, "kill")
        return True

    def preempt_running(self) -> Optional[Thread]:
        """Yank the running thread off the CPU mid-quantum (crash path).

        The interrupted compute segment's progress is lost (neither
        CPU time nor syscall progress is credited) and the thread is
        re-enqueued RUNNABLE; no compensation is granted -- the thread
        did not underuse its quantum voluntarily, its node failed.
        Returns the preempted thread, or None when the CPU was idle.
        """
        thread = self.running
        if thread is None:
            return None
        self._abort_dispatch_window()
        thread.transition(ThreadState.RUNNABLE)
        thread.runnable_since = self.now
        self.policy.enqueue(thread)
        self._schedule_dispatch()
        for hook in self.invariant_hooks:
            hook(self, thread, "preempt")
        return thread

    def _cancel_inflight(self) -> None:
        if self._inflight is not None:
            self.engine.cancel(self._inflight)
            self._inflight = None

    def _abort_dispatch_window(self) -> None:
        """Tear down the current dispatch entirely (kill/preempt paths).

        Cancelling only the in-flight event used to leave the quantum
        accounting (``_quantum_left``/``_quantum_size``) and the
        instant-syscall counter describing a dispatch that no longer
        exists; a checkpoint taken right after a crash-path preemption
        would then disagree with a clean re-execution of the same
        history.  The whole window is reset so kernel state after an
        abort is indistinguishable from kernel state between dispatches.
        """
        self._cancel_inflight()
        self.running = None
        self._quantum_left = 0.0
        self._quantum_size = self.quantum
        self._instant_syscalls = 0

    def check_dispatch_window(self) -> List[str]:
        """Audit dispatch-window consistency; returns violation strings.

        Empty means the window is coherent: an in-flight event exists
        only while a thread is RUNNING and has not been cancelled, and
        an idle CPU carries no leftover quantum.  Checkpoint capture
        refuses to snapshot a kernel that fails this audit, and restore
        re-audits before resuming -- a restore can therefore never
        revive a stale in-flight dispatch event.
        """
        problems: List[str] = []
        if self._inflight is not None:
            if self.running is None:
                problems.append(
                    "in-flight dispatch event with no running thread")
            if getattr(self._inflight, "cancelled", False):
                problems.append(
                    "in-flight dispatch event was cancelled but not cleared")
        if self.running is None and self._quantum_left > _EPS:
            problems.append(
                f"idle CPU with {self._quantum_left:g}ms of leftover quantum")
        if self.running is not None and \
                self.running.state is not ThreadState.RUNNING:
            problems.append(
                f"running slot holds thread in state "
                f"{self.running.state.value}")
        return problems

    # -- dispatch loop ------------------------------------------------------------------

    def _schedule_dispatch(self) -> None:
        if self.running is None and not self._dispatch_pending:
            self._dispatch_pending = True
            self.engine.call_soon(self._dispatch, label="dispatch")

    def _dispatch(self) -> None:
        # Owner-context entry points: while a dispatch (or one of its
        # engine-scheduled continuations) executes, this kernel's owner
        # token is on the race-tracker stack, so any mutation of
        # another kernel's thread outside a declared seam traps.
        tracker = _race_tracker
        if tracker is None or not tracker.active:
            return self._dispatch_impl()
        tracker.push(self)
        try:
            return self._dispatch_impl()
        finally:
            tracker.pop()

    def _run_segment(self, thread: Thread) -> None:
        tracker = _race_tracker
        if tracker is None or not tracker.active:
            return self._run_segment_impl(thread)
        tracker.push(self)
        try:
            return self._run_segment_impl(thread)
        finally:
            tracker.pop()

    def _segment_done(self, thread: Thread, syscall: sc.Compute,
                      run: float) -> None:
        tracker = _race_tracker
        if tracker is None or not tracker.active:
            return self._segment_done_impl(thread, syscall, run)
        tracker.push(self)
        try:
            return self._segment_done_impl(thread, syscall, run)
        finally:
            tracker.pop()

    def _dispatch_impl(self) -> None:
        self._dispatch_pending = False
        if self.running is not None:
            return
        thread = self.policy.select()
        if thread is None:
            # CPU idles; the next _make_runnable re-arms the dispatcher.
            # Normalize the dispatch window: a block mid-quantum leaves
            # leftover quantum behind, and an idle CPU carrying one
            # fails check_dispatch_window (checkpoints would refuse).
            self._quantum_left = 0.0
            self._quantum_size = self.quantum
            self._instant_syscalls = 0
            if self._idle_since is None:
                self._idle_since = self.now
            return
        if self._idle_since is not None:
            self.idle_time += self.now - self._idle_since
            self._idle_since = None
        thread.transition(ThreadState.RUNNING)
        self.running = thread
        quantum = self.quantum
        if self.quantum_jitter is not None:
            quantum = max(_EPS, self.quantum_jitter(quantum))
        self._quantum_size = quantum
        self._quantum_left = quantum
        self._instant_syscalls = 0
        thread.dispatches += 1
        self.dispatch_count += 1
        if self.recorder is not None:
            self.recorder.on_dispatch(thread, self.now)
        if self.context_switch_cost > 0:
            self._inflight = self.engine.call_after(
                self.context_switch_cost,
                self._run_segment,
                label="context-switch",
                args=(thread,),
            )
        else:
            self._run_segment_impl(thread)

    def _run_segment_impl(self, thread: Thread) -> None:
        """Interpret syscalls until the thread computes, blocks, or stops."""
        self._inflight = None
        while True:
            syscall = thread.current_syscall
            if syscall is None:
                syscall = thread.advance()
            if syscall is None or isinstance(syscall, sc.Exit):
                self._end_dispatch(thread, "exit")
                return
            if isinstance(syscall, sc.Compute):
                thread.current_syscall = syscall
                if self._quantum_left <= _EPS:
                    self._end_dispatch(thread, "preempt")
                    return
                run = min(syscall.remaining, self._quantum_left)
                self._inflight = self.engine.call_after(
                    run,
                    self._segment_done,
                    label="compute",
                    args=(thread, syscall, run),
                )
                return
            if isinstance(syscall, sc.YieldCPU):
                thread.voluntary_yields += 1
                self._end_dispatch(thread, "yield")
                return
            # Instantaneous (zero-CPU) syscalls.
            self._instant_syscalls += 1
            if self._instant_syscalls > _MAX_INSTANT_SYSCALLS:
                raise SimulationError(
                    f"thread {thread.name!r} issued {_MAX_INSTANT_SYSCALLS} "
                    "syscalls without consuming CPU; body is livelocked"
                )
            result = self._handle_instant(syscall, thread)
            if result is BLOCK:
                self._end_dispatch(thread, "block")
                return
            thread.deliver(result)

    def _segment_done_impl(self, thread: Thread, syscall: sc.Compute,
                           run: float) -> None:
        if self.running is not thread:  # pragma: no cover - defensive
            raise SimulationError("compute completion for a non-running thread")
        self._inflight = None
        syscall.remaining -= run
        self._quantum_left -= run
        thread.cpu_time += run
        if self.recorder is not None:
            self.recorder.on_cpu(thread, self.now - run, run)
        if syscall.remaining <= _EPS:
            thread.current_syscall = None
        if self._quantum_left <= _EPS:
            self._end_dispatch(thread, "preempt")
        else:
            self._run_segment_impl(thread)

    def _end_dispatch(self, thread: Thread, outcome: str) -> None:
        used = self._quantum_size - self._quantum_left
        self.running = None
        if outcome in ("preempt", "yield"):
            thread.transition(ThreadState.RUNNABLE)
            thread.runnable_since = self.now
            self.policy.enqueue(thread)
            self.policy.quantum_end(thread, used, self._quantum_size,
                                    still_runnable=True)
        elif outcome == "block":
            thread.transition(ThreadState.BLOCKED)
            self.policy.quantum_end(thread, used, self._quantum_size,
                                    still_runnable=False)
            if self.recorder is not None:
                self.recorder.on_block(thread, self.now)
        elif outcome == "exit":
            thread.transition(ThreadState.EXITED)
            thread.exited_at = self.now
            thread.stop_competing()
            self.policy.thread_exited(thread)
            if self.recorder is not None:
                self.recorder.on_exit(thread, self.now)
        else:  # pragma: no cover - defensive
            raise KernelError(f"unknown dispatch outcome {outcome!r}")
        self._schedule_dispatch()
        for hook in self.invariant_hooks:
            hook(self, thread, outcome)

    # -- instantaneous syscall handlers ----------------------------------------------------

    def _handle_instant(self, syscall: sc.Syscall, thread: Thread) -> Any:
        """Execute a zero-CPU syscall; BLOCK means the thread blocked.

        Dispatches on the syscall's exact type through a per-kernel
        handler table (one dict lookup instead of a dozen isinstance
        checks); subclasses of the known syscalls resolve through the
        declaration-ordered isinstance walk once and are then memoized
        under their own type.
        """
        handler = self._instant_handlers.get(syscall.__class__)
        if handler is None:
            for known in _INSTANT_SYSCALL_ORDER:
                if isinstance(syscall, known):
                    handler = self._instant_handlers[known]
                    break
            if handler is None:
                raise KernelError(f"unknown syscall {syscall!r}")
            self._instant_handlers[syscall.__class__] = handler
        return handler(syscall, thread)

    def _sys_sleep(self, syscall: sc.Sleep, thread: Thread) -> Any:
        # Wake via thread.kernel (resolved at fire time, not here): a
        # cluster rebalancer may migrate the thread to another node
        # while it sleeps.  timer_wake (not wake) so the timer fizzles
        # if a fault kills the sleeper before it fires.
        self.engine.call_after(
            syscall.duration,
            _timer_wake_owner,
            label="sleep-wakeup",
            args=(thread,),
        )
        return BLOCK

    def _sys_send(self, syscall: sc.Send, thread: Thread) -> Any:
        syscall.port.send(thread, syscall.message)
        return None

    def _sys_call(self, syscall: sc.Call, thread: Thread) -> Any:
        return syscall.port.call(
            thread, syscall.message, syscall.transfer_fraction
        )

    def _sys_receive(self, syscall: sc.Receive, thread: Thread) -> Any:
        return syscall.port.receive(thread)

    def _sys_reply(self, syscall: sc.Reply, thread: Thread) -> Any:
        syscall.request.reply(syscall.value)
        return None

    def _sys_acquire_mutex(self, syscall: sc.AcquireMutex,
                           thread: Thread) -> Any:
        return syscall.mutex.acquire(thread)

    def _sys_release_mutex(self, syscall: sc.ReleaseMutex,
                           thread: Thread) -> Any:
        syscall.mutex.release(thread)
        return None

    def _sys_semaphore_down(self, syscall: sc.SemaphoreDown,
                            thread: Thread) -> Any:
        return syscall.semaphore.down(thread)

    def _sys_semaphore_up(self, syscall: sc.SemaphoreUp,
                          thread: Thread) -> Any:
        syscall.semaphore.up(thread)
        return None

    def _sys_wait_condition(self, syscall: sc.WaitCondition,
                            thread: Thread) -> Any:
        return syscall.condition.wait(thread)

    def _sys_signal_condition(self, syscall: sc.SignalCondition,
                              thread: Thread) -> Any:
        syscall.condition.signal(thread)
        return None

    def _sys_broadcast_condition(self, syscall: sc.BroadcastCondition,
                                 thread: Thread) -> Any:
        syscall.condition.broadcast(thread)
        return None

    def _build_instant_handlers(self) -> dict:
        """Exact-type handler table for zero-CPU syscalls."""
        return {
            sc.Sleep: self._sys_sleep,
            sc.Send: self._sys_send,
            sc.Call: self._sys_call,
            sc.Receive: self._sys_receive,
            sc.Reply: self._sys_reply,
            sc.AcquireMutex: self._sys_acquire_mutex,
            sc.ReleaseMutex: self._sys_release_mutex,
            sc.SemaphoreDown: self._sys_semaphore_down,
            sc.SemaphoreUp: self._sys_semaphore_up,
            sc.WaitCondition: self._sys_wait_condition,
            sc.SignalCondition: self._sys_signal_condition,
            sc.BroadcastCondition: self._sys_broadcast_condition,
        }

    # -- introspection --------------------------------------------------------------------------

    def cpu_utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of virtual time the CPU was busy so far."""
        end = horizon if horizon is not None else self.now
        if end <= 0:
            return 0.0
        idle = self.idle_time
        if self._idle_since is not None:
            idle += end - self._idle_since
        return max(0.0, min(1.0, 1.0 - idle / end))

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Captures the dispatch window, run queue (via the policy seam),
        every thread and task, and in-flight IPC on this kernel's
        ports.  The shared ledger and engine are captured by the
        top-level ``repro.checkpoint.capture`` (a cluster's kernels
        share both).  Raises :class:`~repro.errors.KernelError` when
        the dispatch window fails :meth:`check_dispatch_window` -- a
        checkpoint must never record a stale in-flight dispatch.
        """
        problems = self.check_dispatch_window()
        if problems:
            raise KernelError(
                "refusing to snapshot an incoherent dispatch window: "
                + "; ".join(problems))
        inflight = None
        if self._inflight is not None:
            inflight = {"time": self._inflight.time,
                        "label": self._inflight.label}
        return {
            "policy": self.policy.snapshot_state(),
            "quantum": self.quantum,
            "context_switch_cost": self.context_switch_cost,
            "running": None if self.running is None else self.running.tid,
            "quantum_left": self._quantum_left,
            "quantum_size": self._quantum_size,
            "dispatch_pending": self._dispatch_pending,
            "instant_syscalls": self._instant_syscalls,
            "inflight": inflight,
            "dispatch_count": self.dispatch_count,
            "idle_time": self.idle_time,
            "kills": self.kills,
            "idle_since": self._idle_since,
            "tasks": [task.snapshot_state() for task in self.tasks],
            "threads": [thread.snapshot_state() for thread in self.threads],
            "ports": [port.snapshot_state() for port in self.ports],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.running.name if self.running else None
        return (
            f"<Kernel now={self.now:.1f}ms policy={self.policy.name}"
            f" running={running!r} threads={len(self.threads)}>"
        )
