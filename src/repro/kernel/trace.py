"""Structured scheduling traces and an ASCII timeline renderer.

A :class:`SchedulerTrace` is a richer recorder than
:class:`~repro.metrics.recorder.KernelRecorder`: it logs typed events
(dispatches with the winner's funding and run-queue size, blocks,
wakes, exits) and can render the history as a per-thread timeline --
the debugging view you want when a proportional-share bug is "thread X
mysteriously starves between 40 s and 55 s".

Usage::

    trace = SchedulerTrace()
    kernel = Kernel(engine, policy, recorder=trace)
    ...
    print(trace.render_timeline(0, 10_000, bucket_ms=250))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.thread import Thread

__all__ = ["TraceEvent", "SchedulerTrace"]


@dataclass
class TraceEvent:
    """One scheduling event."""

    time: float
    kind: str  # "dispatch" | "cpu" | "block" | "wake" | "exit"
    tid: int
    thread_name: str
    #: kind-specific payload: funding at dispatch, duration for cpu...
    value: float = 0.0


class SchedulerTrace:
    """Recorder collecting a full typed event log (kernel-pluggable).

    By default the trace is a drop-oldest ring buffer: once
    ``max_events`` is reached, each new event evicts the oldest one and
    bumps :attr:`dropped_events` -- an observability layer must not
    crash the system it observes.  Pass ``strict=True`` to get the old
    fail-fast behaviour (raise at the cap), useful in tests that treat
    an overflowing trace as a bug.
    """

    def __init__(self, max_events: int = 1_000_000,
                 strict: bool = False) -> None:
        if max_events <= 0:
            raise ReproError("max_events must be positive")
        self._events: Deque[TraceEvent] = deque()
        self.max_events = max_events
        self.strict = strict
        #: Oldest events evicted by the ring buffer (0 in strict mode).
        self.dropped_events = 0
        self._names: Dict[int, str] = {}

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    # -- kernel recorder interface ------------------------------------------

    def on_dispatch(self, thread: "Thread", time: float) -> None:
        self._append(TraceEvent(time, "dispatch", thread.tid, thread.name,
                                thread.nominal_funding()))

    def on_cpu(self, thread: "Thread", start: float, duration: float) -> None:
        self._append(TraceEvent(start, "cpu", thread.tid, thread.name,
                                duration))

    def on_block(self, thread: "Thread", time: float) -> None:
        self._append(TraceEvent(time, "block", thread.tid, thread.name))

    def on_wake(self, thread: "Thread", time: float) -> None:
        self._append(TraceEvent(time, "wake", thread.tid, thread.name))

    def on_exit(self, thread: "Thread", time: float) -> None:
        self._append(TraceEvent(time, "exit", thread.tid, thread.name))

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) >= self.max_events:
            if self.strict:
                raise ReproError(
                    f"trace exceeded {self.max_events} events; "
                    "narrow the traced interval or raise max_events"
                )
            self._events.popleft()
            self.dropped_events += 1
        self._events.append(event)
        self._names[event.tid] = event.thread_name

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The retained event log *is* the trace's state; each event is
        flattened to its (time, kind, tid, name, value) tuple fields.
        """
        return {
            "max_events": self.max_events,
            "strict": self.strict,
            "dropped_events": self.dropped_events,
            "events": [
                {"time": e.time, "kind": e.kind, "tid": e.tid,
                 "name": e.thread_name, "value": e.value}
                for e in self._events
            ],
        }

    # -- queries ----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def for_thread(self, tid: int) -> List[TraceEvent]:
        """All events for one thread, in time order."""
        return [e for e in self.events if e.tid == tid]

    def dispatch_counts(self) -> Dict[str, int]:
        """Dispatches per thread name."""
        counts: Dict[str, int] = {}
        for event in self.of_kind("dispatch"):
            counts[event.thread_name] = counts.get(event.thread_name, 0) + 1
        return counts

    def cpu_by_thread(self, start: float = 0.0,
                      end: Optional[float] = None) -> Dict[str, float]:
        """CPU milliseconds per thread name over [start, end)."""
        totals: Dict[str, float] = {}
        for event in self.of_kind("cpu"):
            if event.time < start:
                continue
            if end is not None and event.time >= end:
                continue
            totals[event.thread_name] = (
                totals.get(event.thread_name, 0.0) + event.value
            )
        return totals

    # -- rendering ------------------------------------------------------------------

    def render_timeline(self, start: float, end: float,
                        bucket_ms: float = 100.0,
                        width_limit: int = 120) -> str:
        """Per-thread occupancy bars over [start, end).

        Each column is one bucket; a filled cell means the thread held
        the CPU for the majority of that bucket ('#'), a partial cell
        ('+') for any smaller slice, '.' for none.
        """
        if end <= start or bucket_ms <= 0:
            raise ReproError("invalid timeline interval")
        buckets = int((end - start) / bucket_ms + 0.999)
        if buckets > width_limit:
            raise ReproError(
                f"timeline would need {buckets} columns (> {width_limit});"
                " increase bucket_ms"
            )
        occupancy: Dict[int, List[float]] = {}
        for event in self.of_kind("cpu"):
            segment_start = event.time
            segment_end = event.time + event.value
            if segment_end <= start or segment_start >= end:
                continue
            row = occupancy.setdefault(event.tid, [0.0] * buckets)
            cursor = max(segment_start, start)
            while cursor < min(segment_end, end) - 1e-9:
                index = int((cursor - start) / bucket_ms)
                bucket_end = start + (index + 1) * bucket_ms
                slice_end = min(segment_end, bucket_end, end)
                row[index] += slice_end - cursor
                cursor = slice_end
        if not occupancy:
            return "(no CPU activity in interval)"
        name_width = max(len(self._names[tid]) for tid in occupancy)
        lines = [
            f"{'thread'.ljust(name_width)} | {start:.0f}..{end:.0f} ms in "
            f"{bucket_ms:.0f} ms buckets"
        ]
        for tid in sorted(occupancy):
            cells = []
            for filled in occupancy[tid]:
                if filled >= bucket_ms * 0.5:
                    cells.append("#")
                elif filled > 0:
                    cells.append("+")
                else:
                    cells.append(".")
            lines.append(f"{self._names[tid].ljust(name_width)} |"
                         f"{''.join(cells)}")
        return "\n".join(lines)
