"""Memory management generalization: inverse-lottery page replacement."""

from repro.mem.frames import Frame, FramePool, PageBinding
from repro.mem.manager import MemoryManager
from repro.mem.paging import DEFAULT_FAULT_SERVICE_MS, PagedWorkload
from repro.mem.policies import (
    FIFOReplacement,
    InverseLotteryReplacement,
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
)

__all__ = [
    "FIFOReplacement",
    "Frame",
    "FramePool",
    "InverseLotteryReplacement",
    "LRUReplacement",
    "MemoryManager",
    "PagedWorkload",
    "DEFAULT_FAULT_SERVICE_MS",
    "PageBinding",
    "RandomReplacement",
    "ReplacementPolicy",
]
