"""Page-replacement policies: inverse lottery and classical baselines.

The paper (section 6.2) proposes choosing the *client* from which to
steal a page by an inverse lottery weighted by both ticket holdings and
memory usage: a client is victimized with probability proportional to
``(1 - t_i / T) * usage_i``, so poorly funded memory hogs lose pages
first while well-funded clients are insulated.  Within the chosen
client, the oldest resident page is evicted (FIFO within owner).

Baselines: global LRU, global FIFO, and uniformly random -- none of
which respect ticket allocations, which is exactly the contrast the
inverse-memory experiment (E10) draws.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional

from repro.core.inverse import weighted_inverse_lottery
from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.mem.frames import Frame, FramePool

__all__ = [
    "ReplacementPolicy",
    "InverseLotteryReplacement",
    "LRUReplacement",
    "FIFOReplacement",
    "RandomReplacement",
]


class ReplacementPolicy(abc.ABC):
    """Chooses the frame to evict when memory is full."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_victim(self, pool: FramePool, now: float) -> Frame:
        """Return the resident frame to evict (pool is full)."""


class InverseLotteryReplacement(ReplacementPolicy):
    """Proportional-share victim selection (paper section 6.2).

    Parameters
    ----------
    tickets_of:
        Maps a client name to its ticket count.
    prng:
        Randomness for the inverse lottery.
    """

    name = "inverse-lottery"

    def __init__(self, tickets_of: Callable[[str], float],
                 prng: Optional[ParkMillerPRNG] = None) -> None:
        self._tickets_of = tickets_of
        self.prng = prng if prng is not None else ParkMillerPRNG(1)
        #: client -> times victimized (distribution checks).
        self.victim_counts: Dict[str, int] = {}

    def choose_victim(self, pool: FramePool, now: float) -> Frame:
        clients = pool.clients()
        if not clients:
            raise ReproError("no resident pages to evict")
        if len(clients) == 1:
            victim_client = clients[0]
        else:
            entries = [
                (c, self._tickets_of(c), pool.usage_fraction(c)) for c in clients
            ]
            victim_client = weighted_inverse_lottery(entries, self.prng)
        self.victim_counts[victim_client] = (
            self.victim_counts.get(victim_client, 0) + 1
        )
        # FIFO within the victim client: evict its oldest-loaded page.
        frames = pool.frames_of(victim_client)
        return min(frames, key=lambda f: (f.loaded_at, f.index))


class LRUReplacement(ReplacementPolicy):
    """Global least-recently-used baseline (ticket-blind)."""

    name = "lru"

    def choose_victim(self, pool: FramePool, now: float) -> Frame:
        occupied = [f for f in pool.frames if not f.free]
        if not occupied:
            raise ReproError("no resident pages to evict")
        return min(occupied, key=lambda f: (f.last_used, f.index))


class FIFOReplacement(ReplacementPolicy):
    """Global first-in-first-out baseline (ticket-blind)."""

    name = "fifo"

    def choose_victim(self, pool: FramePool, now: float) -> Frame:
        occupied = [f for f in pool.frames if not f.free]
        if not occupied:
            raise ReproError("no resident pages to evict")
        return min(occupied, key=lambda f: (f.loaded_at, f.index))


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim baseline (ticket-blind)."""

    name = "random"

    def __init__(self, prng: Optional[ParkMillerPRNG] = None) -> None:
        self.prng = prng if prng is not None else ParkMillerPRNG(1)

    def choose_victim(self, pool: FramePool, now: float) -> Frame:
        occupied = [f for f in pool.frames if not f.free]
        if not occupied:
            raise ReproError("no resident pages to evict")
        return occupied[self.prng.randrange(len(occupied))]
