"""Paged workloads: memory policy integrated with the CPU scheduler.

:mod:`repro.mem` chooses eviction victims; this module closes the loop
by making page faults cost the faulting thread *time*: a
:class:`PagedWorkload` thread interleaves computation with virtual-page
references against a shared :class:`~repro.mem.manager.MemoryManager`,
and every miss stalls it for the fault-service latency (a disk read).

This is what turns section 6.2's "who loses a page" into the thing
users feel -- "whose *program* runs slower under memory pressure" --
and what the paging-runtime experiment measures: under inverse-lottery
replacement, a well-funded client keeps both its pages *and* its
throughput, while ticket-blind LRU lets an unfunded scanner trash
everyone equally.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Sleep, Syscall
from repro.kernel.thread import ThreadContext
from repro.mem.manager import MemoryManager
from repro.metrics.counters import WindowedCounter

__all__ = ["PagedWorkload", "DEFAULT_FAULT_SERVICE_MS"]

#: Virtual ms to service one page fault (a disk read, early-90s scale).
DEFAULT_FAULT_SERVICE_MS = 20.0


class PagedWorkload:
    """A compute loop touching virtual memory through the fault handler.

    Parameters
    ----------
    name:
        Client name charged in the :class:`MemoryManager`'s accounting.
    manager:
        The shared fault handler / frame pool.
    working_set:
        Number of distinct virtual pages this client cycles over.
    pattern:
        "uniform" (random page each step) or "sequential" (cyclic scan
        -- the classic LRU-killer access pattern).
    step_ms:
        CPU consumed between references.
    references_per_step:
        Pages touched per compute step.
    fault_service_ms:
        Stall per miss (the thread sleeps; the CPU goes to others).
    """

    def __init__(
        self,
        name: str,
        manager: MemoryManager,
        working_set: int,
        pattern: str = "uniform",
        step_ms: float = 5.0,
        references_per_step: int = 1,
        fault_service_ms: float = DEFAULT_FAULT_SERVICE_MS,
        seed: int = 1,
    ) -> None:
        if working_set <= 0:
            raise ReproError("working_set must be positive")
        if pattern not in ("uniform", "sequential"):
            raise ReproError(f"unknown reference pattern {pattern!r}")
        if step_ms <= 0 or references_per_step <= 0 or fault_service_ms < 0:
            raise ReproError("invalid paging workload timing parameters")
        self.name = name
        self.manager = manager
        self.working_set = working_set
        self.pattern = pattern
        self.step_ms = step_ms
        self.references_per_step = references_per_step
        self.fault_service_ms = fault_service_ms
        self._prng = ParkMillerPRNG(seed)
        self._cursor = 0
        #: Completed compute steps against virtual time.
        self.counter = WindowedCounter(f"paged:{name}")
        self.faults_taken = 0

    def _next_page(self) -> int:
        if self.pattern == "sequential":
            page = self._cursor
            self._cursor = (self._cursor + 1) % self.working_set
            return page
        return self._prng.randrange(self.working_set)

    @property
    def steps(self) -> float:
        """Compute steps completed."""
        return self.counter.total

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        Captures the PRNG stream position and scan cursor -- the two
        pieces of state that decide which page the workload touches
        next -- plus the fault/step counters.
        """
        return {
            "name": self.name,
            "pattern": self.pattern,
            "working_set": self.working_set,
            "prng": self._prng.snapshot_state(),
            "cursor": self._cursor,
            "steps": self.counter.total,
            "faults_taken": self.faults_taken,
        }

    def body(self, ctx: ThreadContext) -> Generator[Syscall, Any, None]:
        """Thread body: compute, touch pages, stall on faults."""
        while True:
            yield Compute(self.step_ms)
            for _ in range(self.references_per_step):
                hit = self.manager.reference(
                    self.name, self._next_page(), now=ctx.now
                )
                if not hit:
                    self.faults_taken += 1
                    if self.fault_service_ms > 0:
                        yield Sleep(self.fault_service_ms)
            self.counter.add(ctx.now, 1)
