"""Physical frame pool for the memory-management generalization (§6.2).

Models the machine's physical memory as a fixed set of frames, each
either free or bound to a ``(client, virtual page)`` pair.  Policies in
:mod:`repro.mem.policies` decide which resident page to evict on
pressure; :mod:`repro.mem.manager` drives faults through the pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError

__all__ = ["Frame", "FramePool", "PageBinding"]

#: (client name, virtual page number) identifying a resident page.
PageBinding = Tuple[str, int]


class Frame:
    """One physical frame: free, or holding a client's virtual page."""

    __slots__ = ("index", "binding", "loaded_at", "last_used")

    def __init__(self, index: int) -> None:
        self.index = index
        self.binding: Optional[PageBinding] = None
        self.loaded_at = 0.0
        self.last_used = 0.0

    @property
    def free(self) -> bool:
        """Whether the frame holds no page."""
        return self.binding is None


class FramePool:
    """Fixed-size physical memory with an owner index."""

    def __init__(self, frame_count: int) -> None:
        if frame_count <= 0:
            raise ReproError(f"frame count must be positive: {frame_count}")
        self.frames = [Frame(i) for i in range(frame_count)]
        self._free: List[int] = list(range(frame_count - 1, -1, -1))
        self._where: Dict[PageBinding, int] = {}
        self._owned: Dict[str, Set[int]] = {}

    # -- queries ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of physical frames."""
        return len(self.frames)

    def free_count(self) -> int:
        """Frames currently unbound."""
        return len(self._free)

    def resident(self, client: str, page: int) -> bool:
        """Whether the client's page is in memory."""
        return (client, page) in self._where

    def usage(self, client: str) -> int:
        """Frames currently held by the client."""
        return len(self._owned.get(client, ()))

    def usage_fraction(self, client: str) -> float:
        """Fraction of physical memory held by the client."""
        return self.usage(client) / self.capacity

    def clients(self) -> List[str]:
        """Clients owning at least one frame."""
        return [c for c, frames in self._owned.items() if frames]

    def frames_of(self, client: str) -> List[Frame]:
        """The frames a client currently owns."""
        return [self.frames[i] for i in self._owned.get(client, ())]

    # -- mutations -------------------------------------------------------------------

    def touch(self, client: str, page: int, now: float) -> None:
        """Record a reference to a resident page (for LRU baselines)."""
        index = self._where.get((client, page))
        if index is None:
            raise ReproError(f"page {page} of {client!r} is not resident")
        self.frames[index].last_used = now

    def load(self, client: str, page: int, now: float) -> Frame:
        """Bind a page into a free frame (caller evicts first if full)."""
        binding = (client, page)
        if binding in self._where:
            raise ReproError(f"page {page} of {client!r} already resident")
        if not self._free:
            raise ReproError("no free frame; evict before loading")
        index = self._free.pop()
        frame = self.frames[index]
        frame.binding = binding
        frame.loaded_at = now
        frame.last_used = now
        self._where[binding] = index
        self._owned.setdefault(client, set()).add(index)
        return frame

    def evict(self, frame: Frame) -> PageBinding:
        """Unbind a frame, returning what it held."""
        if frame.binding is None:
            raise ReproError(f"frame {frame.index} is already free")
        binding = frame.binding
        client, _ = binding
        frame.binding = None
        del self._where[binding]
        self._owned[client].discard(frame.index)
        self._free.append(frame.index)
        return binding

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``).

        The frame table is captured positionally -- binding, load time,
        and recency per frame -- plus the free-list order, which decides
        which frame the next load claims.
        """
        return {
            "capacity": self.capacity,
            "free_order": list(self._free),
            "frames": [
                {
                    "index": frame.index,
                    "binding": None if frame.binding is None
                    else [frame.binding[0], frame.binding[1]],
                    "loaded_at": frame.loaded_at,
                    "last_used": frame.last_used,
                }
                for frame in self.frames
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FramePool {self.capacity - self.free_count()}/{self.capacity} used>"
