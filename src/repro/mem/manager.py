"""Page-fault service: drives reference streams through the frame pool.

The :class:`MemoryManager` is the section 6.2 substrate: clients issue
virtual-page references; hits update recency, misses fault and -- when
physical memory is full -- invoke the replacement policy to pick a
victim.  Per-client fault/eviction statistics support the E10
experiment's check that victim frequencies track the inverse-lottery
formula.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ReproError
from repro.mem.frames import FramePool
from repro.mem.policies import ReplacementPolicy

__all__ = ["MemoryManager"]


class MemoryManager:
    """Fault handler over a frame pool with a pluggable victim policy."""

    def __init__(self, pool: FramePool, policy: ReplacementPolicy) -> None:
        self.pool = pool
        self.policy = policy
        self.faults: Dict[str, int] = {}
        self.hits: Dict[str, int] = {}
        #: client -> pages stolen *from* that client.
        self.evictions: Dict[str, int] = {}
        self.total_references = 0

    def reference(self, client: str, page: int, now: float = 0.0) -> bool:
        """Touch a virtual page; returns True on hit, False on fault.

        A fault loads the page, evicting a victim first when memory is
        full.  The victim's owner is charged in ``evictions``.
        """
        if page < 0:
            raise ReproError(f"page numbers must be non-negative: {page}")
        self.total_references += 1
        if self.pool.resident(client, page):
            self.pool.touch(client, page, now)
            self.hits[client] = self.hits.get(client, 0) + 1
            return True
        self.faults[client] = self.faults.get(client, 0) + 1
        if self.pool.free_count() == 0:
            victim_frame = self.policy.choose_victim(self.pool, now)
            victim_client, _ = self.pool.evict(victim_frame)
            self.evictions[victim_client] = self.evictions.get(victim_client, 0) + 1
        self.pool.load(client, page, now)
        return False

    # -- statistics ------------------------------------------------------------------

    def fault_rate(self, client: str) -> float:
        """Faults / references for one client."""
        faults = self.faults.get(client, 0)
        hits = self.hits.get(client, 0)
        total = faults + hits
        return faults / total if total else 0.0

    def eviction_share(self, client: str) -> float:
        """Fraction of all evictions that victimized this client."""
        total = sum(self.evictions.values())
        if total == 0:
            return 0.0
        return self.evictions.get(client, 0) / total

    def snapshot_state(self) -> dict:
        """Typed state tree for checkpointing (see ``repro.checkpoint``)."""
        return {
            "policy": self.policy.name,
            "total_references": self.total_references,
            "faults": dict(sorted(self.faults.items())),
            "hits": dict(sorted(self.hits.items())),
            "evictions": dict(sorted(self.evictions.items())),
            "pool": self.pool.snapshot_state(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryManager policy={self.policy.name}"
            f" refs={self.total_references} pool={self.pool!r}>"
        )
