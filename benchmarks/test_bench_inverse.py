"""Benchmark: regenerate the §6.2 inverse-lottery memory experiment."""

import pytest

from repro.experiments import inverse_memory


def test_inverse_lottery_memory(once):
    result = once(inverse_memory.run, references=60_000)
    result.print_report()
    # Shape: eviction shares track (1 - t_i/T) * usage_i, monotone
    # decreasing in ticket holdings; ticket-blind baselines victimize
    # uniformly.
    for row in result.rows:
        assert row["observed_share"] == pytest.approx(
            row["predicted_share"], abs=0.05
        )
    shares = {row["client"]: row["observed_share"] for row in result.rows}
    assert shares["A"] < shares["B"] < shares["C"]
    lru = result.summary["baseline lru eviction shares"]
    values = [float(p.split("=")[1]) for p in
              lru.split("(")[0].strip().split(", ")]
    assert max(values) - min(values) < 0.05
