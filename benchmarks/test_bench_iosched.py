"""Benchmark: regenerate the §6 diverse-resource lotteries (disk, net)."""

import pytest

from repro.experiments import diverse_resources


def test_disk_and_link_shares(once):
    result = once(diverse_resources.run)
    result.print_report()
    disk_lottery = next(
        r for r in result.rows
        if r["resource"] == "disk" and r["scheduler"] == "lottery"
    )
    assert disk_lottery["A_share"] / disk_lottery["B_share"] == (
        pytest.approx(3.0, rel=0.2)
    )
    disk_rr = next(
        r for r in result.rows
        if r["resource"] == "disk" and r["scheduler"] == "round-robin"
    )
    assert disk_rr["A_share"] == pytest.approx(0.5, abs=0.05)
    link_lottery = next(
        r for r in result.rows
        if r["resource"] == "link" and r["scheduler"] == "lottery"
    )
    assert link_lottery["X_share"] / link_lottery["Z_share"] == (
        pytest.approx(4.0, rel=0.2)
    )
    assert link_lottery["Y_share"] / link_lottery["Z_share"] == (
        pytest.approx(2.0, rel=0.2)
    )
