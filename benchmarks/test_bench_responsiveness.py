"""Benchmark: interactive responsiveness under load (§1 / §3.4)."""

import pytest

from repro.experiments import responsiveness


def test_interactive_latency_across_policies(once):
    result = once(responsiveness.run, duration_ms=120_000.0)
    result.print_report()
    rows = {row["policy"]: row for row in result.rows}
    # Compensation keeps the interactive thread's wake-to-dispatch
    # latency well under one quantum on average...
    assert rows["lottery"]["mean_latency_ms"] < 60
    # ...roughly an order of magnitude better than without it...
    assert (rows["lottery-no-compensation"]["mean_latency_ms"]
            > 5 * rows["lottery"]["mean_latency_ms"])
    # ...and comparable to decay-usage timesharing, the classical
    # interactivity mechanism.
    assert rows["lottery"]["mean_latency_ms"] < 100
    # The low-priority interactive thread starves outright under fixed
    # priorities (the paper's critique of absolute priority).
    assert rows["fixed-priority"]["bursts_completed"] == 0
    # Throughput sanity: the compensated thread also got far more of
    # its requested CPU.
    assert (rows["lottery"]["ui_cpu_ms"]
            > 3 * rows["lottery-no-compensation"]["ui_cpu_ms"])
