"""Benchmark: regenerate Figure 6 (Monte-Carlo inflation, §5.2)."""

import pytest

from repro.experiments import fig6_montecarlo


def test_fig6_montecarlo_convergence(once):
    result = once(
        fig6_montecarlo.run,
        duration_ms=1_000_000.0,
        stagger_ms=120_000.0,
    )
    result.print_report()
    finals = sorted(
        value for key, value in result.summary.items()
        if key.endswith("final trials")
    )
    # Paper shape: three staggered curves converge toward equal totals
    # ("bumps" as each new task catches up).  After 1000 s the youngest
    # task has closed most of its 240 s head-start deficit.
    assert len(finals) == 3
    assert finals[0] > 0.6 * finals[-1]
    # The error-driven controller really fed real estimates: all three
    # integrals are correct to a few decimal places.
    for key, value in result.summary.items():
        if key.endswith("estimate"):
            estimate = float(str(value).split()[0])
            assert estimate == pytest.approx(0.785398, abs=0.001)
