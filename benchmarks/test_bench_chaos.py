"""Benchmark: fairness reconvergence under injected node crashes."""

from repro.experiments import chaos_fairness


def test_chaos_reconvergence(once):
    result = once(chaos_fairness.run)
    result.print_report()
    # Every crash/restart window must have reconverged below threshold.
    windows = [value for key, value in result.summary.items()
               if key.startswith("window @")]
    assert windows, "no fault windows reported"
    assert all("reconverged after" in verdict for verdict in windows)
    assert float(result.summary["final window max relative error"]) < 0.15
