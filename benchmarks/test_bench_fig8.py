"""Benchmark: regenerate Figure 8 (controlling video rates, §5.4)."""

import pytest

from repro.experiments import fig8_video_rates


def test_fig8_video_rates(once):
    result = once(fig8_video_rates.run, duration_ms=300_000.0)
    result.print_report()

    def parse(label):
        text = result.summary[label].split("(")[0]
        return [float(x) for x in text.split(":")]

    before = parse("frame-rate ratio before")
    after = parse("frame-rate ratio after")
    # Paper shape: 3:2:1 before (observed 1.92:1.50:1 under X-server
    # distortion; our simulator lacks that distortion so the ratios land
    # closer to the allocation), flipping to 3:1:2 after the change.
    assert before[0] / before[2] == pytest.approx(3.0, rel=0.2)
    assert before[1] / before[2] == pytest.approx(2.0, rel=0.2)
    assert after[0] / after[1] == pytest.approx(3.0, rel=0.2)
    assert after[2] / after[1] == pytest.approx(2.0, rel=0.2)
    # Cumulative frame curves are monotone (Figure 8's plotted series).
    for viewer in ("viewerA", "viewerB", "viewerC"):
        series = [row[f"{viewer}_frames"] for row in result.rows]
        assert series == sorted(series)
