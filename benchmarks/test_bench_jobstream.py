"""Benchmark: service-class differentiation on an open job stream.

The §5.4 note that databases could "manage the response times seen by
competing clients or transactions with varying importance", evaluated
on the trace-replay substrate: Poisson arrivals at ~80% load, three
ticket classes, mean slowdown per class under lottery vs round-robin.
"""

import pytest

from repro.experiments import service_classes


def test_ticket_classes_order_slowdowns(once):
    result = once(service_classes.run, duration_ms=600_000.0)
    result.print_report()
    rows = {row["policy"]: row for row in result.rows}
    lottery = rows["lottery"]
    # Lottery orders service quality by payment...
    assert (lottery["gold_slowdown"] < lottery["silver_slowdown"]
            < lottery["bronze_slowdown"])
    assert lottery["bronze_slowdown"] / lottery["gold_slowdown"] > 1.5
    # ...stride does the same, deterministically...
    stride = rows["stride"]
    assert (stride["gold_slowdown"] < stride["silver_slowdown"]
            < stride["bronze_slowdown"])
    # ...round-robin treats the classes interchangeably.
    rr = rows["round-robin"]
    values = sorted(
        rr[k] for k in ("gold_slowdown", "silver_slowdown",
                        "bronze_slowdown")
    )
    assert values[-1] / values[0] < 1.25
    # Everyone finishes the stream under every policy (load < 100%).
    for row in rows.values():
        assert row["completed"] == 900
