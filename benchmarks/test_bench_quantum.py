"""Benchmark: quantum sweep — sub-second fairness vs overhead (§2.2)."""

import pytest

from repro.experiments import quantum_sweep


def test_quantum_fairness_tradeoff(once):
    result = once(quantum_sweep.run, duration_ms=120_000.0)
    result.print_report()
    rows = {row["quantum_ms"]: row for row in result.rows}
    # Paper claim: 10 ms quanta give sub-second fairness -- the one-
    # second window share varies by well under 10%.
    assert rows[10.0]["window_share_cv"] < 0.10
    # The CV tracks the sqrt((1-p)/np) law at every quantum size...
    for row in result.rows:
        assert row["window_share_cv"] == pytest.approx(
            row["predicted_cv"], rel=0.35
        )
    # ...and improves monotonically (modulo noise) as quanta shrink.
    assert (rows[10.0]["window_share_cv"]
            < rows[100.0]["window_share_cv"]
            < rows[200.0]["window_share_cv"] * 1.2)
    # Overhead knob: dispatch rate scales inversely with the quantum.
    assert rows[10.0]["dispatches_per_s"] == pytest.approx(100.0, rel=0.01)
    assert rows[200.0]["dispatches_per_s"] == pytest.approx(5.0, rel=0.05)
    # Long-run shares honour 2:1 regardless of quantum.
    for row in result.rows:
        assert row["window_share_mean"] == pytest.approx(2 / 3, abs=0.03)
