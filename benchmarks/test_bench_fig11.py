"""Benchmark: regenerate Figures 10/11 (lottery-scheduled mutex, §6.1)."""

import pytest

from repro.experiments import fig11_mutex


def test_fig11_mutex_waiting_times(once):
    result = once(fig11_mutex.run, duration_ms=120_000.0)
    result.print_report()
    # Paper: 763 vs 423 acquisitions (1.80:1) and mean waits 450 vs
    # 948 ms (1:2.11) for 2:1 group funding over two minutes.
    acquisition = float(
        result.summary["acquisition ratio A:B"].split(":")[0]
    )
    assert acquisition == pytest.approx(2.0, rel=0.35)
    wait_text = result.summary["waiting time ratio A:B"]
    wait_ratio = float(wait_text.split(":")[1].split("(")[0])
    assert wait_ratio == pytest.approx(2.0, rel=0.5)
    # Both groups' waiting-time histograms have mass (the Figure 11
    # frequency plots).
    groups = {row["group"] for row in result.rows}
    assert groups == {"group-A", "group-B"}
    assert result.summary["release lotteries"] > 200
