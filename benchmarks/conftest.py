"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure: it runs the
experiment driver (once -- these are whole-system simulations, not
microseconds-scale snippets), prints the paper-style rows so the output
can be compared against the original, and asserts the headline shape.
Run with::

    pytest benchmarks/ --benchmark-only -s

At session end the harness writes ``BENCH_results.json`` (override the
location with ``BENCH_RESULTS_PATH``): one record per benchmark with
its wall-clock time and, when the benchmarked callable returned an
:class:`~repro.experiments.common.ExperimentResult`, the experiment's
scalar summary metrics.  CI uploads the file as a build artifact so
runs can be compared across commits.
"""

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List

import pytest

#: One record per executed benchmark, drained at session end.
_RESULTS: List[Dict[str, Any]] = []


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment benchmark exactly once and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def _record(nodeid: str, wall_seconds: float, result: Any) -> None:
    entry: Dict[str, Any] = {
        "test": nodeid,
        "wall_seconds": round(wall_seconds, 4),
    }
    name = getattr(result, "name", None)
    if isinstance(name, str):
        entry["experiment"] = name
    summary = getattr(result, "summary", None)
    if isinstance(summary, dict):
        entry["summary"] = {
            key: value for key, value in summary.items()
            if isinstance(value, (int, float, str, bool))
        }
    _RESULTS.append(entry)


@pytest.fixture
def once(benchmark, request):
    """Fixture wrapping run_once with the benchmark bound.

    Also records the benchmark's wall time and summary metrics for the
    session's ``BENCH_results.json``.
    """

    def runner(fn, *args, **kwargs):
        started = time.perf_counter()
        result = run_once(benchmark, fn, *args, **kwargs)
        _record(request.node.nodeid, time.perf_counter() - started, result)
        return result

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Write collected benchmark records to BENCH_results.json."""
    if not _RESULTS:
        return
    path = Path(os.environ.get("BENCH_RESULTS_PATH", "BENCH_results.json"))
    payload = {
        "schema": 1,
        "exit_status": int(exitstatus),
        "results": sorted(_RESULTS, key=lambda entry: entry["test"]),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
