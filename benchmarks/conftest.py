"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure: it runs the
experiment driver (once -- these are whole-system simulations, not
microseconds-scale snippets), prints the paper-style rows so the output
can be compared against the original, and asserts the headline shape.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment benchmark exactly once and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping run_once with the benchmark bound."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
