"""Benchmark: distributed lottery scheduling (§4.2 extension)."""

import pytest

from repro.experiments import cluster_fairness


def test_cluster_global_fairness(once):
    result = once(cluster_fairness.run, duration_ms=200_000.0)
    result.print_report()
    static_error = float(
        result.summary["max relative error (static placement)"]
    )
    balanced_error = float(
        result.summary["max relative error (rebalancing)"]
    )
    # With worst-case placement, independent node lotteries cannot honour
    # global shares; funding-balancing migration restores them.
    assert static_error > 0.4
    assert balanced_error < 0.25
    assert balanced_error < static_error / 2
    assert result.summary["migrations (rebalancing)"] > 0
