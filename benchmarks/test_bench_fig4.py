"""Benchmark: regenerate Figure 4 (relative rate accuracy, §5.1)."""

import pytest

from repro.experiments import fig4_rate_accuracy


def test_fig4_rate_accuracy(once):
    result = once(
        fig4_rate_accuracy.run,
        ratios=list(range(1, 11)),
        runs=3,
        duration_ms=60_000.0,
    )
    result.print_report()
    # Paper shape: every observed ratio close to the diagonal; spread
    # grows with the allocated ratio.
    for row in result.rows:
        assert row["observed"] == pytest.approx(row["allocated"], rel=0.4)
    small = [abs(r["observed"] - r["allocated"]) for r in result.rows
             if r["allocated"] <= 2]
    large = [abs(r["observed"] - r["allocated"]) for r in result.rows
             if r["allocated"] >= 9]
    assert max(small) < max(large) + 1.0  # absolute spread grows


def test_fig4_twenty_to_one_long_run(once):
    # The paper's 20:1 x 3-minute check: observed 19.08:1.
    ratio = once(
        fig4_rate_accuracy.run_single, 20.0, 180_000.0, seed=2020
    )
    print(f"\n20:1 over 3 minutes -> observed {ratio:.2f}:1 (paper 19.08:1)")
    assert ratio == pytest.approx(20.0, rel=0.15)
