"""Benchmark: the §6.3 multi-resource manager extension."""

import pytest

from repro.experiments import multiresource


def test_manager_tracks_phase_shift(once):
    result = once(multiresource.run, duration_ms=400_000.0)
    result.print_report()
    items = {row["policy"]: row["items"] for row in result.rows}
    # Each lopsided static split is wrong for one of the two phases;
    # the manager tracks the shift, matching the best static and
    # clearly beating both lopsided splits.
    assert items["manager"] >= 0.95 * max(
        items["static-50"], items["static-disk"], items["static-cpu"]
    )
    assert items["manager"] > 1.1 * items["static-disk"]
    assert items["manager"] > 1.1 * items["static-cpu"]
    # The manager actually adapted (many rebalances) and ended CPU-heavy.
    manager_row = next(r for r in result.rows if r["policy"] == "manager")
    assert manager_row["rebalances"] > 10
    final = result.summary["manager final split"]
    cpu = float(final.split("cpu=")[1].split(",")[0])
    disk = float(final.split("disk=")[1].split(" ")[0])
    assert cpu > disk
