"""Benchmark: regenerate the §5.6 overhead comparison."""

from repro.experiments import overhead


def test_overhead_dhrystone_and_database(once):
    result = once(overhead.run, duration_ms=100_000.0)
    result.print_report()
    # Paper claim: the (unoptimized) lottery scheduler's overhead is
    # comparable to the standard timesharing policy -- here, host cost
    # per dispatch within a small factor.
    factor = float(
        result.summary["lottery/timesharing dispatch cost"].split("x")[0]
    )
    assert 0.2 < factor < 5.0
    # Both policies deliver the same virtual CPU to the workload.
    iterations = {row["policy"]: row["iterations"] for row in result.rows}
    assert iterations["lottery"] > 0.95 * iterations["timesharing"]
    assert iterations["lottery"] < 1.05 * iterations["timesharing"]
