"""Benchmark: regenerate Figure 5 (fairness over time, §5.1)."""

import pytest

from repro.experiments import fig5_fairness_over_time
from repro.metrics.stats import mean


def test_fig5_fairness_over_time(once):
    result = once(
        fig5_fairness_over_time.run,
        duration_ms=200_000.0,
        window_ms=8_000.0,
        ratio=2.0,
    )
    result.print_report()
    ratios = [row["ratio"] for row in result.rows]
    # Paper shape: windows scatter around 2:1 (overall run 2.01:1),
    # with visible window-to-window variation.
    assert mean(ratios) == pytest.approx(2.0, rel=0.1)
    assert max(ratios) > 2.1
    assert min(ratios) < 1.9
    overall = result.summary["overall ratio"]
    assert float(overall.split(":")[0]) == pytest.approx(2.0, rel=0.1)
