"""Benchmarks: the ablation experiments (A2 CV law, A3 stride, A4 comp)."""

import pytest

from repro.experiments import ablations


def test_a2_quantum_accuracy_law(once):
    result = once(
        ablations.run_quantum_accuracy,
        lottery_counts=(100, 400, 1600, 6400),
        trials=200,
    )
    result.print_report()
    # Empirical CV tracks sqrt((1-p)/(np)) within a factor; and halving
    # the quantum (4x lotteries) halves the CV.
    for row in result.rows:
        assert 0.6 < row["ratio"] < 1.6
    cv_by_count = {row["lotteries"]: row["observed_cv"]
                   for row in result.rows}
    assert cv_by_count[6400] < cv_by_count[100] / 4


def test_a3_lottery_vs_stride_error(once):
    result = once(
        ablations.run_lottery_vs_stride,
        checkpoints_ms=(1_000, 10_000, 100_000),
    )
    result.print_report()
    stride = [r["max_error_quanta"] for r in result.rows
              if r["policy"] == "stride"]
    lottery = [r["max_error_quanta"] for r in result.rows
               if r["policy"] == "lottery"]
    # Stride: O(1) error at every horizon; lottery: grows with time.
    assert max(stride) <= 1.5
    assert lottery[-1] > max(stride)
    assert lottery[-1] > lottery[0]


def test_a4_compensation_tickets(once):
    result = once(ablations.run_compensation, duration_ms=300_000.0)
    result.print_report()
    with_comp = next(r for r in result.rows if r["policy"] == "lottery")
    without = next(r for r in result.rows
                   if r["policy"] == "lottery-no-compensation")
    # Section 4.5's worked example: ~1:1 with compensation, ~5:1 without
    # (the fraction-of-quantum user loses exactly its unused fraction).
    assert with_comp["cpu_ratio"] == pytest.approx(1.0, rel=0.15)
    assert without["cpu_ratio"] == pytest.approx(5.0, rel=0.2)
