"""Benchmark: regenerate Figure 9 (currencies insulate loads, §5.5)."""

import pytest

from repro.experiments import fig9_load_insulation


def test_fig9_load_insulation(once):
    result = once(fig9_load_insulation.run, duration_ms=300_000.0)
    result.print_report()
    # Paper shape: B3's arrival halves B1/B2's rates, leaves A1/A2
    # unchanged, and the aggregate A:B slope stays 1:1 (paper: 1.01:1
    # before, 1.00:1 after, aggregate 1.01:1).
    aggregate = float(
        result.summary["aggregate A:B iterations"].split(":")[0]
    )
    assert aggregate == pytest.approx(1.0, abs=0.1)

    def factor(label):
        return float(result.summary[label].split("(")[1].split("x")[0])

    assert factor("B1 rate (before -> after B3)") == pytest.approx(0.5,
                                                                   abs=0.12)
    assert factor("B2 rate (before -> after B3)") == pytest.approx(0.5,
                                                                   abs=0.12)
    assert factor("A1 rate (before -> after B3)") == pytest.approx(1.0,
                                                                   abs=0.2)
    assert factor("A2 rate (before -> after B3)") == pytest.approx(1.0,
                                                                   abs=0.2)
