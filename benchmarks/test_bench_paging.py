"""Benchmark: §6.2 end-to-end — paging policy vs runtime throughput."""

import pytest

from repro.experiments import paging_runtime


def test_memory_tickets_protect_runtime(once):
    result = once(paging_runtime.run, duration_ms=120_000.0)
    result.print_report()
    rows = {row["policy"]: row for row in result.rows}
    inverse = rows["inverse-lottery"]
    lru = rows["lru"]
    # The funded worker keeps far more of its working set resident...
    assert inverse["worker_resident"] > 2 * lru["worker_resident"]
    # ...faults far less...
    assert inverse["worker_fault_rate"] < lru["worker_fault_rate"] / 1.8
    # ...and therefore computes meaningfully faster under pressure.
    assert inverse["worker_steps"] > 1.2 * lru["worker_steps"]
    # The scanner misses everywhere under both policies (its set never
    # fits), so the worker's gain is not the scanner's loss of hits.
    assert inverse["scanner_fault_rate"] == pytest.approx(1.0, abs=0.02)
    assert lru["scanner_fault_rate"] == pytest.approx(1.0, abs=0.02)
