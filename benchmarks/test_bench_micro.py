"""Micro-benchmarks of the core scheduling operations (§4.2, §5.6).

The paper argues the core mechanism is "extremely lightweight" -- a
random number and a short list walk per decision, lg(n) work with the
tree.  These benchmarks time the individual operations (these ARE
microsecond-scale, so they use normal pytest-benchmark rounds) and
check the list-vs-tree scaling ablation (A1).
"""

import pytest

from repro.core.lottery import ListLottery, TreeLottery
from repro.core.prng import ParkMillerPRNG, fastrand
from repro.core.tickets import Ledger, TicketHolder
from repro.core.transfers import transfer_funding


def test_fastrand_step(benchmark):
    # Paper appendix: ~10 RISC instructions on a DECStation.
    result = benchmark(fastrand, 123456789)
    assert 0 < result < 2**31 - 1


def test_list_lottery_draw_10_clients(benchmark):
    values = {f"c{i}": float(i + 1) for i in range(10)}
    lottery = ListLottery(value_of=values.__getitem__)
    for client in values:
        lottery.add(client)
    prng = ParkMillerPRNG(7)
    benchmark(lottery.draw, prng)


def test_list_lottery_draw_1000_clients(benchmark):
    values = {f"c{i}": float(i + 1) for i in range(1000)}
    lottery = ListLottery(value_of=values.__getitem__)
    for client in values:
        lottery.add(client)
    prng = ParkMillerPRNG(7)
    benchmark(lottery.draw, prng)


def test_tree_lottery_draw_1000_clients(benchmark):
    lottery = TreeLottery()
    for i in range(1000):
        lottery.add(f"c{i}", float(i + 1))
    prng = ParkMillerPRNG(7)
    benchmark(lottery.draw, prng)


def test_tree_lottery_update(benchmark):
    lottery = TreeLottery()
    for i in range(1000):
        lottery.add(f"c{i}", float(i + 1))
    benchmark(lottery.set_value, "c500", 42.0)


def test_tree_beats_list_on_search_length(once):
    """A1 ablation: average examined clients, list vs sorted-list vs
    move-to-front vs tree, on a skewed 256-client population."""

    def compare():
        values = {f"c{i}": 1.0 for i in range(255)}
        values["hog"] = 255.0  # one client holds half the tickets
        prng = ParkMillerPRNG(31)
        plain = ListLottery(value_of=values.__getitem__,
                            move_to_front=False)
        mtf = ListLottery(value_of=values.__getitem__, move_to_front=True)
        sorted_lottery = ListLottery(value_of=values.__getitem__,
                                     move_to_front=False, keep_sorted=True)
        tree = TreeLottery()
        for client, value in values.items():
            plain.add(client)
            mtf.add(client)
            sorted_lottery.add(client)
            tree.add(client, value)
        for _ in range(4000):
            plain.draw(prng)
            mtf.draw(prng)
            sorted_lottery.draw(prng)
            tree.draw(prng)
        return {
            "plain list": plain.stats.average_search_length(),
            "move-to-front": mtf.stats.average_search_length(),
            "sorted list": sorted_lottery.stats.average_search_length(),
            "partial-sum tree": tree.stats.average_search_length(),
        }

    report = once(compare)
    print("\nA1: average search length per draw (256 skewed clients)")
    for name, value in report.items():
        print(f"  {name:<18} {value:8.2f}")
    assert report["move-to-front"] < report["plain list"]
    assert report["sorted list"] < report["plain list"]
    assert report["partial-sum tree"] <= 9  # lg(256) = 8 levels


def test_currency_valuation(benchmark):
    """Cost of a cached base-value computation through a 3-level graph."""
    ledger = Ledger()
    user = ledger.create_currency("user")
    ledger.create_ticket(1000, fund=user)
    task = ledger.create_currency("task")
    ledger.create_ticket(100, currency=user, fund=task)
    holder = TicketHolder("h")
    ticket = ledger.create_ticket(10, currency=task, fund=holder)
    holder.start_competing()
    value = benchmark(ticket.base_value)
    assert value == pytest.approx(1000)


def test_ticket_transfer_roundtrip(benchmark):
    """Mint + revoke one RPC transfer (the §4.6 hot path)."""
    ledger = Ledger()
    client = TicketHolder("client")
    ledger.create_ticket(500, fund=client)
    server = TicketHolder("server")
    server.start_competing()

    def roundtrip():
        handle = transfer_funding(ledger, client, server)
        handle.revoke()

    benchmark(roundtrip)


def test_dispatch_cost_lottery_vs_timesharing(benchmark):
    """§5.6 micro view: host cost of simulating 1000 quanta."""
    from tests.conftest import make_lottery_kernel, spin_body

    def run_1000_quanta():
        kernel = make_lottery_kernel(seed=5)
        for i in range(5):
            kernel.spawn(spin_body(100.0), f"t{i}", tickets=100)
        kernel.run_until(100_000)  # 1000 dispatches
        return kernel.dispatch_count

    dispatches = benchmark(run_1000_quanta)
    assert dispatches >= 1000
