"""Benchmark: regenerate Figure 7 (query processing rates, §5.3)."""

import pytest

from repro.experiments import fig7_query_rates


def test_fig7_query_rates(once):
    result = once(fig7_query_rates.run)
    result.print_report()
    # Paper shape: B:C throughput ~3:1; when the 8-ticket client
    # finished its 20 queries the others had completed ~10; response
    # times ordered A < B < C with ratios tracking 1 : 8/3 : 8
    # (paper observed 1 : 2.51 : 7.69, itself below the ideal).
    ratio = float(result.summary["B:C throughput ratio"].split(":")[0])
    assert ratio == pytest.approx(3.0, rel=0.25)
    others = result.summary["B+C queries when A finished"]
    assert 5 <= others <= 20  # paper: 10
    response = result.summary["response time ratio"]
    parts = [p.strip() for p in response.split("(")[0].split(":")]
    b_over_a, c_over_a = float(parts[1]), float(parts[2])
    assert 1.5 < b_over_a < 3.5
    assert 3.5 < c_over_a < 9.0
    assert "[8]" in result.summary["query result (occurrences)"]
