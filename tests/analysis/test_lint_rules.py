"""Unit tests for every determinism-lint rule (RPR001..RPR013).

Each rule gets positive fixtures (the hazard is flagged), negative
fixtures (clean or out-of-zone code is not), and a noqa-suppressed
fixture.  The closing test asserts the acceptance criterion: the repo's
own sources lint clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.lint import RULES, lint_paths, lint_source, zone_of

KERNEL_PATH = "repro/kernel/fixture.py"
SCHED_PATH = "repro/schedulers/fixture.py"
CORE_PATH = "repro/core/fixture.py"
EXPERIMENT_PATH = "repro/experiments/fixture.py"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def ids(source: str, path: str = KERNEL_PATH):
    """Rule IDs found in a dedented fixture snippet."""
    return [f.rule_id for f in lint_source(textwrap.dedent(source), path)]


# -- zones ------------------------------------------------------------------


def test_zone_of_maps_subpackages():
    assert zone_of("src/repro/kernel/kernel.py") == "kernel"
    assert zone_of("/tmp/x/repro/schedulers/s.py") == "schedulers"
    assert zone_of("src/repro/errors.py") == ""
    assert zone_of("somewhere/else.py") is None


# -- RPR001: nondeterministic RNG ------------------------------------------


def test_rpr001_flags_random_import():
    assert ids("import random\n") == ["RPR001"]


def test_rpr001_flags_secrets_from_import():
    assert ids("from secrets import token_bytes\n") == ["RPR001"]


def test_rpr001_applies_outside_deterministic_zones():
    assert ids("import random\n", EXPERIMENT_PATH) == ["RPR001"]


def test_rpr001_clean_on_park_miller():
    assert ids("from repro.core.prng import ParkMillerPRNG\n") == []


def test_rpr001_noqa_suppresses():
    src = "import random  # repro: noqa[RPR001] -- seeding test fixture\n"
    assert ids(src) == []


# -- RPR002: wall-clock reads ----------------------------------------------


def test_rpr002_flags_time_time():
    src = """
    import time

    def stamp():
        return time.time()
    """
    assert ids(src) == ["RPR002"]


def test_rpr002_flags_from_import_and_aliases():
    src = """
    from time import perf_counter
    import time as t

    def stamp():
        return perf_counter() + t.monotonic()
    """
    assert ids(src) == ["RPR002", "RPR002"]


def test_rpr002_flags_datetime_now():
    src = """
    from datetime import datetime

    def stamp():
        return datetime.now()
    """
    assert ids(src) == ["RPR002"]


def test_rpr002_exempt_outside_zone():
    src = """
    import time

    def stamp():
        return time.perf_counter()
    """
    assert ids(src, EXPERIMENT_PATH) == []


def test_rpr002_ignores_non_clock_time_calls():
    src = """
    import time

    def pause():
        time.sleep(1)
    """
    # time.sleep is not a wall-clock *read*; RPR006 owns it instead.
    assert "RPR002" not in ids(src)
    assert ids(src) == ["RPR006"]


def test_rpr002_noqa_suppresses():
    src = """
    import time

    def stamp():
        return time.time()  # repro: noqa[RPR002] -- profiling only
    """
    assert ids(src) == []


# -- RPR003: unordered iteration -------------------------------------------


def test_rpr003_flags_set_literal_loop():
    src = """
    def pick(queue):
        for thread in {1, 2, 3}:
            queue.append(thread)
    """
    assert ids(src, SCHED_PATH) == ["RPR003"]


def test_rpr003_flags_dict_view_loop():
    src = """
    def pick(levels):
        for level in levels.values():
            level.pop()
    """
    assert ids(src, SCHED_PATH) == ["RPR003"]


def test_rpr003_flags_set_call_in_comprehension():
    src = "winners = [t for t in set(threads)]\n"
    assert ids(src, SCHED_PATH) == ["RPR003"]


def test_rpr003_sorted_wrapper_is_clean():
    src = """
    def pick(levels):
        for key, level in sorted(levels.items()):
            level.pop()
    """
    assert ids(src, SCHED_PATH) == []


def test_rpr003_order_insensitive_reduction_is_clean():
    src = "total = sum(len(level) for level in levels.values())\n"
    assert ids(src, SCHED_PATH) == []


def test_rpr003_exempt_outside_zone():
    src = "names = [n for n in results.keys()]\n"
    assert ids(src, "repro/metrics/fixture.py") == []


def test_rpr003_noqa_suppresses():
    src = ("for k in table.values():  "
           "# repro: noqa[RPR003] -- insertion order\n    pass\n")
    assert ids(src, SCHED_PATH) == []


# -- RPR004: float hazards on ticket quantities ----------------------------


def test_rpr004_flags_float_cast_on_amount():
    src = """
    def issue(amount):
        return float(amount)
    """
    assert ids(src, CORE_PATH) == ["RPR004"]


def test_rpr004_flags_exact_equality_on_tickets():
    src = """
    def same(ticket_amount):
        return ticket_amount == 400.0
    """
    assert ids(src, CORE_PATH) == ["RPR004"]


def test_rpr004_attribute_base_name_is_not_a_quantity():
    src = """
    def is_compensation(ticket):
        return ticket.tag != "compensation"
    """
    assert ids(src, CORE_PATH) == []


def test_rpr004_ordering_comparisons_are_clean():
    src = """
    def valid(amount):
        return amount >= 0
    """
    assert ids(src, CORE_PATH) == []


def test_rpr004_unrelated_float_cast_is_clean():
    assert ids("quantum = float(100)\n", CORE_PATH) == []


def test_rpr004_noqa_suppresses():
    src = ("value = float(amount)  "
           "# repro: noqa[RPR004] -- real-valued by design\n")
    assert ids(src, CORE_PATH) == []


# -- RPR005: mutable default arguments -------------------------------------


def test_rpr005_flags_list_and_dict_defaults():
    src = """
    def spawn(body, tickets=[], registry={}):
        pass
    """
    assert ids(src) == ["RPR005", "RPR005"]


def test_rpr005_flags_constructor_call_default():
    src = """
    def spawn(body, owners=dict()):
        pass
    """
    assert ids(src) == ["RPR005"]


def test_rpr005_none_default_is_clean():
    src = """
    def spawn(body, tickets=None):
        pass
    """
    assert ids(src) == []


def test_rpr005_noqa_suppresses():
    src = ("def spawn(body, tickets=[]):  "
           "# repro: noqa[RPR005] -- never mutated\n    pass\n")
    assert ids(src) == []


# -- RPR006: blocking sleeps and ad-hoc retry loops -------------------------


def test_rpr006_flags_time_sleep_everywhere():
    src = """
    import time

    def wait():
        time.sleep(0.5)
    """
    # Applies outside the deterministic zones too (rule has no zone list).
    assert ids(src, EXPERIMENT_PATH) == ["RPR006"]


def test_rpr006_flags_aliased_sleep():
    src = """
    import time as t

    def wait():
        t.sleep(1)
    """
    assert ids(src) == ["RPR006"]


def test_rpr006_flags_except_continue_retry_loop():
    src = """
    def fetch(op):
        while True:
            try:
                return op()
            except ValueError:
                continue
    """
    assert ids(src) == ["RPR006"]


def test_rpr006_flags_for_loop_retry():
    src = """
    def fetch(op):
        for _ in range(3):
            try:
                return op()
            except ValueError:
                continue
    """
    assert ids(src) == ["RPR006"]


def test_rpr006_ignores_try_without_continue():
    src = """
    def fetch(op):
        while True:
            try:
                return op()
            except ValueError:
                return None
    """
    assert ids(src) == []


def test_rpr006_ignores_continue_outside_handler():
    src = """
    def drain(items):
        for item in items:
            if item is None:
                continue
            try:
                item.close()
            except ValueError:
                pass
    """
    assert ids(src) == []


def test_rpr006_ignores_continue_of_nested_loop():
    src = """
    def fetch(ops):
        while True:
            try:
                return ops.pop()
            except ValueError:
                for op in ops:
                    if op is None:
                        continue
                return None
    """
    # The continue belongs to the inner for, not the retry while.
    assert ids(src) == []


def test_rpr006_noqa_suppresses():
    src = """
    import time

    def wait():
        time.sleep(1)  # repro: noqa[RPR006] -- host warm-up, not sim
    """
    assert ids(src) == []


# -- RPR008: print in library zones -----------------------------------------


def test_rpr008_flags_print_in_kernel_zone():
    src = """
    def report(thread):
        print(thread.name)
    """
    assert ids(src) == ["RPR008"]


def test_rpr008_allows_print_in_presentation_zones():
    src = "print('table')\n"
    assert ids(src, EXPERIMENT_PATH) == []
    assert ids(src, "repro/cli/fixture.py") == []


def test_rpr008_allows_print_in_main_entry_points():
    assert ids("print('usage')\n", "repro/kernel/__main__.py") == []


def test_rpr008_applies_outside_known_zones_of_repro():
    # zone "" (repro top level) is still library code.
    assert ids("print('x')\n", "repro/errors.py") == ["RPR008"]


def test_rpr008_ignores_shadowed_print():
    src = """
    def report(printer):
        printer.print("x")
    """
    assert ids(src) == []


def test_rpr008_noqa_suppresses():
    src = "print('dbg')  # repro: noqa[RPR008] -- temporary probe\n"
    assert ids(src) == []


# -- RPR009: recorder sink surface audit -------------------------------------


def test_rpr009_flags_registered_sink_missing_methods():
    src = """
    class NullRecorder:
        def on_dispatch(self, thread, time):
            pass
    """
    findings = lint_source(textwrap.dedent(src),
                           "repro/metrics/recorder.py")
    assert [f.rule_id for f in findings] == ["RPR009"]
    assert "on_exit" in findings[0].message


def test_rpr009_full_surface_is_clean():
    src = """
    class NullRecorder:
        def on_dispatch(self, thread, time):
            pass

        def on_cpu(self, thread, start, duration):
            pass

        def on_block(self, thread, time):
            pass

        def on_wake(self, thread, time):
            pass

        def on_exit(self, thread, time):
            pass
    """
    assert ids(src, "repro/metrics/recorder.py") == []


def test_rpr009_ignores_unregistered_classes():
    src = """
    class Helper:
        def on_dispatch(self, thread, time):
            pass
    """
    assert ids(src, "repro/metrics/recorder.py") == []


def test_rpr009_inherited_methods_do_not_count():
    src = """
    class KernelProbe(NullRecorder):
        def on_dispatch(self, thread, time):
            pass
    """
    findings = lint_source(textwrap.dedent(src),
                           "repro/telemetry/probe.py")
    assert [f.rule_id for f in findings] == ["RPR009"]


# -- RPR010: per-draw linear revaluation ------------------------------------


def test_rpr010_flags_funding_loop_in_select():
    src = """
    class Policy:
        def select(self):
            for member in self.members:
                total += member.funding()
    """
    assert "RPR010" in ids(src, SCHED_PATH)


def test_rpr010_flags_valuation_comprehension_in_select():
    src = """
    class Policy:
        def select(self):
            values = [t.base_value() for t in self.tickets]
            return values
    """
    assert "RPR010" in ids(src, SCHED_PATH)


def test_rpr010_flags_while_loop_rescan():
    src = """
    class Policy:
        def select(self):
            index = 0
            while index < len(self.members):
                total += self.members[index].nominal_funding()
                index += 1
    """
    assert "RPR010" in ids(src, SCHED_PATH)


def test_rpr010_inner_loop_reports_once():
    src = """
    class Policy:
        def select(self):
            for group in self.groups:
                for member in group:
                    total += member.funding()
    """
    assert ids(src, SCHED_PATH).count("RPR010") == 1


def test_rpr010_valuation_outside_loop_is_clean():
    src = """
    class Policy:
        def select(self):
            winner = self.tree.draw(self.prng)
            funding = winner.funding()
            for member in self.members:
                member.touch()
            return winner
    """
    assert ids(src, SCHED_PATH) == []


def test_rpr010_loop_outside_select_is_clean():
    src = """
    class Policy:
        def rebuild(self):
            for member in self.members:
                self.tree.set_value(member, member.funding())
    """
    assert ids(src, SCHED_PATH) == []


def test_rpr010_exempt_outside_zone():
    src = """
    class Exporter:
        def select(self):
            return [t.funding() for t in self.threads]
    """
    assert ids(src, "repro/metrics/fixture.py") == []


def test_rpr010_noqa_suppresses():
    src = """
    class Policy:
        def select(self):
            for member in self.dirty:  # repro: noqa[RPR010] -- bounded by invalidations
                self.tree.set_value(member, member.funding())
    """
    assert ids(src, SCHED_PATH) == []


# -- RPR011: undeclared module-level mutable state --------------------------


def test_rpr011_flags_bare_module_dict():
    assert ids("REGISTRY = {}\n") == ["RPR011"]


def test_rpr011_flags_container_constructors():
    src = """
    from collections import defaultdict
    WAITERS = defaultdict(list)
    QUEUE = list()
    """
    assert ids(src) == ["RPR011", "RPR011"]


def test_rpr011_shard_marker_with_reason_declares_ownership():
    src = "TABLE = {}  # shard: shard-local -- rule table, frozen at import\n"
    assert ids(src) == []


def test_rpr011_marker_without_reason_does_not_count():
    src = "TABLE = {}  # shard: barrier-shared\n"
    findings = lint_source(src, KERNEL_PATH)
    assert [f.rule_id for f in findings] == ["RPR011"]
    assert "without a justification" in findings[0].message


def test_rpr011_spec_registered_global_is_exempt():
    # _construction_hooks is declared in src/repro/analysis/shardmap.toml.
    src = "_construction_hooks = []\n"
    assert ids(src, "src/repro/kernel/kernel.py") == []


def test_rpr011_dunder_and_scalars_are_exempt():
    src = """
    __all__ = ["f"]
    _enabled = False
    LIMIT = 10
    """
    assert ids(src) == []


def test_rpr011_exempt_outside_deterministic_zones():
    assert ids("CACHE = {}\n", "repro/metrics/fixture.py") == []


def test_rpr011_function_locals_are_exempt():
    src = """
    def build():
        table = {}
        return table
    """
    assert ids(src) == []


# -- RPR012: host-concurrency imports ---------------------------------------


def test_rpr012_flags_multiprocessing_import():
    findings = lint_source("import multiprocessing\n", KERNEL_PATH)
    assert [f.rule_id for f in findings] == ["RPR012"]
    assert "multiprocessing" in findings[0].message


def test_rpr012_flags_threading_and_thread():
    assert ids("import threading\n") == ["RPR012"]
    assert ids("import _thread\n", SCHED_PATH) == ["RPR012"]


def test_rpr012_flags_concurrent_futures_from_import():
    src = "from concurrent.futures import ThreadPoolExecutor\n"
    assert ids(src, CORE_PATH) == ["RPR012"]


def test_rpr012_flags_aliased_import():
    assert ids("import multiprocessing as mp\n",
               "repro/distributed/fixture.py") == ["RPR012"]


def test_rpr012_shard_zone_is_exempt():
    # repro.shard owns the worker processes: its epoch barriers
    # re-serialize cross-core effects, so the import is sanctioned.
    src = "import multiprocessing\nimport threading\n"
    assert ids(src, "repro/shard/fixture.py") == []


def test_rpr012_exempt_outside_deterministic_zones():
    assert ids("import threading\n", EXPERIMENT_PATH) == []


def test_rpr012_noqa_requires_justification():
    flagged = "import threading  # repro: noqa[RPR012]\n"
    assert ids(flagged) == ["RPR000"]
    justified = ("import threading  "
                 "# repro: noqa[RPR012] -- wait-free probe, test-only\n")
    assert ids(justified) == []


# -- RPR013: cross-owner telemetry mutation ---------------------------------

SHARD_PATH = "repro/shard/fixture.py"
TELEMETRY_PATH = "repro/telemetry/fixture.py"


def test_rpr013_flags_foreign_hub_tracer_event():
    src = """
    def apply(core, now):
        core.telemetry.tracer.event("t", "x", "shard", now)
    """
    findings = lint_source(textwrap.dedent(src), SHARD_PATH)
    assert [f.rule_id for f in findings] == ["RPR013"]
    assert "core.telemetry" in findings[0].message


def test_rpr013_flags_registry_write_through_subscript_and_call():
    src = """
    def bump(cores, cid):
        cores[cid].telemetry.registry.counter("n").inc()
    """
    assert ids(src, TELEMETRY_PATH) == ["RPR013"]


def test_rpr013_own_hub_is_exempt():
    src = """
    class Core:
        def note(self, now):
            self.telemetry.tracer.event("t", "x", "shard", now)
    """
    assert ids(src, SHARD_PATH) == []


def test_rpr013_barrier_seam_exempts():
    src = """
    from repro.shard.router import race_seam

    def apply(core, now):
        with race_seam("shard.barrier"):
            core.telemetry.tracer.event("t", "x", "shard", now)
    """
    assert ids(src, SHARD_PATH) == []


def test_rpr013_other_seams_do_not_exempt():
    src = """
    from repro.shard.router import race_seam

    def apply(core, now):
        with race_seam("shard.migrate"):
            core.telemetry.registry.gauge("g").set(1.0)
    """
    assert ids(src, SHARD_PATH) == ["RPR013"]


def test_rpr013_out_of_zone_is_exempt():
    src = """
    def apply(core, now):
        core.telemetry.tracer.event("t", "x", "shard", now)
    """
    assert ids(src, KERNEL_PATH) == []
    assert ids(src, EXPERIMENT_PATH) == []


def test_rpr013_non_mutator_reads_are_exempt():
    src = """
    def peek(core):
        return core.telemetry.registry.as_dict()
    """
    assert ids(src, SHARD_PATH) == []


def test_rpr013_noqa_requires_justification():
    line = ('def f(core):\n'
            '    core.telemetry.tracer.finalize(0.0)'
            '  # repro: noqa[RPR013]\n')
    assert ids(line, SHARD_PATH) == ["RPR000"]
    justified = ('def f(core):\n'
                 '    core.telemetry.tracer.finalize(0.0)'
                 '  # repro: noqa[RPR013] -- teardown after joins\n')
    assert ids(justified, SHARD_PATH) == []


RPR013_FIXTURES = Path(__file__).parent / "fixtures" / "lint_rpr013"


def test_rpr013_fixture_package_findings():
    findings = lint_paths([RPR013_FIXTURES])
    assert [f.rule_id for f in findings] == ["RPR013", "RPR013"]
    assert all("legacy_probe.py" in f.path for f in findings)
    # the seam-covered write in the same file is not among them
    assert {f.line for f in findings} == {14, 19}


def test_rpr013_baseline_adoption_workflow(tmp_path):
    from repro.analysis.report import (filter_new, load_baseline,
                                       write_baseline)

    findings = lint_paths([RPR013_FIXTURES])
    baseline_path = tmp_path / "lint-baseline.json"
    count = write_baseline(findings, baseline_path, tool="repro-lint")
    assert count == 2
    baseline = load_baseline(baseline_path)
    # adopted: the pre-existing violations no longer fail the run
    assert filter_new(lint_paths([RPR013_FIXTURES]), baseline) == []
    # a NEW violation still fails against the same baseline
    new_file = tmp_path / "repro" / "shard" / "fresh.py"
    new_file.parent.mkdir(parents=True)
    new_file.write_text(
        "def f(core):\n"
        "    core.telemetry.registry.gauge('g').set(1.0)\n",
        encoding="utf-8")
    fresh = filter_new(lint_paths([tmp_path]), baseline)
    assert [f.rule_id for f in fresh] == ["RPR013"]


# -- suppression syntax -----------------------------------------------------


def test_noqa_with_wrong_id_does_not_suppress():
    src = "import random  # repro: noqa[RPR002] -- aimed at the wrong rule\n"
    assert ids(src) == ["RPR001"]


def test_bare_noqa_suppresses_every_rule_on_the_line():
    src = "import random  # repro: noqa -- fixture exercises stdlib RNG\n"
    assert ids(src) == []


def test_noqa_without_justification_is_rpr000():
    src = "import random  # repro: noqa[RPR001]\n"
    # The RPR001 finding is suppressed, but the naked suppression is
    # itself a finding -- and that one cannot be noqa'd away.
    assert ids(src) == ["RPR000"]


def test_bare_noqa_without_justification_cannot_self_suppress():
    src = "import random  # repro: noqa\n"
    assert ids(src) == ["RPR000"]


def test_noqa_in_docstring_is_not_a_suppression():
    src = '"""mentions # repro: noqa[RPR001] in prose"""\nimport random\n'
    assert ids(src) == ["RPR001"]


def test_noqa_accepts_id_lists():
    src = ("def f(amount, bad=[]):  "
           "# repro: noqa[RPR004, RPR005] -- fixture\n"
           "    return float(amount)\n")
    findings = lint_source(src, CORE_PATH)
    # Only the float() cast survives: it sits on line 2, away from the noqa.
    assert [f.rule_id for f in findings] == ["RPR004"]


# -- suppression inventory --------------------------------------------------


def test_iter_suppressions_reports_codes_and_justification():
    from repro.analysis.lint import iter_suppressions

    src = ("import random  # repro: noqa[RPR001] -- fixture entropy\n"
           "x = 1\n"
           "import secrets  # repro: noqa\n")
    entries = iter_suppressions(src, KERNEL_PATH)
    assert [(e.line, e.codes, e.justification) for e in entries] == [
        (1, ("RPR001",), "fixture entropy"),
        (3, (), ""),
    ]
    assert "NO JUSTIFICATION" in entries[1].format()


def test_iter_suppressions_skips_strings_and_docstrings():
    from repro.analysis.lint import iter_suppressions

    src = ('"""docs say use # repro: noqa[RPR001] -- like so"""\n'
           'MSG = "# repro: noqa"\n')
    assert iter_suppressions(src, KERNEL_PATH) == []


def test_collect_suppressions_walks_directories(tmp_path):
    from repro.analysis.lint import collect_suppressions

    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(
        "import random  # repro: noqa[RPR001] -- why not\n")
    (pkg / "b.py").write_text("x = 1\n")
    entries = collect_suppressions([tmp_path])
    assert len(entries) == 1
    assert entries[0].codes == ("RPR001",)


# -- output & acceptance ----------------------------------------------------


def test_finding_format_names_location_and_rule():
    finding = lint_source("import random\n", KERNEL_PATH)[0]
    text = finding.format()
    assert KERNEL_PATH in text
    assert ":1:" in text
    assert "RPR001" in text


def test_every_rule_has_id_summary_and_fixit():
    assert set(RULES) == {"RPR000", "RPR001", "RPR002", "RPR003",
                          "RPR004", "RPR005", "RPR006", "RPR007",
                          "RPR008", "RPR009", "RPR010", "RPR011",
                          "RPR012", "RPR013"}
    for rule in RULES.values():
        assert rule.summary and rule.fixit and rule.slug


def test_rpr000_reports_syntax_error_as_finding():
    findings = lint_source("def broken(:\n", KERNEL_PATH)
    assert [f.rule_id for f in findings] == ["RPR000"]
    assert "syntax error" in findings[0].message


def test_rpr000_reports_unreadable_file(tmp_path):
    from repro.analysis.lint import lint_file

    findings = lint_file(tmp_path / "missing.py")
    assert [f.rule_id for f in findings] == ["RPR000"]
    assert "cannot read file" in findings[0].message


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("import random\n")
    (pkg / "clean.py").write_text("x = 1\n")
    findings = lint_paths([tmp_path])
    assert [f.rule_id for f in findings] == ["RPR001"]


def test_repo_sources_lint_clean():
    """Acceptance: the reproduction's own sources carry no findings."""
    findings = lint_paths([SRC_REPRO])
    assert findings == [], "\n".join(f.format() for f in findings)
