"""Tests for the whole-program shard-safety analyzer.

Each planted-hazard fixture package under ``fixtures/shardmap/`` yields
exactly one finding with a stable rule ID; the clean fixture yields
zero.  The closing acceptance tests pin the real tree: every mutable
location in ``src/repro`` classifies against the committed spec with
zero UNKNOWN and no hazards.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.shardmap import (SHARD_RULES, analyze_tree, render_doc,
                                     render_spec_skeleton, render_text)
from repro.analysis.shardspec import (BARRIER_SHARED, ShardSpec, SpecError,
                                      load_spec, parse_spec)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "shardmap"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def analyze_fixture(name: str, spec: ShardSpec = None):
    return analyze_tree(FIXTURES / name,
                        spec=spec if spec is not None else ShardSpec())


def rule_ids(shard_map):
    return [f.rule_id for f in shard_map.findings]


# -- planted hazards: one finding each, stable IDs ---------------------------


def test_escaped_alias_fixture_is_exactly_sh001():
    shard_map = analyze_fixture("escaped_alias")
    assert rule_ids(shard_map) == ["SH001"]
    finding = shard_map.findings[0]
    assert finding.location == "repro.kernel.host._current_engine"
    assert "alias" in finding.message


def test_shared_registry_fixture_is_exactly_sh002():
    shard_map = analyze_fixture("shared_registry")
    assert rule_ids(shard_map) == ["SH002"]
    assert shard_map.findings[0].location == "repro.kernel.registry.HANDLERS"


def test_global_counter_fixture_is_exactly_sh003():
    shard_map = analyze_fixture("global_counter")
    assert rule_ids(shard_map) == ["SH003"]
    assert shard_map.findings[0].location == "repro.kernel.ids._next_id"


def test_float_order_fixture_is_exactly_sh004():
    shard_map = analyze_fixture("float_order")
    assert rule_ids(shard_map) == ["SH004"]
    assert shard_map.findings[0].location == \
        "repro.distributed.metrics.cluster_funding"


def test_clean_fixture_has_zero_findings():
    shard_map = analyze_fixture("clean")
    assert rule_ids(shard_map) == []
    assert shard_map.unknown == []


def test_hazard_findings_suppress_duplicate_sh005():
    # The hazard on the undeclared global already names the location;
    # a second UNKNOWN-location finding there would be noise.
    shard_map = analyze_fixture("shared_registry")
    assert "SH005" not in rule_ids(shard_map)


def test_finding_format_is_path_line_rule_location():
    finding = analyze_fixture("global_counter").findings[0]
    text = finding.format()
    assert "SH003" in text
    assert "repro.kernel.ids._next_id" in text
    assert ":" in text.split(" ")[0]  # path:line:col prefix


# -- spec-driven classification ----------------------------------------------


def spec_from(text: str) -> ShardSpec:
    return parse_spec(textwrap.dedent(text))


def test_barrier_shared_declaration_legalizes_registry():
    spec = spec_from("""
        version = 1
        [globals."repro.kernel.registry.HANDLERS"]
        classification = "barrier-shared"
        reason = "handler table mutated only during setup"
    """)
    shard_map = analyze_fixture("shared_registry", spec)
    assert rule_ids(shard_map) == []
    locations = {loc.location: loc for loc in shard_map.locations}
    assert locations["repro.kernel.registry.HANDLERS"].classification == \
        BARRIER_SHARED


def test_allow_entry_waives_one_hazard():
    spec = spec_from("""
        version = 1
        [[allow]]
        id = "SH004"
        location = "repro.distributed.metrics.cluster_funding"
        reason = "measurement helper, runs at barriers only"
    """)
    assert rule_ids(analyze_fixture("float_order", spec)) == []


def test_allow_entry_is_rule_specific():
    spec = spec_from("""
        version = 1
        [[allow]]
        id = "SH001"
        location = "repro.distributed.metrics.cluster_funding"
        reason = "wrong rule on purpose"
    """)
    # An SH001 waiver does not silence the SH004 finding there.
    assert rule_ids(analyze_fixture("float_order", spec)) == ["SH004"]


def test_stale_spec_entry_is_sh006():
    spec = spec_from("""
        version = 1
        [globals."repro.kernel.tables.GONE"]
        classification = "shard-local"
        reason = "no longer exists"
    """)
    shard_map = analyze_fixture("clean", spec)
    assert rule_ids(shard_map) == ["SH006"]
    assert "repro.kernel.tables.GONE" in shard_map.findings[0].message


def test_misclassified_mutated_global_is_sh007():
    spec = spec_from("""
        version = 1
        [globals."repro.kernel.ids._next_id"]
        classification = "shard-local"
        reason = "wrong: two shards would collide"
        [[allow]]
        id = "SH003"
        location = "repro.kernel.ids._next_id"
        reason = "waived so the misclassification check is isolated"
    """)
    assert rule_ids(analyze_fixture("global_counter", spec)) == ["SH007"]


def test_marker_without_justification_leaves_unknown(tmp_path):
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text("TABLE = {}  # shard: shard-local\n")
    shard_map = analyze_tree(tmp_path, spec=ShardSpec())
    assert rule_ids(shard_map) == ["SH005"]


def test_seam_mismatch_is_sh008():
    spec = spec_from("""
        version = 1
        [meta]
        seams_must_match_runtime = true
        [[seams]]
        name = "ipc.reply"
        location = "repro.kernel.ipc.Request.reply"
        reason = "declared but incomplete set"
    """)
    shard_map = analyze_fixture("clean", spec)
    # One finding per seam the spec is missing relative to the runtime.
    assert rule_ids(shard_map) == ["SH008"] * 7
    missing = " ".join(f.message for f in shard_map.findings)
    for seam in ("ipc.deliver", "cluster.migrate", "cluster.evacuate",
                 "cluster.crash", "shard.barrier", "shard.migrate",
                 "shard.crash"):
        assert seam in missing


# -- spec loading ------------------------------------------------------------


def test_committed_spec_parses_with_fallback_parser():
    from repro.analysis import shardspec

    text = (SRC_REPRO / "analysis" / "shardmap.toml").read_text()
    data = shardspec._parse_toml_subset(text)
    spec = parse_spec(text)
    assert spec.seams_must_match_runtime
    assert data["version"] == 1
    tomllib = pytest.importorskip("tomllib")
    assert tomllib.loads(text) == data


def test_spec_rejects_missing_reason():
    with pytest.raises(SpecError, match="reason"):
        spec_from("""
            version = 1
            [globals."repro.kernel.x.Y"]
            classification = "shard-local"
        """)


def test_spec_rejects_bad_classification():
    with pytest.raises(SpecError, match="classification"):
        spec_from("""
            version = 1
            [globals."repro.kernel.x.Y"]
            classification = "thread-local"
            reason = "not a taxonomy member"
        """)


def test_spec_rejects_wrong_version():
    with pytest.raises(SpecError, match="version"):
        spec_from("version = 2\n")


def test_spec_rejects_duplicate_seams():
    with pytest.raises(SpecError, match="duplicate seam"):
        spec_from("""
            version = 1
            [[seams]]
            name = "ipc.reply"
            location = "a"
            reason = "first"
            [[seams]]
            name = "ipc.reply"
            location = "b"
            reason = "second"
        """)


# -- renderers ---------------------------------------------------------------


def test_render_text_counts_classifications():
    text = render_text(analyze_fixture("clean"))
    assert "shard-local" in text
    assert "UNKNOWN: 0" in text


def test_render_doc_tables_every_location():
    doc = render_doc(analyze_fixture("clean"))
    assert doc.startswith("# Shard ownership map")
    assert "repro.kernel.tables.PRIORITY_BANDS" in doc


def test_render_spec_skeleton_covers_unknowns():
    skeleton = render_spec_skeleton(analyze_fixture("shared_registry"))
    assert 'version = 1' in skeleton
    assert 'repro.kernel.registry.HANDLERS' in skeleton
    # A skeleton must itself be loadable spec text once reasons are real.
    spec = parse_spec(skeleton.replace("TODO", "bootstrap"))
    assert "repro.kernel.registry.HANDLERS" in spec.globals


# -- acceptance: the real tree -----------------------------------------------


def test_real_tree_classifies_with_zero_unknown():
    shard_map = analyze_tree(SRC_REPRO, spec=load_spec())
    assert shard_map.unknown == [], \
        "\n".join(loc.location for loc in shard_map.unknown)
    assert shard_map.findings == [], \
        "\n".join(f.format() for f in shard_map.findings)


def test_real_tree_declares_runtime_seams():
    from repro.analysis.races import DECLARED_SEAMS

    assert set(load_spec().seam_names()) == set(DECLARED_SEAMS)


def test_shard_rules_have_stable_ids():
    assert set(SHARD_RULES) == {"SH001", "SH002", "SH003", "SH004",
                                "SH005", "SH006", "SH007", "SH008"}
