"""Tests for the runtime invariant sanitizer.

For every invariant family a violation is constructed by corrupting
kernel/ledger state behind the bookkeeping's back, and the test asserts
the sanitizer reports it naming the offending object.  Clean runs (and
the instrumented end-to-end scenario) must stay silent.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    InvariantSanitizer,
    check_compensation,
    check_currency_graph,
    check_run_queue,
    check_ticket_conservation,
    install_autosanitize,
    sanitize_ledger,
    uninstall_autosanitize,
)
from repro.core.tickets import Ledger, Ticket, TicketHolder
from repro.errors import InvariantViolation
from repro.kernel.syscalls import Compute, YieldCPU
from repro.kernel.thread import ThreadState

from tests.conftest import make_lottery_kernel, spin_body


def yielding_body(compute_ms: float = 20.0):
    def body(ctx):
        while True:
            yield Compute(compute_ms)
            yield YieldCPU()

    return body


# -- clean runs -------------------------------------------------------------


def test_clean_simulation_passes_every_quantum():
    kernel = make_lottery_kernel(seed=7)
    sanitizer = InvariantSanitizer().attach(kernel)
    currency = kernel.ledger.create_currency("task")
    kernel.ledger.create_ticket(300, fund=currency)
    kernel.spawn(spin_body(), "hog", tickets=400)
    kernel.spawn(yielding_body(), "interactive", tickets=200)
    kernel.spawn(spin_body(), "insulated", tickets=600, currency=currency)
    kernel.run_until(20_000.0)
    assert sanitizer.checks_run > 100
    assert sanitizer.violations == []


def test_sanitize_ledger_clean_on_funded_hierarchy(ledger):
    currency = ledger.create_currency("sub")
    ledger.create_ticket(100, fund=currency)
    holder = TicketHolder("client")
    ledger.create_ticket(50, currency=currency, fund=holder)
    holder.start_competing()
    assert sanitize_ledger(ledger) == []


# -- family 1: ticket conservation -----------------------------------------


def test_conservation_detects_tampered_amount():
    kernel = make_lottery_kernel(seed=3)
    thread = kernel.spawn(spin_body(), "victim", tickets=100)
    kernel.spawn(spin_body(), "other", tickets=100)
    kernel.run_until(500.0)
    # Bypass set_amount: the currency's active amount goes stale.
    thread.tickets[0]._amount += 50.0
    messages = "\n".join(check_currency_graph(kernel.ledger)
                         + check_ticket_conservation(kernel.ledger))
    assert "active-amount bookkeeping drifted" in messages
    assert "'base'" in messages


def test_conservation_detects_vanished_holder_ticket():
    ledger = Ledger()
    holder = TicketHolder("leaky")
    ticket = ledger.create_ticket(100, fund=holder)
    holder.start_competing()
    # Drop the back-reference: funding no longer reaches the holder.
    holder.tickets.remove(ticket)
    messages = "\n".join(check_ticket_conservation(ledger))
    assert "missing from its ticket list" in messages
    assert "'leaky'" in messages
    assert "ticket conservation violated" in messages


def test_conservation_detects_activation_mismatch():
    ledger = Ledger()
    holder = TicketHolder("sleeper")
    ledger.create_ticket(100, fund=holder)
    holder.start_competing()
    holder._competing = False  # tickets stay active: mismatch
    messages = "\n".join(check_ticket_conservation(ledger))
    assert "not competing" in messages
    assert "'sleeper'" in messages


# -- family 2: currency graph ----------------------------------------------


def test_graph_detects_forced_cycle(ledger):
    alpha = ledger.create_currency("alpha")
    beta = ledger.create_currency("beta")
    ledger.create_ticket(10, currency=alpha, fund=beta)
    # Force the edge the Ledger's guard would reject: beta -> alpha.
    rogue = Ticket(beta, 10)
    alpha._backing.append(rogue)
    rogue.target = alpha
    messages = "\n".join(check_currency_graph(ledger))
    assert "cycle" in messages
    assert "alpha" in messages or "beta" in messages


def test_graph_detects_active_amount_corruption():
    kernel = make_lottery_kernel(seed=5)
    currency = kernel.ledger.create_currency("skewed")
    kernel.ledger.create_ticket(100, fund=currency)
    kernel.spawn(spin_body(), "funded", tickets=50, currency=currency)
    kernel.run_until(300.0)
    currency._active_amount += 1.0
    messages = "\n".join(check_currency_graph(kernel.ledger))
    assert "'skewed'" in messages
    assert "bookkeeping drifted" in messages


def test_graph_detects_backing_activation_mismatch(ledger):
    currency = ledger.create_currency("idle")
    backing = ledger.create_ticket(100, fund=currency)
    # No active issue, yet the backing ticket claims to be active.
    backing._active = True
    ledger.base._active_amount = 100.0
    messages = "\n".join(check_currency_graph(ledger))
    assert "backing ticket" in messages
    assert "'idle'" in messages


# -- family 3: run-queue membership ----------------------------------------


def _runnable_thread(kernel):
    for thread in kernel.threads:
        if thread.state is ThreadState.RUNNABLE:
            return thread
    raise AssertionError("expected a runnable thread")


def test_run_queue_detects_blocked_thread_on_queue():
    kernel = make_lottery_kernel(seed=11)
    kernel.spawn(spin_body(), "a", tickets=100)
    kernel.spawn(spin_body(), "b", tickets=100)
    kernel.run_until(250.0)
    victim = _runnable_thread(kernel)
    victim.state = ThreadState.BLOCKED  # still on the run queue
    messages = "\n".join(check_run_queue(kernel))
    assert victim.name in messages
    assert "blocked and runnable" in messages


def test_run_queue_detects_missing_runnable_thread():
    kernel = make_lottery_kernel(seed=11)
    kernel.spawn(spin_body(), "a", tickets=100)
    kernel.spawn(spin_body(), "b", tickets=100)
    kernel.run_until(250.0)
    victim = _runnable_thread(kernel)
    kernel.policy.dequeue(victim)  # state still claims RUNNABLE
    messages = "\n".join(check_run_queue(kernel))
    assert f"thread {victim.name!r} is runnable but absent" in messages


def test_run_queue_detects_ticket_deactivation_mismatch():
    kernel = make_lottery_kernel(seed=11)
    kernel.spawn(spin_body(), "a", tickets=100)
    kernel.spawn(spin_body(), "b", tickets=100)
    kernel.run_until(250.0)
    victim = _runnable_thread(kernel)
    victim.stop_competing()  # queued, but tickets now inactive
    messages = "\n".join(check_run_queue(kernel))
    assert "deactivated tickets" in messages
    assert victim.name in messages


# -- family 4: compensation-ticket lifetime --------------------------------


def test_compensation_detects_duplicate_grants():
    kernel = make_lottery_kernel(seed=13)
    thread = kernel.spawn(yielding_body(), "bursty", tickets=100)
    kernel.spawn(spin_body(), "hog", tickets=100)
    manager = kernel.policy.compensation
    manager.on_quantum_end(thread, used=20.0, quantum=100.0)
    assert manager.outstanding() == 1
    # A second "compensation" ticket for the same holder is illegal.
    kernel.ledger.create_ticket(10, fund=thread, tag="compensation")
    messages = "\n".join(check_compensation(kernel))
    assert "'bursty'" in messages
    assert "2 compensation tickets" in messages


def test_compensation_detects_grant_outliving_thread():
    kernel = make_lottery_kernel(seed=13)
    thread = kernel.spawn(yielding_body(), "doomed", tickets=100,
                          start=False)
    manager = kernel.policy.compensation
    manager.on_quantum_end(thread, used=20.0, quantum=100.0)
    thread.transition(ThreadState.EXITED)  # without the manager noticing
    messages = "\n".join(check_compensation(kernel))
    assert "'doomed'" in messages
    assert "still holds a compensation ticket" in messages


def test_compensation_clean_during_instrumented_run():
    kernel = make_lottery_kernel(seed=13)
    InvariantSanitizer().attach(kernel)
    kernel.spawn(yielding_body(), "bursty", tickets=100)
    kernel.spawn(spin_body(), "hog", tickets=300)
    kernel.run_until(10_000.0)  # raises on any violation
    assert kernel.policy.compensation.grants_issued > 0


# -- sanitizer object & wiring ---------------------------------------------


def test_check_raises_invariant_violation_with_offender_named():
    kernel = make_lottery_kernel(seed=17)
    kernel.spawn(spin_body(), "culprit", tickets=100)
    kernel.spawn(spin_body(), "bystander", tickets=100)
    kernel.run_until(150.0)
    # The running thread's tickets are inactive; corrupt a queued one.
    _runnable_thread(kernel).tickets[0]._amount += 5.0
    sanitizer = InvariantSanitizer().attach(kernel)
    with pytest.raises(InvariantViolation, match="bookkeeping drifted"):
        sanitizer.check(kernel)
    assert sanitizer.violations


def test_collect_mode_accumulates_instead_of_raising():
    kernel = make_lottery_kernel(seed=17)
    kernel.spawn(spin_body(), "culprit", tickets=100)
    kernel.spawn(spin_body(), "bystander", tickets=100)
    kernel.run_until(150.0)
    _runnable_thread(kernel).tickets[0]._amount += 5.0
    sanitizer = InvariantSanitizer(raise_on_violation=False)
    found = sanitizer.check(kernel)
    assert found and sanitizer.violations == found


def test_stride_skips_intermediate_quanta():
    kernel = make_lottery_kernel(seed=19)
    sanitizer = InvariantSanitizer(stride=10).attach(kernel)
    kernel.spawn(spin_body(), "a", tickets=100)
    kernel.spawn(spin_body(), "b", tickets=100)
    kernel.run_until(5_000.0)
    assert sanitizer.quanta_seen >= 40
    assert sanitizer.checks_run == sanitizer.quanta_seen // 10


def test_install_autosanitize_instruments_new_kernels():
    install_autosanitize()
    try:
        kernel = make_lottery_kernel(seed=23)
        baseline = len(kernel.invariant_hooks)
        assert baseline >= 1
    finally:
        uninstall_autosanitize()
    kernel = make_lottery_kernel(seed=23)
    # REPRO_SANITIZE may have installed a process-wide hook already;
    # uninstalling ours must not have removed it.
    assert len(kernel.invariant_hooks) == baseline - 1 or \
        len(kernel.invariant_hooks) == 0
