"""Clean fixture: declared state and per-shard accumulation only."""

PRIORITY_BANDS = {"high": 0, "normal": 1}  # shard: shard-local -- static rule table, frozen at import


def band_of(name):
    return PRIORITY_BANDS.get(name, 1)


def local_cpu_total(threads):
    # Per-shard reduction over one kernel's threads: order is shard-local.
    return sum(t.cpu_time for t in threads)
