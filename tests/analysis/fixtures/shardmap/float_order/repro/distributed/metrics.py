"""Planted SH004: order-sensitive float reduction across shards."""


def cluster_funding(cluster):
    return sum(node.funding() for node in cluster.nodes)
