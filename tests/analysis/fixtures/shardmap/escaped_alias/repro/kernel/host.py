"""Planted SH001: a per-shard object escapes into a module global."""

_current_engine = None


def install(engine):
    global _current_engine
    _current_engine = engine  # the alias every shard would then share
