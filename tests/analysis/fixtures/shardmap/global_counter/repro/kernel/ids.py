"""Planted SH003: a global allocator two shards would collide on."""

_next_id = 0


def alloc():
    global _next_id
    _next_id += 1
    return _next_id
