"""Planted SH002: a module-level registry mutated at runtime."""

HANDLERS = {}


def register(name, handler):
    HANDLERS[name] = handler
