"""Fixture: a legacy probe that mutates foreign telemetry hubs.

The aggregation protocol requires every core's registry/tracer to be a
pure function of that core's own history; both writes below violate it
(RPR013).  Kept as a real on-disk package so the lint tests cover file
walking and the baseline workflow, not just inline snippets.
"""

from repro.shard.router import race_seam


def poke_neighbor(core, now):
    # Hazard: tracer write into another core's hub, no seam declared.
    core.telemetry.tracer.event("core0", "poke", "shard", now)


def bump_remote_counter(cores, cid):
    # Hazard: registry write through a foreign hub.
    cores[cid].telemetry.registry.counter("legacy.pokes").inc()


def legal_barrier_effect(core, now):
    # Legal: the declared shard.barrier seam covers barrier-time
    # effects into the target core's universe.
    with race_seam("shard.barrier"):
        core.telemetry.tracer.event("core0", "rx", "shard", now)
