"""Tests for the shared report layer (JSON / SARIF / baselines) and the
CLI flags that expose it on both analyzers."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.lint import Finding, lint_paths
from repro.analysis.report import (filter_new, fingerprint, load_baseline,
                                   render_json, render_sarif, write_baseline)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "shardmap"
EMPTY_SPEC = str(FIXTURES / "empty.toml")
SRC_REPRO = str(Path(__file__).resolve().parents[2] / "src" / "repro")


def sample_findings():
    return [
        Finding("repro/kernel/a.py", 3, 0, "RPR001", "stdlib RNG imported"),
        Finding("repro/kernel/b.py", 7, 4, "RPR002", "wall-clock read"),
    ]


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_is_stable_across_line_shifts():
    moved = Finding("repro/kernel/a.py", 99, 5, "RPR001",
                    "stdlib RNG imported")
    assert fingerprint(sample_findings()[0]) == fingerprint(moved)


def test_fingerprint_distinguishes_rule_and_message():
    a, b = sample_findings()
    assert fingerprint(a) != fingerprint(b)


# -- JSON --------------------------------------------------------------------


def test_render_json_round_trips():
    document = json.loads(render_json(sample_findings(), tool="repro-lint"))
    assert document["tool"] == "repro-lint"
    assert document["finding_count"] == 2
    first = document["findings"][0]
    assert first["rule_id"] == "RPR001"
    assert first["path"] == "repro/kernel/a.py"
    assert len(first["fingerprint"]) == 64


# -- SARIF -------------------------------------------------------------------


def test_render_sarif_is_valid_2_1_0_shape():
    log = json.loads(render_sarif(
        sample_findings(), tool="repro-lint",
        rule_meta={"RPR001": ("nondeterministic-rng", "stdlib RNG")}))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["tool"]["driver"]["rules"][0]["id"] == "RPR001"
    result = run["results"][0]
    assert result["ruleId"] == "RPR001"
    assert result["locations"][0]["physicalLocation"]["region"][
        "startLine"] == 3
    assert "reproAnalysis/v1" in result["partialFingerprints"]


# -- baselines ---------------------------------------------------------------


def test_baseline_round_trip_filters_known_findings(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    known, new = sample_findings()
    assert write_baseline([known], baseline_file, tool="repro-lint") == 1
    baseline = load_baseline(baseline_file)
    assert filter_new([known, new], baseline) == [new]


# -- CLI wiring --------------------------------------------------------------


def dirty_tree(tmp_path):
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import random\n")
    return tmp_path


def test_lint_format_json(tmp_path, capsys):
    tree = dirty_tree(tmp_path)
    assert main(["lint", "--format", "json", str(tree)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["findings"][0]["rule_id"] == "RPR001"


def test_lint_format_sarif_to_file(tmp_path, capsys):
    tree = dirty_tree(tmp_path)
    out = tmp_path / "lint.sarif"
    assert main(["lint", "--format", "sarif", "--out", str(out),
                 str(tree)]) == 1
    log = json.loads(out.read_text())
    assert log["runs"][0]["results"][0]["ruleId"] == "RPR001"


def test_lint_baseline_workflow(tmp_path, capsys):
    tree = dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--write-baseline", str(baseline), str(tree)]) == 0
    # Same findings, now baselined: exit 0, nothing new.
    assert main(["lint", "--baseline", str(baseline), str(tree)]) == 0
    # A new hazard appears: only it is reported.
    (tree / "repro" / "kernel" / "worse.py").write_text("import secrets\n")
    capsys.readouterr()
    assert main(["lint", "--baseline", str(baseline), str(tree)]) == 1
    captured = capsys.readouterr()
    assert "worse.py" in captured.out
    assert "bad.py" not in captured.out
    assert "new finding" in captured.err


def test_lint_list_suppressions(tmp_path, capsys):
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(
        "import random  # repro: noqa[RPR001] -- fixture entropy\n")
    assert main(["lint", "--list-suppressions", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "noqa[RPR001] -- fixture entropy" in captured.out
    assert "0 without justification" in captured.err


def test_lint_list_suppressions_flags_missing_justification(tmp_path, capsys):
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text("import random  # repro: noqa\n")
    assert main(["lint", "--list-suppressions", str(tmp_path)]) == 1
    assert "NO JUSTIFICATION" in capsys.readouterr().out


def test_shardmap_cli_clean_on_repo(capsys):
    assert main(["shardmap", "--root", SRC_REPRO]) == 0
    out = capsys.readouterr().out
    assert "UNKNOWN: 0" in out
    assert "clean" in out


def test_shardmap_cli_nonzero_on_each_planted_fixture(capsys):
    for fixture, rule in (("escaped_alias", "SH001"),
                          ("shared_registry", "SH002"),
                          ("global_counter", "SH003"),
                          ("float_order", "SH004")):
        assert main(["shardmap", "--root", str(FIXTURES / fixture),
                     "--spec", EMPTY_SPEC]) == 1, fixture
        captured = capsys.readouterr()
        assert rule in captured.out, fixture
        assert "finding" in captured.err


def test_shardmap_cli_zero_on_clean_fixture(capsys):
    assert main(["shardmap", "--root", str(FIXTURES / "clean"),
                 "--spec", EMPTY_SPEC]) == 0


def test_shardmap_cli_sarif_output(tmp_path, capsys):
    out = tmp_path / "shardmap.sarif"
    assert main(["shardmap", "--root", str(FIXTURES / "global_counter"),
                 "--spec", EMPTY_SPEC, "--format", "sarif",
                 "--out", str(out)]) == 1
    log = json.loads(out.read_text())
    assert log["runs"][0]["results"][0]["ruleId"] == "SH003"


def test_shardmap_cli_write_doc(tmp_path, capsys):
    doc = tmp_path / "SHARDMAP.md"
    assert main(["shardmap", "--root", SRC_REPRO,
                 "--write-doc", str(doc)]) == 0
    text = doc.read_text()
    assert text.startswith("# Shard ownership map")
    assert "repro.kernel.kernel.Kernel" in text


def test_shardmap_cli_emit_spec_bootstraps(tmp_path, capsys):
    out = tmp_path / "skeleton.toml"
    assert main(["shardmap", "--root", str(FIXTURES / "shared_registry"),
                 "--emit-spec", "--out", str(out)]) == 0
    assert "repro.kernel.registry.HANDLERS" in out.read_text()


def test_shardmap_cli_bad_spec_is_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("version = 7\n")
    assert main(["shardmap", "--root", SRC_REPRO, "--spec", str(bad)]) == 2
    assert "shardmap:" in capsys.readouterr().err


def test_repo_lint_still_clean_via_api():
    assert lint_paths([SRC_REPRO]) == []
