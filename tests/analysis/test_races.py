"""Tests for the dynamic determinism-race sanitizer.

The seeded-violation tests prove the trap end to end: a thread owned by
one kernel, mutated from another kernel's execution context outside a
declared barrier seam, raises
:class:`~repro.errors.DeterminismRaceError` -- both when driven
directly through ``tracker.context`` and when the mutation rides the
real dispatch path of a running cluster.  The legality tests prove the
declared seams (IPC wakes, migration, evacuation, crash) stay
trap-free, which is what lets the full tier-1 suite run under
``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import pytest

from repro.analysis.races import DECLARED_SEAMS, RaceTracker
from repro.distributed.cluster import Cluster
from repro.errors import DeterminismRaceError
from repro.kernel.syscalls import Compute, YieldCPU
from repro.kernel.thread import ThreadState


@pytest.fixture
def race_tracker():
    """A fresh, active tracker; restores whatever was active before."""
    import repro.kernel.thread as thread_module

    previous = thread_module._race_tracker
    fresh = RaceTracker()
    fresh.activate()
    yield fresh
    fresh.deactivate()
    if previous is not None and previous.active:
        previous.activate()


def spinner(chunk_ms: float = 10.0):
    def body(ctx):
        while True:
            yield Compute(chunk_ms)
    return body


def two_node_cluster():
    return Cluster(nodes=2, rebalance_period=None)


# -- owner tagging -----------------------------------------------------------


def test_threads_are_tagged_with_their_kernel(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    thread = cluster.spawn(spinner(), "t", tickets=100, node=node0)
    owner = race_tracker.owner_of(thread)
    assert owner is race_tracker.token_for(node0.kernel)
    assert owner is not race_tracker.token_for(node1.kernel)


def test_threads_created_before_activation_are_unchecked():
    tracker = RaceTracker()
    cluster = two_node_cluster()  # spawned while this tracker is inert
    thread = cluster.spawn(spinner(), "t", tickets=100)
    tracker.activate()
    try:
        assert tracker.owner_of(thread) is None
        with tracker.context(cluster.nodes[1].kernel):
            thread.transition(ThreadState.RUNNING)  # untagged: no trap
    finally:
        tracker.deactivate()


# -- the trap ----------------------------------------------------------------


def test_cross_owner_transition_traps(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    victim = cluster.spawn(spinner(), "victim", tickets=100, node=node1)
    with race_tracker.context(node0.kernel):
        with pytest.raises(DeterminismRaceError) as exc:
            victim.transition(ThreadState.RUNNING)
    assert "cross-owner" in str(exc.value)
    assert "barrier seam" in str(exc.value)
    assert race_tracker.violations == 1


def test_same_owner_transition_is_legal(race_tracker):
    cluster = two_node_cluster()
    node0 = cluster.nodes[0]
    thread = cluster.spawn(spinner(), "t", tickets=100, node=node0)
    with race_tracker.context(node0.kernel):
        thread.transition(ThreadState.RUNNING)
    assert race_tracker.violations == 0
    assert race_tracker.checks == 1


def test_mutation_outside_any_context_is_unchecked(race_tracker):
    # Test harnesses and experiment drivers poke threads directly; with
    # no owner context on the stack that is not a shard-ordering hazard.
    cluster = two_node_cluster()
    thread = cluster.spawn(spinner(), "t", tickets=100)
    thread.transition(ThreadState.RUNNING)
    assert race_tracker.violations == 0


def test_declared_seam_permits_cross_owner_mutation(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    victim = cluster.spawn(spinner(), "victim", tickets=100, node=node1)
    with race_tracker.context(node0.kernel):
        with race_tracker.seam("cluster.migrate"):
            victim.transition(ThreadState.RUNNING)
    assert race_tracker.violations == 0


def test_undeclared_seam_name_raises(race_tracker):
    with pytest.raises(DeterminismRaceError, match="undeclared barrier seam"):
        with race_tracker.seam("adhoc.backdoor"):
            pass


def test_seeded_race_traps_through_real_dispatch(race_tracker):
    """Acceptance: a body on kernel A mutating kernel B's thread mid-
    segment is caught by the wrapped dispatch path itself."""
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    victim = cluster.spawn(spinner(), "victim", tickets=100, node=node1)

    def evil(ctx):
        # Runs inside node0's _run_segment context: cross-kernel poke.
        # EXITED is a legal edge from every live state, so the race
        # trap (not the state machine) is what fires.
        victim.transition(ThreadState.EXITED)
        yield Compute(1.0)

    node0.kernel.spawn(evil, "evil", tickets=100)
    with pytest.raises(DeterminismRaceError, match="cross-owner"):
        cluster.run_until(1_000)
    assert race_tracker.violations == 1


# -- ownership transfer at seams ---------------------------------------------


def test_migration_retags_owner(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    thread = cluster.spawn(spinner(), "mover", tickets=100, node=node0)
    assert cluster.migrate(thread, node1)
    assert race_tracker.owner_of(thread) is \
        race_tracker.token_for(node1.kernel)
    # The new owner may mutate; the old owner now traps.
    with race_tracker.context(node1.kernel):
        thread.transition(ThreadState.RUNNING)
        thread.transition(ThreadState.RUNNABLE)
    with race_tracker.context(node0.kernel):
        with pytest.raises(DeterminismRaceError):
            thread.transition(ThreadState.RUNNING)


def test_crash_evacuation_retags_and_stays_trap_free(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    thread = cluster.spawn(spinner(), "survivor", tickets=100, node=node0)
    cluster.run_until(500)
    cluster.crash_node(node0)
    assert race_tracker.owner_of(thread) is \
        race_tracker.token_for(node1.kernel)
    cluster.run_until(1_500)
    assert thread.cpu_time > 0
    assert race_tracker.violations == 0


# -- end-to-end legality -----------------------------------------------------


def test_clustered_run_with_yields_is_trap_free(race_tracker):
    cluster = Cluster(nodes=3, rebalance_period=500.0)
    for index in range(6):
        cluster.spawn(spinner(), f"w{index}", tickets=100 * (index + 1))

    def yielder(ctx):
        while True:
            yield Compute(5.0)
            yield YieldCPU()

    cluster.spawn(yielder, "yielder", tickets=200)
    cluster.run_until(20_000)  # rebalancer migrations included
    assert race_tracker.checks > 0
    assert race_tracker.violations == 0


def test_declared_seams_match_committed_spec():
    from repro.analysis.shardspec import load_spec

    assert set(load_spec().seam_names()) == set(DECLARED_SEAMS)


def test_deactivate_disarms_the_trap(race_tracker):
    cluster = two_node_cluster()
    node0, node1 = cluster.nodes
    victim = cluster.spawn(spinner(), "victim", tickets=100, node=node1)
    race_tracker.deactivate()
    with race_tracker.context(node0.kernel):
        victim.transition(ThreadState.RUNNING)  # inert: no trap
    assert race_tracker.violations == 0
