"""Tests for the analysis entry points: ``python -m repro.analysis`` and
the interactive-shell ``lint`` / ``sanitize`` commands."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.cli.commands import COMMANDS
from repro.cli.state import CommandState
from repro.errors import ReproError

SRC_REPRO = str(Path(__file__).resolve().parents[2] / "src" / "repro")


# -- python -m repro.analysis ----------------------------------------------


def test_lint_command_clean_on_repo(capsys):
    assert main(["lint", SRC_REPRO]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_lint_command_reports_findings(tmp_path, capsys):
    dirty = tmp_path / "repro" / "kernel"
    dirty.mkdir(parents=True)
    (dirty / "bad.py").write_text("import random\n")
    assert main(["lint", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "RPR001" in captured.out
    assert "1 finding" in captured.err


def test_rules_command_lists_every_rule(capsys):
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                    "RPR006"):
        assert rule_id in out
    assert "noqa" in out


def test_sanitize_command_clean_run(capsys):
    assert main(["sanitize", "--quanta", "50"]) == 0
    out = capsys.readouterr().out
    assert "all invariants held" in out


def test_sanitize_inject_self_test_detects_corruption(capsys):
    assert main(["sanitize", "--quanta", "50", "--inject"]) == 0
    out = capsys.readouterr().out
    assert "invariant violation detected" in out
    assert "self-test passed" in out


def test_sanitize_runs_are_deterministic(capsys):
    main(["sanitize", "--quanta", "30", "--seed", "42"])
    first = capsys.readouterr().out
    main(["sanitize", "--quanta", "30", "--seed", "42"])
    assert capsys.readouterr().out == first


# -- shell commands ---------------------------------------------------------


def test_shell_lint_clean():
    state = CommandState()
    out = COMMANDS["lint"](state, [SRC_REPRO])
    assert out.startswith("lint: clean")


def test_shell_lint_findings(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import random\n")
    out = COMMANDS["lint"](CommandState(), [str(tmp_path)])
    assert "RPR001" in out and "finding" in out


def test_shell_sanitize_reports_ok():
    state = CommandState()
    COMMANDS["mkcur"](state, ["team"])
    COMMANDS["mktkt"](state, ["100", "team"])
    out = COMMANDS["sanitize"](state, [])
    assert "invariants OK" in out


def test_shell_sanitize_reports_violation():
    state = CommandState()
    COMMANDS["mkcur"](state, ["team"])
    COMMANDS["mktkt"](state, ["100", "team"])
    state.ledger.currency("team")._active_amount += 5.0
    out = COMMANDS["sanitize"](state, [])
    assert "violation" in out
    assert "team" in out


def test_shell_sanitize_rejects_arguments():
    with pytest.raises(ReproError):
        COMMANDS["sanitize"](CommandState(), ["extra"])
