"""Tests for paged workloads (memory integrated with the scheduler)."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.mem.frames import FramePool
from repro.mem.manager import MemoryManager
from repro.mem.paging import PagedWorkload
from repro.mem.policies import InverseLotteryReplacement, LRUReplacement
from tests.conftest import make_lottery_kernel


def make_manager(frames=16, policy=None):
    pool = FramePool(frames)
    return MemoryManager(pool, policy or LRUReplacement()), pool


class TestPagedWorkload:
    def test_validation(self):
        manager, _ = make_manager()
        with pytest.raises(ReproError):
            PagedWorkload("w", manager, working_set=0)
        with pytest.raises(ReproError):
            PagedWorkload("w", manager, working_set=4, pattern="zigzag")
        with pytest.raises(ReproError):
            PagedWorkload("w", manager, working_set=4, step_ms=0)

    def test_fitting_working_set_faults_only_cold(self):
        manager, pool = make_manager(frames=16)
        kernel = make_lottery_kernel(seed=3)
        workload = PagedWorkload("w", manager, working_set=8, seed=4)
        kernel.spawn(workload.body, "w", tickets=10)
        kernel.run_until(30_000)
        # Cold faults only: 8 pages, then pure hits.
        assert workload.faults_taken == 8
        assert manager.fault_rate("w") < 0.05
        assert pool.usage("w") == 8

    def test_oversized_working_set_thrashes(self):
        manager, _ = make_manager(frames=8)
        kernel = make_lottery_kernel(seed=5)
        workload = PagedWorkload("w", manager, working_set=64,
                                 pattern="sequential", seed=6)
        kernel.spawn(workload.body, "w", tickets=10)
        kernel.run_until(30_000)
        # Sequential over 64 pages with 8 frames: every touch misses.
        assert manager.fault_rate("w") == pytest.approx(1.0, abs=0.01)

    def test_fault_stall_slows_progress(self):
        kernel = make_lottery_kernel(seed=7)
        manager_small, _ = make_manager(frames=4)
        manager_big, _ = make_manager(frames=64)
        thrasher = PagedWorkload("w", manager_small, working_set=32,
                                 pattern="sequential",
                                 fault_service_ms=50.0, seed=8)
        cruiser = PagedWorkload("c", manager_big, working_set=32,
                                pattern="sequential",
                                fault_service_ms=50.0, seed=9)
        kernel.spawn(thrasher.body, "w", tickets=10)
        kernel2 = make_lottery_kernel(seed=7)
        kernel2.spawn(cruiser.body, "c", tickets=10)
        kernel.run_until(30_000)
        kernel2.run_until(30_000)
        assert cruiser.steps > 2 * thrasher.steps

    def test_sequential_pattern_cycles(self):
        manager, _ = make_manager(frames=16)
        workload = PagedWorkload("w", manager, working_set=3,
                                 pattern="sequential")
        pages = [workload._next_page() for _ in range(7)]
        assert pages == [0, 1, 2, 0, 1, 2, 0]

    def test_inverse_lottery_protects_funded_working_set(self):
        tickets = {"rich": 900.0, "poor": 100.0}
        pool = FramePool(24)
        manager = MemoryManager(
            pool,
            InverseLotteryReplacement(tickets_of=tickets.__getitem__,
                                      prng=ParkMillerPRNG(11)),
        )
        kernel = make_lottery_kernel(seed=12)
        rich = PagedWorkload("rich", manager, working_set=16, seed=13)
        poor = PagedWorkload("poor", manager, working_set=64,
                             pattern="sequential", step_ms=2.0,
                             references_per_step=4,
                             fault_service_ms=2.0, seed=14)
        kernel.spawn(rich.body, "rich", tickets=900)
        kernel.spawn(poor.body, "poor", tickets=100)
        kernel.run_until(60_000)
        assert pool.usage("rich") > pool.usage("poor")
        assert manager.fault_rate("rich") < 0.4
