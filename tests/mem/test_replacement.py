"""Tests for page-replacement policies and the fault manager (§6.2)."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.mem.frames import FramePool
from repro.mem.manager import MemoryManager
from repro.mem.policies import (
    FIFOReplacement,
    InverseLotteryReplacement,
    LRUReplacement,
    RandomReplacement,
)


class TestBaselinePolicies:
    def test_lru_evicts_least_recent(self):
        pool = FramePool(2)
        manager = MemoryManager(pool, LRUReplacement())
        manager.reference("a", 0, now=0.0)
        manager.reference("a", 1, now=1.0)
        manager.reference("a", 0, now=2.0)  # refresh page 0
        manager.reference("a", 2, now=3.0)  # must evict page 1
        assert pool.resident("a", 0)
        assert pool.resident("a", 2)
        assert not pool.resident("a", 1)

    def test_fifo_evicts_oldest_load(self):
        pool = FramePool(2)
        manager = MemoryManager(pool, FIFOReplacement())
        manager.reference("a", 0, now=0.0)
        manager.reference("a", 1, now=1.0)
        manager.reference("a", 0, now=2.0)  # touch does NOT matter for FIFO
        manager.reference("a", 2, now=3.0)  # evicts page 0 (oldest load)
        assert not pool.resident("a", 0)
        assert pool.resident("a", 1)

    def test_random_eviction_roughly_uniform(self):
        prng = ParkMillerPRNG(8)
        evicted = {"x": 0, "y": 0}
        for _ in range(300):
            pool = FramePool(2)
            manager = MemoryManager(pool, RandomReplacement(prng))
            manager.reference("x", 0)
            manager.reference("y", 0)
            manager.reference("z", 0)
            for client in evicted:
                if not pool.resident(client, 0):
                    evicted[client] += 1
        assert evicted["x"] == pytest.approx(150, abs=45)

    def test_victim_requires_resident_pages(self):
        pool = FramePool(2)
        policy = LRUReplacement()
        with pytest.raises(ReproError):
            policy.choose_victim(pool, now=0.0)


class TestInverseLotteryReplacement:
    def test_single_client_victimized_by_necessity(self):
        pool = FramePool(1)
        policy = InverseLotteryReplacement(tickets_of=lambda c: 100.0,
                                           prng=ParkMillerPRNG(5))
        manager = MemoryManager(pool, policy)
        manager.reference("only", 0)
        manager.reference("only", 1)
        assert manager.evictions["only"] == 1

    def test_within_client_fifo(self):
        pool = FramePool(2)
        policy = InverseLotteryReplacement(tickets_of=lambda c: 1.0,
                                           prng=ParkMillerPRNG(5))
        manager = MemoryManager(pool, policy)
        manager.reference("a", 0, now=0.0)
        manager.reference("a", 1, now=1.0)
        manager.reference("a", 2, now=2.0)
        assert not pool.resident("a", 0)  # oldest load evicted first

    def test_rich_client_protected(self):
        # A 9:1 ticket split with equal usage: the poor client should
        # lose far more pages.
        prng = ParkMillerPRNG(77)
        tickets = {"rich": 900.0, "poor": 100.0}
        pool = FramePool(20)
        policy = InverseLotteryReplacement(tickets_of=tickets.__getitem__,
                                           prng=prng)
        manager = MemoryManager(pool, policy)
        stream = ParkMillerPRNG(78)
        for step in range(20_000):
            client = "rich" if step % 2 == 0 else "poor"
            manager.reference(client, stream.randrange(30), now=float(step))
        assert manager.evictions["poor"] > manager.evictions["rich"]

    def test_victim_counts_recorded(self):
        policy = InverseLotteryReplacement(tickets_of=lambda c: 1.0,
                                           prng=ParkMillerPRNG(5))
        pool = FramePool(1)
        manager = MemoryManager(pool, policy)
        manager.reference("a", 0)
        manager.reference("a", 1)
        assert policy.victim_counts == {"a": 1}


class TestMemoryManager:
    def test_hit_and_fault_accounting(self):
        pool = FramePool(4)
        manager = MemoryManager(pool, LRUReplacement())
        assert manager.reference("a", 0) is False  # cold fault
        assert manager.reference("a", 0) is True  # hit
        assert manager.faults["a"] == 1
        assert manager.hits["a"] == 1
        assert manager.fault_rate("a") == pytest.approx(0.5)
        assert manager.total_references == 2

    def test_negative_page_rejected(self):
        manager = MemoryManager(FramePool(2), LRUReplacement())
        with pytest.raises(ReproError):
            manager.reference("a", -1)

    def test_eviction_share(self):
        pool = FramePool(1)
        manager = MemoryManager(pool, FIFOReplacement())
        manager.reference("a", 0)
        manager.reference("b", 0)  # evicts a
        manager.reference("a", 0)  # evicts b
        assert manager.eviction_share("a") == pytest.approx(0.5)
        assert manager.eviction_share("b") == pytest.approx(0.5)

    def test_eviction_share_empty(self):
        manager = MemoryManager(FramePool(2), LRUReplacement())
        assert manager.eviction_share("nobody") == 0.0

    def test_fault_rate_unknown_client(self):
        manager = MemoryManager(FramePool(2), LRUReplacement())
        assert manager.fault_rate("ghost") == 0.0
