"""Tests for the physical frame pool."""

import pytest

from repro.errors import ReproError
from repro.mem.frames import FramePool


class TestFramePool:
    def test_initially_all_free(self):
        pool = FramePool(8)
        assert pool.capacity == 8
        assert pool.free_count() == 8
        assert pool.clients() == []

    def test_positive_capacity_required(self):
        with pytest.raises(ReproError):
            FramePool(0)

    def test_load_binds_page(self):
        pool = FramePool(4)
        frame = pool.load("a", 7, now=1.0)
        assert pool.resident("a", 7)
        assert frame.binding == ("a", 7)
        assert pool.usage("a") == 1
        assert pool.free_count() == 3

    def test_duplicate_load_rejected(self):
        pool = FramePool(4)
        pool.load("a", 7, now=1.0)
        with pytest.raises(ReproError):
            pool.load("a", 7, now=2.0)

    def test_load_into_full_pool_rejected(self):
        pool = FramePool(1)
        pool.load("a", 0, now=0.0)
        with pytest.raises(ReproError):
            pool.load("a", 1, now=1.0)

    def test_evict_frees_frame(self):
        pool = FramePool(2)
        frame = pool.load("a", 3, now=0.0)
        binding = pool.evict(frame)
        assert binding == ("a", 3)
        assert not pool.resident("a", 3)
        assert pool.free_count() == 2
        assert pool.usage("a") == 0

    def test_double_evict_rejected(self):
        pool = FramePool(2)
        frame = pool.load("a", 3, now=0.0)
        pool.evict(frame)
        with pytest.raises(ReproError):
            pool.evict(frame)

    def test_touch_updates_recency(self):
        pool = FramePool(2)
        frame = pool.load("a", 3, now=0.0)
        pool.touch("a", 3, now=9.0)
        assert frame.last_used == 9.0

    def test_touch_nonresident_rejected(self):
        pool = FramePool(2)
        with pytest.raises(ReproError):
            pool.touch("a", 3, now=1.0)

    def test_usage_fraction(self):
        pool = FramePool(10)
        for page in range(4):
            pool.load("a", page, now=0.0)
        assert pool.usage_fraction("a") == pytest.approx(0.4)
        assert pool.usage_fraction("unknown") == 0.0

    def test_frames_of(self):
        pool = FramePool(5)
        pool.load("a", 1, now=0.0)
        pool.load("b", 2, now=0.0)
        pool.load("a", 3, now=0.0)
        assert len(pool.frames_of("a")) == 2
        assert len(pool.frames_of("b")) == 1

    def test_frame_reuse_after_eviction(self):
        pool = FramePool(1)
        frame = pool.load("a", 0, now=0.0)
        pool.evict(frame)
        frame2 = pool.load("b", 5, now=1.0)
        assert frame2.index == frame.index
        assert pool.resident("b", 5)
