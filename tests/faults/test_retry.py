"""Tests for the virtual-time retry primitives (repro.faults.retry)."""

import pytest

from repro.errors import FaultError
from repro.faults.retry import (ABORT, RetryPolicy, disk_submit_with_retry,
                                execute_with_retry)
from repro.iosched.disk import Disk


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.timeout_ms is None

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_ms=50.0, backoff_factor=2.0,
                             max_delay_ms=300.0, max_attempts=10)
        assert [policy.delay_for(k) for k in range(1, 6)] == \
            [50.0, 100.0, 200.0, 300.0, 300.0]

    def test_delay_for_is_one_based(self):
        with pytest.raises(FaultError):
            RetryPolicy().delay_for(0)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_ms": 0.0},
        {"backoff_factor": 0.5},
        {"base_delay_ms": 100.0, "max_delay_ms": 50.0},
        {"timeout_ms": 0.0},
    ])
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)


class TestExecuteWithRetry:
    def test_immediate_success(self, engine):
        state = execute_with_retry(engine, lambda: True)
        assert state.succeeded and state.finished
        assert state.attempts == 1
        assert state.finished_at == 0.0
        assert engine.pending() == 0

    def test_transient_failures_retried_on_virtual_clock(self, engine):
        outcomes = [False, False, True]
        state = execute_with_retry(
            engine, lambda: outcomes.pop(0),
            policy=RetryPolicy(base_delay_ms=50.0, backoff_factor=2.0),
        )
        assert not state.finished  # later attempts are engine events
        engine.run()
        assert state.succeeded
        assert state.attempts == 3
        # Failure 1 backs off 50ms, failure 2 backs off 100ms.
        assert state.finished_at == 150.0
        assert engine.now == 150.0

    def test_abort_stops_immediately(self, engine):
        state = execute_with_retry(engine, lambda: ABORT)
        assert state.aborted and state.finished
        assert not state.succeeded and not state.gave_up
        assert state.attempts == 1
        assert engine.pending() == 0

    def test_gives_up_after_max_attempts(self, engine):
        calls = []
        state = execute_with_retry(
            engine, lambda: calls.append(1),  # append returns None: falsy
            policy=RetryPolicy(max_attempts=3, base_delay_ms=50.0),
        )
        engine.run()
        assert state.gave_up and not state.succeeded
        assert state.attempts == 3 and len(calls) == 3
        assert state.finished_at == 150.0  # 50 + 100

    def test_timeout_bounds_total_virtual_time(self, engine):
        state = execute_with_retry(
            engine, lambda: False,
            policy=RetryPolicy(max_attempts=10, base_delay_ms=50.0,
                               backoff_factor=2.0, timeout_ms=120.0),
        )
        engine.run()
        # Attempt 2 at t=50 would back off 100ms, breaching the 120ms
        # deadline, so the retry gives up there instead of sleeping.
        assert state.gave_up
        assert state.attempts == 2
        assert state.finished_at == 50.0

    def test_callbacks_fire_with_final_state(self, engine):
        seen = []
        execute_with_retry(engine, lambda: True,
                           on_success=lambda s: seen.append(("ok", s.attempts)))
        execute_with_retry(engine, lambda: False,
                           policy=RetryPolicy(max_attempts=1),
                           on_give_up=lambda s: seen.append(("gave-up",
                                                             s.attempts)))
        assert seen == [("ok", 1), ("gave-up", 1)]


class TestDiskSubmitWithRetry:
    def test_resubmits_after_injected_error(self, engine):
        disk = Disk(engine)
        remaining = [1]  # fail exactly the first completion

        def fail(request):
            if remaining[0] > 0:
                remaining[0] -= 1
                return True
            return False

        disk.fault_policy = fail
        done = []
        state = disk_submit_with_retry(disk, "a", 100, 64,
                                       on_complete=done.append)
        engine.run()
        assert state.succeeded
        assert state.attempts == 2
        assert done and not done[-1].failed
        assert disk.io_errors.get("a") == 1

    def test_gives_up_when_errors_persist(self, engine):
        disk = Disk(engine)
        disk.fault_policy = lambda request: True
        done = []
        state = disk_submit_with_retry(
            disk, "a", 100, 64,
            policy=RetryPolicy(max_attempts=3, base_delay_ms=10.0),
            on_complete=done.append,
        )
        engine.run()
        assert state.gave_up and not state.succeeded
        assert state.attempts == 3
        assert done and done[-1].failed
        assert disk.io_errors["a"] == 3
