"""End-to-end chaos tests: determinism and sanitized recovery.

These are the acceptance tests of the fault subsystem: the same seed
and plan must reproduce a chaos run bit-for-bit (fault log, migration
counts, fairness rows), and a full run with three crash/restart pairs
must hold every PR-1 scheduler invariant while the windowed fairness
error reconverges below the threshold after each transition.
"""

from repro.analysis.sanitizer import InvariantSanitizer
from repro.experiments import chaos_fairness
from repro.experiments.chaos_fairness import RECONVERGENCE_THRESHOLD
from repro.faults.plan import FaultKind
from repro.kernel import kernel as kernel_module

#: Reconvergence must happen within this much virtual time of a fault.
BOUNDED_WINDOW_MS = 30_000.0


def _short_run(seed):
    # 80 s covers one crash (t=30s) and its restart (t=60s): enough
    # transitions to exercise evacuation + rebalance, cheap enough to
    # run twice.
    return chaos_fairness.run_variant(seed=seed, duration_ms=80_000.0)


class TestChaosDeterminism:
    def test_same_seed_and_plan_reproduce_bit_for_bit(self):
        first = _short_run(2718)
        second = _short_run(2718)
        assert first["fault_log"] == second["fault_log"]
        assert first["rows"] == second["rows"]
        assert first["windows"] == second["windows"]
        for counter in ("migrations", "evacuations", "threads_killed",
                        "node_crashes", "node_restarts"):
            assert getattr(first["cluster"], counter) == \
                getattr(second["cluster"], counter), counter

    def test_different_seed_diverges(self):
        assert _short_run(2718)["rows"] != _short_run(2719)["rows"]

    def test_fault_timestamps_match_the_plan(self):
        data = _short_run(2718)
        fired = [line.split()[0] for line in data["fault_log"]]
        planned = [f"t={event.time:g}" for event in data["plan"]
                   if event.time <= 80_000.0]
        assert fired == planned


class TestChaosRecovery:
    def test_sanitized_run_reconverges_after_every_fault(self):
        # Attach an invariant sanitizer to every kernel the experiment
        # constructs (independent of the REPRO_SANITIZE autosanitizer,
        # so this holds in any environment).
        sanitizers = []

        def instrument(kernel):
            sanitizers.append(InvariantSanitizer(stride=7).attach(kernel))

        kernel_module.add_construction_hook(instrument)
        try:
            data = chaos_fairness.run_variant()
        finally:
            kernel_module.remove_construction_hook(instrument)

        cluster = data["cluster"]
        # The default plan injects three crash/restart pairs.
        assert cluster.node_crashes == 3
        assert cluster.node_restarts == 3
        assert cluster.threads_killed >= 1  # the pinned victim
        assert cluster.evacuations >= 1

        # Every invariant family held on every checked quantum.
        assert sanitizers, "no kernels were instrumented"
        assert all(s.checks_run > 0 for s in sanitizers)
        assert all(not s.violations for s in sanitizers)

        # Each post-fault window reconverged within the bounded window.
        fault_windows = [w for w in data["windows"] if w["cause"] != "start"]
        assert len(fault_windows) == 6
        for window in fault_windows:
            reconverged = window["reconverged_at_ms"]
            assert reconverged is not None, \
                f"window {window['cause']} @{window['start_ms']} never " \
                f"reconverged"
            assert reconverged - window["start_ms"] <= BOUNDED_WINDOW_MS
        assert data["final_error"] < RECONVERGENCE_THRESHOLD

    def test_report_summarises_every_fault_window(self):
        result = chaos_fairness.run(duration_ms=80_000.0)
        window_keys = [key for key in result.summary
                       if key.startswith("window @")]
        assert len(window_keys) == 2  # crash @30s + restart @60s
        assert all("reconverged after" in result.summary[key]
                   for key in window_keys)
        assert "migrations" in result.summary
        faults = result.summary["faults applied"]
        crash_lines = [line for line in faults
                       if FaultKind.NODE_CRASH in line]
        assert crash_lines and all("node1" in line for line in crash_lines)
