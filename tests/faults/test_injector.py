"""Tests for the fault injector: every seam, plus log determinism."""

import pytest

from repro.analysis.sanitizer import sanitize_ledger
from repro.distributed.cluster import Cluster
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlanBuilder
from repro.kernel.ipc import Port
from repro.kernel.syscalls import Call, Compute, Receive, Reply, Send
from tests.conftest import make_lottery_kernel, spin_body


def make_cluster(nodes=3, **kwargs):
    kwargs.setdefault("quantum", 50.0)
    kwargs.setdefault("rebalance_period", 500.0)
    cluster = Cluster(nodes=nodes, **kwargs)
    for index in range(nodes * 2):
        cluster.spawn(spin_body(20.0), f"w{index}", tickets=100.0)
    return cluster


class TestConstructionAndArming:
    def test_needs_engine_or_cluster(self):
        plan = FaultPlanBuilder().build()
        with pytest.raises(FaultError):
            FaultInjector(plan)

    def test_cluster_nodes_become_kernel_targets(self):
        cluster = make_cluster(nodes=2)
        injector = FaultInjector(FaultPlanBuilder().build(), cluster=cluster)
        assert set(injector.kernels) == {"node0", "node1"}
        assert injector.engine is cluster.engine

    def test_double_arm_rejected(self):
        kernel = make_lottery_kernel()
        injector = FaultInjector(FaultPlanBuilder().build(),
                                 kernels={"k": kernel},
                                 engine=kernel.engine)
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_unknown_targets_fail_loud(self):
        cluster = make_cluster(nodes=2)
        plan = FaultPlanBuilder().crash_node("node9", at=10.0).build()
        FaultInjector(plan, cluster=cluster).arm()
        with pytest.raises(FaultError):
            cluster.run_until(100.0)

        kernel = make_lottery_kernel()
        plan = (FaultPlanBuilder()
                .clock_skew("ghost", at=10.0, factor=2.0, duration=50.0)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        with pytest.raises(FaultError):
            kernel.run_until(100.0)

    def test_node_fault_without_cluster_fails_loud(self):
        kernel = make_lottery_kernel()
        plan = FaultPlanBuilder().crash_node("node0", at=10.0).build()
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        with pytest.raises(FaultError):
            kernel.run_until(100.0)


class TestNodeFaults:
    def test_crash_evacuates_and_restart_rejoins(self):
        cluster = make_cluster(nodes=3)
        plan = (FaultPlanBuilder()
                .crash_node("node1", at=1_000.0, restart_after=2_000.0)
                .build())
        injector = FaultInjector(plan, cluster=cluster).arm()
        cluster.run_until(500.0)
        assert all(node.alive for node in cluster.nodes)
        cluster.run_until(1_500.0)
        assert not cluster.nodes[1].alive
        assert cluster.nodes[1].threads == []
        assert cluster.evacuations >= 1
        cluster.run_until(10_000.0)
        assert cluster.nodes[1].alive
        # The periodic rebalancer repopulated the returned node.
        assert cluster.nodes[1].threads
        log = injector.applied_log()
        assert any("node-crash node1" in line for line in log)
        assert any("node-restart node1 [rejoined]" in line for line in log)

    def test_crash_kills_pinned_thread_and_reclaims_tickets(self):
        cluster = make_cluster(nodes=3)
        victim = cluster.spawn(spin_body(20.0), "victim", tickets=250.0,
                               node=cluster.nodes[1], pinned=True)
        funding_before = cluster.total_funding()
        plan = FaultPlanBuilder().crash_node("node1", at=1_000.0).build()
        FaultInjector(plan, cluster=cluster).arm()
        cluster.run_until(2_000.0)
        assert not victim.alive
        assert cluster.threads_killed == 1
        assert cluster.total_funding() == funding_before - 250.0
        # Reclamation kept the shared ledger's books balanced.
        assert sanitize_ledger(cluster.ledger) == []

    def test_crash_lost_race_is_recorded_not_raised(self):
        cluster = make_cluster(nodes=2)
        plan = (FaultPlanBuilder()
                .crash_node("node0", at=1_000.0)
                .crash_node("node0", at=1_500.0)  # already down: skipped
                .build())
        injector = FaultInjector(plan, cluster=cluster).arm()
        cluster.run_until(2_000.0)
        log = injector.applied_log()
        assert len(log) == 2
        assert "skipped" in log[1] and "already down" in log[1]


class TestThreadKill:
    def test_kills_named_thread_and_prunes_placement(self):
        cluster = make_cluster(nodes=2)
        target = next(t for node in cluster.nodes for t in node.threads
                      if t.name == "w0")
        plan = FaultPlanBuilder().kill_thread("w0", at=1_000.0).build()
        injector = FaultInjector(plan, cluster=cluster).arm()
        cluster.run_until(2_000.0)
        assert not target.alive
        assert all(target not in node.threads for node in cluster.nodes)
        assert any("[killed]" in line for line in injector.applied_log())

    def test_missing_thread_is_skipped(self):
        kernel = make_lottery_kernel()
        kernel.spawn(spin_body(), "real", tickets=10)
        plan = FaultPlanBuilder().kill_thread("ghost", at=10.0).build()
        injector = FaultInjector(plan, kernels={"k": kernel},
                                 engine=kernel.engine).arm()
        kernel.run_until(100.0)
        assert any("skipped" in line for line in injector.applied_log())


class TestTimerFaults:
    def test_clock_skew_window_installs_and_clears(self):
        kernel = make_lottery_kernel()
        kernel.spawn(spin_body(), "spin", tickets=10)
        plan = (FaultPlanBuilder()
                .clock_skew("k", at=100.0, factor=3.0, duration=400.0)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        kernel.run_until(50.0)
        assert kernel.quantum_jitter is None
        kernel.run_until(200.0)
        assert kernel.quantum_jitter is not None
        assert kernel.quantum_jitter(100.0) == 300.0
        kernel.run_until(1_000.0)
        assert kernel.quantum_jitter is None

    def test_timer_jitter_is_seeded_and_bounded(self):
        def run(seed):
            kernel = make_lottery_kernel(seed=5)
            kernel.spawn(spin_body(), "spin", tickets=10)
            plan = (FaultPlanBuilder(seed)
                    .timer_jitter("k", at=0.0, amplitude_ms=30.0,
                                  duration=5_000.0)
                    .build())
            FaultInjector(plan, kernels={"k": kernel},
                          engine=kernel.engine).arm()
            kernel.run_until(200.0)
            jitter = kernel.quantum_jitter
            assert jitter is not None
            samples = [jitter(100.0) for _ in range(50)]
            assert all(70.0 <= s <= 130.0 for s in samples)
            kernel.run_until(10_000.0)
            assert kernel.quantum_jitter is None
            return samples

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestIpcFaults:
    def test_async_send_lost_after_retransmissions(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        got = []

        def receiver(ctx):
            request = yield Receive(port)
            got.append(request.message)

        def sender(ctx):
            yield Compute(10.0)
            yield Send(port, "doomed")

        kernel.spawn(receiver, "rx", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        plan = (FaultPlanBuilder()
                .drop_ipc("k", at=0.0, duration=60_000.0, drop_rate=1.0,
                          max_attempts=2)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        kernel.run_until(30_000.0)
        model = kernel.ipc_faults
        assert model is not None
        assert got == []
        assert model.dropped == 2  # original + one retransmission
        assert model.retransmitted == 1
        assert model.messages_lost == 1
        kernel.run_until(120_000.0)
        assert kernel.ipc_faults is None  # window expired

    def test_rpc_is_force_delivered_never_stranded(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        replies = []

        def server(ctx):
            while True:
                request = yield Receive(port)
                yield Reply(request, f"echo:{request.message}")

        def client(ctx):
            yield Compute(10.0)
            reply = yield Call(port, "ping")
            replies.append((ctx.now, reply))

        kernel.spawn(server, "srv", tickets=10)
        kernel.spawn(client, "cli", tickets=10)
        plan = (FaultPlanBuilder()
                .drop_ipc("k", at=0.0, duration=60_000.0, drop_rate=1.0,
                          max_attempts=2)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        kernel.run_until(30_000.0)
        model = kernel.ipc_faults
        assert replies and replies[0][1] == "echo:ping"
        assert model.forced_deliveries == 1

    def test_delay_window_defers_delivery(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        times = []

        def receiver(ctx):
            request = yield Receive(port)
            times.append(ctx.now)

        def sender(ctx):
            yield Compute(10.0)
            yield Send(port, "slow")

        kernel.spawn(receiver, "rx", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        plan = (FaultPlanBuilder()
                .delay_ipc("k", at=0.0, duration=60_000.0, delay_ms=500.0)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        kernel.run_until(30_000.0)
        assert times and times[0] >= 500.0
        assert kernel.ipc_faults.delayed == 1

    def test_port_filter_narrows_the_fault(self):
        kernel = make_lottery_kernel()
        clean = Port(kernel, "clean")
        lossy = Port(kernel, "lossy")
        got = []

        def receiver(port):
            def body(ctx):
                request = yield Receive(port)
                got.append((port.name, request.message))
            return body

        def sender(ctx):
            yield Compute(10.0)
            yield Send(clean, "a")
            yield Send(lossy, "b")

        kernel.spawn(receiver(clean), "rx1", tickets=10)
        kernel.spawn(receiver(lossy), "rx2", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        plan = (FaultPlanBuilder()
                .drop_ipc("k", at=0.0, duration=60_000.0, drop_rate=1.0,
                          port="lossy", max_attempts=1)
                .build())
        FaultInjector(plan, kernels={"k": kernel},
                      engine=kernel.engine).arm()
        kernel.run_until(30_000.0)
        assert ("clean", "a") in got
        assert ("lossy", "b") not in got


class TestDiskFaults:
    def test_error_window_fails_then_clears(self, engine):
        from repro.iosched.disk import Disk

        disk = Disk(engine)
        plan = (FaultPlanBuilder()
                .disk_errors("d", at=0.0, duration=1_000.0, error_rate=1.0)
                .build())
        FaultInjector(plan, disks={"d": disk}, engine=engine).arm()
        failed = disk.submit("a", 100, 64)
        engine.run(until=1_500.0)
        assert failed.failed
        assert disk.io_errors["a"] == 1
        assert disk.fault_policy is None  # window expired
        ok = disk.submit("a", 200, 64)
        engine.run()
        assert not ok.failed


class TestDeterminism:
    @staticmethod
    def _chaotic_run(seed):
        cluster = make_cluster(nodes=3, seed=seed)
        plan = (FaultPlanBuilder(seed)
                .random_crashes(["node0", "node1", "node2"], count=3,
                                start=500.0, end=8_000.0,
                                restart_after=1_000.0)
                .timer_jitter("node0", at=200.0, amplitude_ms=10.0,
                              duration=3_000.0)
                .build())
        injector = FaultInjector(plan, cluster=cluster).arm()
        cluster.run_until(12_000.0)
        cpu = sorted((t.name, t.cpu_time)
                     for node in cluster.nodes for t in node.threads)
        return injector.applied_log(), cluster.migrations, cpu

    def test_same_seed_bit_identical_fault_log_and_schedule(self):
        assert self._chaotic_run(97) == self._chaotic_run(97)

    def test_different_seed_diverges(self):
        assert self._chaotic_run(97)[0] != self._chaotic_run(98)[0]
