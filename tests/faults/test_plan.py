"""Tests for fault plans: validation, ordering, and seed determinism."""

import pytest

from repro.errors import FaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder


class TestFaultEvent:
    def test_describe_is_stable_and_sorted(self):
        event = FaultEvent(1500.0, FaultKind.IPC_DROP, "node0",
                           {"drop_rate": 0.5, "duration": 100.0})
        assert event.describe() == \
            "t=1500 ipc-drop node0 drop_rate=0.5 duration=100.0"

    def test_describe_without_time(self):
        event = FaultEvent(1500.0, FaultKind.NODE_CRASH, "node0")
        assert event.describe(with_time=False) == "node-crash node0"
        assert event.describe() == "t=1500 node-crash node0"


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan([
            FaultEvent(200.0, FaultKind.NODE_RESTART, "node0"),
            FaultEvent(100.0, FaultKind.NODE_CRASH, "node0"),
        ], seed=1)
        assert [e.time for e in plan] == [100.0, 200.0]

    def test_same_time_events_keep_declaration_order(self):
        plan = FaultPlan([
            FaultEvent(100.0, FaultKind.THREAD_KILL, "a"),
            FaultEvent(100.0, FaultKind.THREAD_KILL, "b"),
        ], seed=1)
        assert [e.target for e in plan] == ["a", "b"]

    def test_rejects_unknown_kind_and_negative_time(self):
        with pytest.raises(FaultError):
            FaultPlan([FaultEvent(0.0, "meteor-strike", "node0")], seed=1)
        with pytest.raises(FaultError):
            FaultPlan([FaultEvent(-1.0, FaultKind.NODE_CRASH, "node0")],
                      seed=1)

    def test_of_kind_filters_in_order(self):
        plan = (FaultPlanBuilder(seed=3)
                .crash_node("node0", at=50.0, restart_after=25.0)
                .crash_node("node1", at=10.0)
                .build())
        crashes = plan.of_kind(FaultKind.NODE_CRASH)
        assert [e.target for e in crashes] == ["node1", "node0"]
        assert len(plan.of_kind(FaultKind.NODE_RESTART)) == 1

    def test_signature_includes_seed_and_every_event(self):
        plan = (FaultPlanBuilder(seed=9)
                .kill_thread("worker", at=5.0)
                .build())
        signature = plan.signature()
        assert signature.splitlines()[0] == "seed=9"
        assert "thread-kill worker" in signature
        assert len(signature.splitlines()) == 1 + len(plan)


class TestBuilderValidation:
    def test_add_rejects_bad_parameters(self):
        builder = FaultPlanBuilder()
        with pytest.raises(FaultError):
            builder.add(0.0, "bogus-kind", "node0")
        with pytest.raises(FaultError):
            builder.add(-5.0, FaultKind.NODE_CRASH, "node0")
        with pytest.raises(FaultError):
            builder.add(0.0, FaultKind.NODE_CRASH, "")

    def test_crash_node_rejects_nonpositive_restart(self):
        with pytest.raises(FaultError):
            FaultPlanBuilder().crash_node("node0", at=10.0, restart_after=0.0)

    def test_clock_skew_and_jitter_validation(self):
        builder = FaultPlanBuilder()
        with pytest.raises(FaultError):
            builder.clock_skew("node0", at=0.0, factor=0.0, duration=10.0)
        with pytest.raises(FaultError):
            builder.clock_skew("node0", at=0.0, factor=2.0, duration=0.0)
        with pytest.raises(FaultError):
            builder.timer_jitter("node0", at=0.0, amplitude_ms=0.0,
                                 duration=10.0)

    def test_ipc_fault_validation(self):
        builder = FaultPlanBuilder()
        with pytest.raises(FaultError):
            builder.drop_ipc("node0", at=0.0, duration=10.0, drop_rate=0.0)
        with pytest.raises(FaultError):
            builder.drop_ipc("node0", at=0.0, duration=10.0, drop_rate=1.5)
        with pytest.raises(FaultError):
            builder.drop_ipc("node0", at=0.0, duration=10.0, max_attempts=0)
        with pytest.raises(FaultError):
            builder.delay_ipc("node0", at=0.0, duration=10.0, delay_ms=0.0)
        with pytest.raises(FaultError):
            builder.delay_ipc("node0", at=0.0, duration=10.0, delay_ms=5.0,
                              jitter_ms=-1.0)

    def test_disk_errors_validation(self):
        with pytest.raises(FaultError):
            FaultPlanBuilder().disk_errors("d", at=0.0, duration=10.0,
                                           error_rate=0.0)
        with pytest.raises(FaultError):
            FaultPlanBuilder().disk_errors("d", at=0.0, duration=0.0)

    def test_random_crashes_validation(self):
        builder = FaultPlanBuilder()
        with pytest.raises(FaultError):
            builder.random_crashes([], count=1, start=0.0, end=100.0)
        with pytest.raises(FaultError):
            builder.random_crashes(["node0"], count=-1, start=0.0, end=100.0)
        with pytest.raises(FaultError):
            builder.random_crashes(["node0"], count=1, start=100.0, end=100.0)


class TestSeedDeterminism:
    @staticmethod
    def _random_plan(seed):
        return (FaultPlanBuilder(seed)
                .random_crashes(["node0", "node1", "node2"], count=5,
                                start=1_000.0, end=60_000.0,
                                restart_after=5_000.0)
                .build())

    def test_same_seed_same_schedule(self):
        assert self._random_plan(42).signature() == \
            self._random_plan(42).signature()

    def test_different_seed_different_schedule(self):
        assert self._random_plan(42).signature() != \
            self._random_plan(43).signature()

    def test_random_crashes_sorted_and_windowed(self):
        plan = self._random_plan(7)
        crashes = plan.of_kind(FaultKind.NODE_CRASH)
        assert len(crashes) == 5
        times = [e.time for e in crashes]
        assert times == sorted(times)
        assert all(1_000.0 <= t < 60_000.0 for t in times)
        assert len(plan.of_kind(FaultKind.NODE_RESTART)) == 5
