"""Fault plans as checkpointable state: to_dict / from_dict round trips."""

import json

import pytest

from repro.errors import FaultError
from repro.experiments.chaos_fairness import default_plan
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


class TestFaultEventSerialization:
    def test_round_trip(self):
        event = FaultEvent(1500.0, FaultKind.IPC_DROP, "node0",
                           {"drop_rate": 0.5, "duration": 100.0})
        rebuilt = FaultEvent.from_dict(event.to_dict())
        assert rebuilt.time == event.time
        assert rebuilt.kind == event.kind
        assert rebuilt.target == event.target
        assert rebuilt.params == event.params

    def test_to_dict_is_json_serializable(self):
        event = FaultEvent(10.0, FaultKind.NODE_CRASH, "node1")
        data = event.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_malformed_dicts_rejected(self):
        good = FaultEvent(10.0, FaultKind.NODE_CRASH, "node1").to_dict()
        for broken in (
            {k: v for k, v in good.items() if k != "kind"},
            dict(good, kind="meteor-strike"),
            dict(good, time="soon"),
            "not a dict",
        ):
            with pytest.raises(FaultError):
                FaultEvent.from_dict(broken)


class TestFaultPlanSerialization:
    def test_round_trip_preserves_order_and_seed(self):
        plan = default_plan(seed=2718)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.seed == plan.seed
        assert [e.describe() for e in rebuilt] == \
            [e.describe() for e in plan]

    def test_round_trip_survives_json(self):
        plan = default_plan(seed=7)
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.to_dict() == plan.to_dict()

    def test_malformed_plans_rejected(self):
        good = default_plan(seed=1).to_dict()
        for broken in (
            {k: v for k, v in good.items() if k != "events"},
            dict(good, events="nope"),
            "not a dict",
        ):
            with pytest.raises(FaultError):
                FaultPlan.from_dict(broken)
