"""Tests for the shared experiment harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import (
    ExperimentResult,
    build_machine,
    format_table,
)
from tests.conftest import spin_body


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_union_preserves_first_seen_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}]
        table = format_table(rows)
        header = table.splitlines()[0]
        assert header.index("a") < header.index("b") < header.index("c")

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        table = format_table(rows)
        assert "1" in table and "2" in table

    def test_float_precision(self):
        table = format_table([{"x": 1.23456}], precision=2)
        assert "1.23" in table
        assert "1.235" not in table

    def test_alignment_width(self):
        rows = [{"name": "long-name-here", "v": 1}]
        lines = format_table(rows).splitlines()
        assert len(lines[0]) == len(lines[1])  # header matches separator


class TestBuildMachine:
    def test_quantum_and_cost_forwarded(self):
        machine = build_machine(quantum=50.0, context_switch_cost=2.0)
        assert machine.kernel.quantum == 50.0
        assert machine.kernel.context_switch_cost == 2.0

    def test_machine_facade(self):
        machine = build_machine()
        machine.kernel.spawn(spin_body(), "t", tickets=10)
        machine.run_until(500)
        assert machine.now == 500.0

    def test_policy_registry_errors(self):
        with pytest.raises(ExperimentError):
            build_machine(policy="nope")


class TestExperimentResult:
    def test_report_without_rows(self, capsys):
        ExperimentResult("bare").print_report()
        out = capsys.readouterr().out
        assert "bare" in out
        assert "(no rows)" not in out  # rows section skipped entirely

    def test_report_includes_everything(self, capsys):
        result = ExperimentResult(
            "full",
            params={"seed": 1},
            rows=[{"x": 1}],
            summary={"answer": 42},
        )
        result.print_report()
        out = capsys.readouterr().out
        assert "seed=1" in out
        assert "answer: 42" in out
        assert "x" in out
