"""Shape tests for the extension experiments (reduced scale)."""


from repro.experiments import cluster_fairness, multiresource, responsiveness


class TestResponsiveness:
    def test_compensation_dominates_no_compensation(self):
        result = responsiveness.run(duration_ms=60_000)
        rows = {row["policy"]: row for row in result.rows}
        assert (rows["lottery"]["mean_latency_ms"]
                < rows["lottery-no-compensation"]["mean_latency_ms"] / 3)
        assert rows["fixed-priority"]["bursts_completed"] == 0
        assert rows["lottery"]["bursts_completed"] > 100

    def test_single_policy_runner(self):
        row = responsiveness.run_policy("round-robin",
                                        duration_ms=30_000, hogs=3)
        # Round-robin: the waking interactive thread queues behind the
        # hogs ahead of it -- roughly two full quanta on average.
        assert 150 < row["mean_latency_ms"] < 305
        assert row["bursts_completed"] > 50


class TestMultiresource:
    def test_manager_tracks_phase(self):
        result = multiresource.run(duration_ms=200_000)
        items = {row["policy"]: row["items"] for row in result.rows}
        assert items["manager"] >= 0.9 * max(items.values())
        manager_row = next(r for r in result.rows
                           if r["policy"] == "manager")
        assert manager_row["rebalances"] > 5

    def test_variant_diagnostics(self):
        outcome = multiresource.run_variant("static-50",
                                            duration_ms=60_000)
        assert outcome["items"] > 0
        assert outcome["rebalances"] == 1  # only the initial split
        assert set(outcome["final_allocation"]) == {"cpu", "disk"}


class TestClusterFairness:
    def test_migration_beats_static(self):
        result = cluster_fairness.run(duration_ms=100_000)
        static = float(
            result.summary["max relative error (static placement)"]
        )
        balanced = float(
            result.summary["max relative error (rebalancing)"]
        )
        assert balanced < static
        assert result.summary["migrations (rebalancing)"] > 0
        assert result.summary["migrations (static placement)"] == 0

    def test_report_rows_cover_both_variants(self):
        result = cluster_fairness.run(duration_ms=50_000)
        variants = {row["variant"] for row in result.rows}
        assert variants == {"static placement", "rebalancing"}
        for row in result.rows:
            assert row["cpu_ms"] >= 0
            assert row["entitled_ms"] >= 0


class TestShardObservability:
    def test_backends_agree_on_the_canonical_record(self):
        from repro.experiments import shard_observability

        single = shard_observability.run_backend("single", 1)
        inline = shard_observability.run_backend("inline", 2)
        assert single["canonical_sha"] == inline["canonical_sha"]
        assert single["trace_sha"] == inline["trace_sha"]
        assert single["slo_ok"] and inline["slo_ok"]
        assert single["restarts"] == inline["restarts"] == 0

    def test_report_covers_every_backend_combo(self):
        from repro.experiments import shard_observability

        labels = {label for label, _, _, _
                  in shard_observability.BACKENDS}
        assert "supervised+kill x2" in labels  # faulted combo present
        assert any(b == "mp" for _, b, _, _
                   in shard_observability.BACKENDS)
