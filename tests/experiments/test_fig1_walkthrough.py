"""Tests for the Figure 1 walkthrough experiment."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import fig1_walkthrough


class TestWalk:
    def test_paper_example_exactly(self):
        winner, rows = fig1_walkthrough.walk()
        assert winner == 2  # third client
        assert [r["running_sum"] for r in rows] == [10, 12, 17, 18, 20]
        assert [r["sum > winning?"] for r in rows] == (
            ["no", "no", "yes", "yes", "yes"]
        )

    @pytest.mark.parametrize(
        "winning,expected",
        [(0.0, 0), (9.9, 0), (10.0, 1), (11.9, 1), (12.0, 2), (16.9, 2),
         (17.0, 3), (18.0, 4), (19.9, 4)],
    )
    def test_interval_boundaries(self, winning, expected):
        winner, _ = fig1_walkthrough.walk(winning=winning)
        assert winner == expected

    def test_out_of_range_winning_value_rejected(self):
        with pytest.raises(ExperimentError):
            fig1_walkthrough.walk(winning=20.0)
        with pytest.raises(ExperimentError):
            fig1_walkthrough.walk(winning=-1.0)


class TestRun:
    def test_frequencies_match_shares(self):
        result = fig1_walkthrough.run(draws=50_000)
        assert "client 3" in result.summary["winner"]
        for index, tickets in enumerate(fig1_walkthrough.FIGURE1_TICKETS):
            rate_text = result.summary[f"client {index + 1} win rate"]
            rate = float(rate_text.split()[0])
            assert rate == pytest.approx(tickets / 20.0, abs=0.01)
