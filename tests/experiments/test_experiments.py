"""Shape tests for every experiment driver (reduced-scale runs).

Each test runs the corresponding figure's driver at a fraction of the
paper's duration and asserts the *shape* the paper reports: who wins,
by roughly what factor, and which invariants hold.  The full-scale
parameters live in the benchmarks.
"""

import pytest

import repro.experiments as ex
from repro.experiments.common import ExperimentResult, build_machine
from repro.errors import ExperimentError


class TestCommon:
    def test_build_machine_policies(self):
        for policy in ("lottery", "round-robin", "timesharing", "stride",
                       "fair-share", "fixed-priority", "lottery-tree",
                       "lottery-no-compensation"):
            machine = build_machine(policy=policy)
            assert machine.kernel.policy is machine.policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ExperimentError):
            build_machine(policy="galactic")

    def test_result_report_prints(self, capsys):
        result = ExperimentResult("demo", params={"x": 1},
                                  rows=[{"a": 1, "b": 2.5}],
                                  summary={"verdict": "ok"})
        result.print_report()
        output = capsys.readouterr().out
        assert "demo" in output
        assert "verdict" in output
        assert "2.500" in output


class TestFig4:
    def test_observed_tracks_allocated(self):
        result = ex.fig4_rate_accuracy.run(
            ratios=[1, 3, 7], runs=2, duration_ms=60_000
        )
        for row in result.rows:
            assert row["observed"] == pytest.approx(row["allocated"],
                                                    rel=0.25)

    def test_single_run_helper(self):
        ratio = ex.fig4_rate_accuracy.run_single(5.0, duration_ms=60_000,
                                                 seed=77)
        assert ratio == pytest.approx(5.0, rel=0.25)


class TestFig5:
    def test_windows_scatter_around_two_to_one(self):
        result = ex.fig5_fairness_over_time.run(duration_ms=100_000,
                                                window_ms=8_000)
        ratios = [row["ratio"] for row in result.rows]
        assert sum(ratios) / len(ratios) == pytest.approx(2.0, rel=0.2)
        # Randomized allocation: windows must actually vary.
        assert max(ratios) != min(ratios)


class TestFig6:
    def test_staggered_tasks_converge(self):
        result = ex.fig6_montecarlo.run(
            duration_ms=240_000, stagger_ms=40_000, sample_every_ms=40_000
        )
        finals = [
            value for key, value in result.summary.items()
            if key.endswith("final trials")
        ]
        assert len(finals) == 3
        # Later-started tasks caught most of the way up.
        assert min(finals) > 0.5 * max(finals)
        # All estimates converge to pi/4.
        for key, value in result.summary.items():
            if key.endswith("estimate"):
                assert "0.78" in str(value)


class TestFig7:
    def test_throughput_and_response_shapes(self):
        result = ex.fig7_query_rates.run(
            duration_ms=300_000, corpus_kb=1000, scan_ms_per_kb=2.0
        )
        ratio_text = result.summary["B:C throughput ratio"]
        ratio = float(ratio_text.split(":")[0])
        assert ratio == pytest.approx(3.0, rel=0.35)
        # Query results are the true planted count.
        assert "[8]" in result.summary["query result (occurrences)"]


class TestFig8:
    def test_reallocation_changes_rates(self):
        result = ex.fig8_video_rates.run(duration_ms=200_000)
        before = result.summary["frame-rate ratio before"]
        after = result.summary["frame-rate ratio after"]
        b = [float(x) for x in before.split("(")[0].split(":")]
        a = [float(x) for x in after.split("(")[0].split(":")]
        # Before: A > B > C; after: A > C > B (3:1:2).
        assert b[0] > b[1] > b[2]
        assert a[0] > a[2] > a[1]


class TestFig9:
    def test_insulation(self):
        result = ex.fig9_load_insulation.run(duration_ms=160_000)
        aggregate = result.summary["aggregate A:B iterations"]
        value = float(aggregate.split(":")[0])
        assert value == pytest.approx(1.0, abs=0.15)
        # B tasks slow to about half after B3 starts; A tasks do not.
        b2 = result.summary["B2 rate (before -> after B3)"]
        factor = float(b2.split("(")[1].split("x")[0])
        assert factor == pytest.approx(0.5, abs=0.15)
        a2 = result.summary["A2 rate (before -> after B3)"]
        factor_a = float(a2.split("(")[1].split("x")[0])
        assert factor_a == pytest.approx(1.0, abs=0.2)


class TestFig11:
    def test_mutex_ratios(self):
        result = ex.fig11_mutex.run(duration_ms=120_000)
        acq = result.summary["acquisition ratio A:B"]
        ratio = float(acq.split(":")[0])
        assert 1.4 < ratio < 2.6  # paper: 1.80
        wait = result.summary["waiting time ratio A:B"]
        wait_ratio = float(wait.split(":")[1].split("(")[0])
        assert 1.4 < wait_ratio < 3.0  # paper: 2.11
        assert result.summary["release lotteries"] > 0


class TestOverhead:
    def test_lottery_cost_comparable_to_timesharing(self):
        result = ex.overhead.run(duration_ms=30_000)
        text = result.summary["lottery/timesharing dispatch cost"]
        factor = float(text.split("x")[0])
        # "Comparable": within 5x either way on the host.
        assert 0.2 < factor < 5.0


class TestInverseMemory:
    def test_eviction_shares_track_prediction(self):
        result = ex.inverse_memory.run(references=15_000)
        for row in result.rows:
            assert row["observed_share"] == pytest.approx(
                row["predicted_share"], abs=0.06
            )
        observed = {row["client"]: row["observed_share"]
                    for row in result.rows}
        assert observed["A"] < observed["B"] < observed["C"]


class TestDiverseResources:
    def test_disk_and_link_shares(self):
        result = ex.diverse_resources.run()
        disk = result.summary["disk lottery A:B"]
        assert float(disk.split(":")[0]) == pytest.approx(3.0, rel=0.2)
        link = result.summary["link lottery X:Y:Z"]
        x_over_z = float(link.split(":")[0])
        assert x_over_z == pytest.approx(4.0, rel=0.2)
        # Round-robin baselines split evenly.
        rr_rows = [r for r in result.rows
                   if r.get("scheduler") == "round-robin"
                   and r["resource"] == "disk"]
        assert rr_rows[0]["A_share"] == pytest.approx(0.5, abs=0.05)


class TestAblations:
    def test_cv_law(self):
        result = ex.ablations.run_quantum_accuracy(
            lottery_counts=(100, 400), trials=80
        )
        for row in result.rows:
            assert 0.5 < row["ratio"] < 2.0

    def test_lottery_vs_stride(self):
        result = ex.ablations.run_lottery_vs_stride(
            checkpoints_ms=(5_000, 50_000)
        )
        stride_rows = [r for r in result.rows if r["policy"] == "stride"]
        lottery_rows = [r for r in result.rows if r["policy"] == "lottery"]
        assert max(r["max_error_quanta"] for r in stride_rows) <= 1.5
        assert (lottery_rows[-1]["max_error_quanta"]
                > stride_rows[-1]["max_error_quanta"])

    def test_compensation_ablation(self):
        result = ex.ablations.run_compensation(duration_ms=150_000)
        with_comp = next(r for r in result.rows if r["policy"] == "lottery")
        without = next(r for r in result.rows
                       if r["policy"] == "lottery-no-compensation")
        assert with_comp["cpu_ratio"] == pytest.approx(1.0, rel=0.2)
        assert without["cpu_ratio"] == pytest.approx(5.0, rel=0.25)
