"""Tests for the one-shot reproduction driver."""

from repro.experiments import reproduce_all


class TestChecks:
    def test_check_registry_covers_all_figures(self):
        labels = [label for label, _ in reproduce_all.CHECKS]
        for figure in ("Figure 1", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7", "Figure 8", "Figure 9", "Figure 11"):
            assert any(label.startswith(figure) for label in labels)
        assert len(labels) == 20

    def test_individual_cheap_checks_pass(self):
        ok, detail = reproduce_all._fig1(quick=True)
        assert ok and "client 3" in detail
        ok, detail = reproduce_all._stride(quick=True)
        assert ok
        ok, detail = reproduce_all._diverse(quick=True)
        assert ok

    def test_reproduce_reports_failures_without_raising(self, monkeypatch,
                                                        capsys):
        # Patch in one passing and one crashing check: the driver must
        # survive and count the failure.
        monkeypatch.setattr(
            reproduce_all, "CHECKS",
            [
                ("ok", lambda quick: (True, "fine")),
                ("boom", lambda quick: (_ for _ in ()).throw(
                    RuntimeError("nope"))),
            ],
        )
        failures = reproduce_all.reproduce(quick=True)
        out = capsys.readouterr().out
        assert failures == 1
        assert "[PASS] ok" in out
        assert "[FAIL] boom" in out
        assert "1/2" in out
