"""Shape tests for the service-class job-stream experiment."""

import pytest

from repro.experiments import service_classes


class TestBuildTrace:
    def test_default_trace_composition(self):
        trace = service_classes.build_trace(jobs=300, seed=3)
        assert len(trace) == 300
        classes = {service_classes.CLASSES[j.tickets] for j in trace}
        assert classes == {"gold", "silver", "bronze"}

    def test_trace_deterministic(self):
        a = service_classes.build_trace(jobs=50, seed=7)
        b = service_classes.build_trace(jobs=50, seed=7)
        assert a.to_csv() == b.to_csv()


class TestRunStream:
    def test_lottery_orders_classes(self):
        trace = service_classes.build_trace(jobs=400, seed=9)
        _, means = service_classes.run_stream(
            "lottery", duration_ms=300_000, trace=trace
        )
        assert means["gold"] < means["silver"] < means["bronze"]

    def test_round_robin_flat(self):
        trace = service_classes.build_trace(jobs=400, seed=9)
        _, means = service_classes.run_stream(
            "round-robin", duration_ms=300_000, trace=trace
        )
        values = sorted(means.values())
        assert values[-1] / values[0] < 1.3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            service_classes.run_stream("cfs")


class TestRun:
    def test_summary_shapes(self):
        result = service_classes.run(duration_ms=250_000)
        assert len(result.rows) == 3
        assert "lottery class spread" in result.summary
        lottery = next(r for r in result.rows if r["policy"] == "lottery")
        assert lottery["completed"] > 0
