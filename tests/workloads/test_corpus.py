"""Tests for the synthetic corpus generator."""

import pytest

from repro.errors import ReproError
from repro.workloads.corpus import count_occurrences, generate_corpus


class TestGenerateCorpus:
    def test_size_close_to_target(self):
        corpus = generate_corpus(size_kb=100, occurrences=4)
        assert len(corpus) == pytest.approx(100 * 1024, rel=0.05)

    def test_exact_occurrence_count(self):
        corpus = generate_corpus(size_kb=50, search_string="lottery",
                                 occurrences=8)
        assert count_occurrences(corpus, "lottery") == 8

    def test_zero_occurrences(self):
        corpus = generate_corpus(size_kb=20, occurrences=0)
        assert count_occurrences(corpus, "lottery") == 0

    def test_case_insensitivity_matters(self):
        # Some plantings are capitalized: a case-sensitive count misses
        # them, the server's case-insensitive count does not.
        corpus = generate_corpus(size_kb=50, occurrences=9)
        assert corpus.count("lottery") < 9
        assert count_occurrences(corpus, "LOTTERY") == 9

    def test_deterministic_given_seed(self):
        a = generate_corpus(size_kb=30, seed=7)
        b = generate_corpus(size_kb=30, seed=7)
        c = generate_corpus(size_kb=30, seed=8)
        assert a == b
        assert a != c

    def test_custom_search_string(self):
        corpus = generate_corpus(size_kb=30, search_string="microkernel",
                                 occurrences=5)
        assert count_occurrences(corpus, "microkernel") == 5

    def test_colliding_search_string_rejected(self):
        with pytest.raises(ReproError):
            generate_corpus(size_kb=10, search_string="king")

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            generate_corpus(size_kb=0)
        with pytest.raises(ReproError):
            generate_corpus(size_kb=10, occurrences=-1)

    def test_count_occurrences_empty_needle_rejected(self):
        with pytest.raises(ReproError):
            count_occurrences("text", "")
