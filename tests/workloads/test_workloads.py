"""Tests for the paper's workload models."""

import pytest

from repro.errors import ReproError
from repro.workloads.database import DatabaseClient, DatabaseServer
from repro.workloads.dhrystone import DhrystoneTask
from repro.workloads.montecarlo import (
    MonteCarloEstimator,
    MonteCarloTask,
    quarter_circle,
)
from repro.workloads.mpeg import MpegViewer
from repro.workloads.synthetic import Bursty, CpuBound, FractionalQuantum
from tests.conftest import make_lottery_kernel


class TestDhrystone:
    def test_iteration_rate_proportional_to_cpu(self):
        kernel = make_lottery_kernel(seed=41)
        fast = DhrystoneTask("fast")
        slow = DhrystoneTask("slow")
        kernel.spawn(fast.body, "fast", tickets=300)
        kernel.spawn(slow.body, "slow", tickets=100)
        kernel.run_until(120_000)
        assert fast.iterations / slow.iterations == pytest.approx(3.0,
                                                                  rel=0.2)

    def test_rate_per_second(self):
        kernel = make_lottery_kernel()
        task = DhrystoneTask("solo", chunk_iterations=100,
                             iteration_ms=0.1)
        kernel.spawn(task.body, "solo", tickets=10)
        kernel.run_until(10_000)
        # Dedicated CPU at 0.1 ms/iteration: 10k iterations/sec.
        assert task.rate_per_second(0, 10_000) == pytest.approx(10_000,
                                                                rel=0.02)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            DhrystoneTask("bad", chunk_iterations=0)
        with pytest.raises(ReproError):
            DhrystoneTask("bad", iteration_ms=0)


class TestMonteCarloEstimator:
    def test_converges_to_pi_over_four(self):
        estimator = MonteCarloEstimator(quarter_circle, seed=99)
        estimator.sample(200_000)
        assert estimator.estimate == pytest.approx(0.785398, abs=0.005)

    def test_error_shrinks_with_samples(self):
        estimator = MonteCarloEstimator(quarter_circle, seed=7)
        estimator.sample(100)
        early = estimator.relative_error()
        estimator.sample(100_000)
        late = estimator.relative_error()
        assert late < early / 10

    def test_fresh_estimator_reports_max_error(self):
        estimator = MonteCarloEstimator(quarter_circle)
        assert estimator.relative_error() == 1.0

    def test_invalid_sample_count(self):
        with pytest.raises(ReproError):
            MonteCarloEstimator(quarter_circle).sample(0)

    def test_error_scaling_is_sqrt_n(self):
        estimator = MonteCarloEstimator(quarter_circle, seed=13)
        estimator.sample(10_000)
        error_10k = estimator.standard_error()
        estimator.sample(30_000)  # total 40k = 4x
        assert estimator.standard_error() == pytest.approx(error_10k / 2,
                                                           rel=0.15)


class TestMonteCarloTask:
    def test_counts_trials_against_time(self):
        kernel = make_lottery_kernel()
        task = MonteCarloTask("mc", seed=3, trials_per_batch=100,
                              batch_ms=10.0)
        kernel.spawn(task.body, "mc", tickets=10)
        kernel.run_until(10_000)
        # 1000 batches of 100 trials on a dedicated CPU.
        assert task.trials == 100 * 1000

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            MonteCarloTask("bad", trials_per_batch=0)
        with pytest.raises(ReproError):
            MonteCarloTask("bad", batch_ms=0)


class TestMpegViewer:
    def test_frame_rate_tracks_cpu_share(self):
        kernel = make_lottery_kernel(seed=88)
        fast = MpegViewer("fast", decode_ms=50)
        slow = MpegViewer("slow", decode_ms=50)
        kernel.spawn(fast.body, "fast", tickets=300)
        kernel.spawn(slow.body, "slow", tickets=100)
        kernel.run_until(120_000)
        assert fast.frames / slow.frames == pytest.approx(3.0, rel=0.2)

    def test_target_fps_caps_rate(self):
        kernel = make_lottery_kernel()
        paced = MpegViewer("paced", decode_ms=10, target_fps=10)
        kernel.spawn(paced.body, "paced", tickets=10)
        kernel.run_until(10_000)
        # Plenty of CPU but pacing caps at 10 fps.
        assert paced.frame_rate(0, 10_000) == pytest.approx(10.0, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            MpegViewer("bad", decode_ms=0)
        with pytest.raises(ReproError):
            MpegViewer("bad", target_fps=0)


class TestSyntheticWorkloads:
    def test_cpu_bound_counts_chunks(self):
        kernel = make_lottery_kernel()
        workload = CpuBound("w", chunk_ms=10)
        kernel.spawn(workload.body, "w", tickets=10)
        kernel.run_until(1000)
        assert workload.counter.total >= 99

    def test_fractional_quantum_yields(self):
        kernel = make_lottery_kernel()
        workload = FractionalQuantum("w", burst_ms=20)
        thread = kernel.spawn(workload.body, "w", tickets=10)
        kernel.run_until(1000)
        assert thread.voluntary_yields > 0

    def test_bursty_sleeps_between_bursts(self):
        kernel = make_lottery_kernel()
        workload = Bursty("w", burst_ms=5, sleep_ms=45)
        thread = kernel.spawn(workload.body, "w", tickets=10)
        kernel.run_until(10_000)
        # Duty cycle 10%: ~1000 ms of CPU would mean no sleeping.
        assert thread.cpu_time == pytest.approx(1000, rel=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            CpuBound("bad", chunk_ms=0)
        with pytest.raises(ReproError):
            FractionalQuantum("bad", burst_ms=0)
        with pytest.raises(ReproError):
            Bursty("bad", burst_ms=0)


class TestDatabase:
    def test_query_returns_true_count(self):
        kernel = make_lottery_kernel(seed=14)
        server = DatabaseServer(kernel, workers=2, corpus_kb=50,
                                search_occurrences=8)
        client = DatabaseClient(kernel, server, "c", tickets=100,
                                max_queries=3)
        kernel.run_until(60_000)
        assert client.completed == 3
        assert set(client.results) == {8}

    def test_throughput_tracks_tickets(self):
        kernel = make_lottery_kernel(seed=15)
        server = DatabaseServer(kernel, workers=3, corpus_kb=100)
        rich = DatabaseClient(kernel, server, "rich", tickets=300)
        poor = DatabaseClient(kernel, server, "poor", tickets=100)
        kernel.run_until(300_000)
        assert rich.completed / poor.completed == pytest.approx(3.0,
                                                                rel=0.3)

    def test_response_time_accounting(self):
        kernel = make_lottery_kernel(seed=16)
        server = DatabaseServer(kernel, workers=1, corpus_kb=50)
        client = DatabaseClient(kernel, server, "c", tickets=100,
                                max_queries=2)
        kernel.run_until(60_000)
        assert client.mean_response_time() > 0
        assert len(client.completions) == 2
        assert server.queries_served == 2

    def test_worker_count_validated(self):
        kernel = make_lottery_kernel()
        with pytest.raises(ReproError):
            DatabaseServer(kernel, workers=0, corpus_kb=10)

    def test_server_currency_mode(self):
        kernel = make_lottery_kernel(seed=17)
        server = DatabaseServer(kernel, workers=2, corpus_kb=50,
                                use_server_currency=True)
        client = DatabaseClient(kernel, server, "c", tickets=100,
                                max_queries=2)
        kernel.run_until(60_000)
        assert client.completed == 2
        assert server.port.currency is not None
