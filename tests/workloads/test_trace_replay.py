"""Tests for trace-driven workloads."""

import pytest

from repro.errors import ReproError
from repro.workloads.trace_replay import (
    JobSpec,
    TraceReplayer,
    WorkloadTrace,
    generate_poisson_trace,
)
from tests.conftest import make_lottery_kernel


class TestJobSpec:
    def test_total_cpu(self):
        job = JobSpec("j", 0.0, 100.0, [(50.0, 10.0), (25.0, 0.0)])
        assert job.total_cpu_ms == 75.0

    def test_validation(self):
        with pytest.raises(ReproError):
            JobSpec("j", -1.0, 100.0)
        with pytest.raises(ReproError):
            JobSpec("j", 0.0, -5.0)
        with pytest.raises(ReproError):
            JobSpec("j", 0.0, 1.0, [(-1.0, 0.0)])


class TestWorkloadTrace:
    def test_jobs_kept_in_arrival_order(self):
        trace = WorkloadTrace()
        trace.add(JobSpec("late", 100.0, 1.0, [(10.0, 0.0)]))
        trace.add(JobSpec("early", 5.0, 1.0, [(10.0, 0.0)]))
        assert [j.name for j in trace] == ["early", "late"]

    def test_csv_round_trip(self):
        original = WorkloadTrace(
            [
                JobSpec("a", 0.0, 100.0, [(50.0, 10.0), (25.0, 5.0)]),
                JobSpec("b", 42.5, 200.0, [(30.0, 0.0)]),
            ]
        )
        restored = WorkloadTrace.from_csv(original.to_csv())
        assert len(restored) == 2
        assert restored.jobs[0].name == "a"
        assert restored.jobs[0].phases == [(50.0, 10.0), (25.0, 5.0)]
        assert restored.jobs[1].tickets == 200.0
        assert restored.total_cpu_ms() == original.total_cpu_ms()

    def test_malformed_csv_rejected(self):
        with pytest.raises(ReproError):
            WorkloadTrace.from_csv("header\nname,1.0\n")
        with pytest.raises(ReproError):
            WorkloadTrace.from_csv("header\na,0,1,10\n")  # odd phase cells


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = generate_poisson_trace(20, seed=5)
        b = generate_poisson_trace(20, seed=5)
        assert a.to_csv() == b.to_csv()
        c = generate_poisson_trace(20, seed=6)
        assert a.to_csv() != c.to_csv()

    def test_mean_interarrival_and_service(self):
        trace = generate_poisson_trace(
            2000, arrival_rate_per_s=2.0, mean_cpu_ms=100.0,
            phases_per_job=1, seed=11,
        )
        last = trace.jobs[-1].arrival_ms
        # 2 arrivals/sec: 2000 jobs in ~1000 s.
        assert last == pytest.approx(1_000_000.0, rel=0.1)
        mean_cpu = trace.total_cpu_ms() / len(trace)
        assert mean_cpu == pytest.approx(100.0, rel=0.1)

    def test_ticket_choices_used(self):
        trace = generate_poisson_trace(
            200, tickets_choices=(100.0, 300.0), seed=3
        )
        values = {job.tickets for job in trace}
        assert values == {100.0, 300.0}

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_poisson_trace(0)
        with pytest.raises(ReproError):
            generate_poisson_trace(5, arrival_rate_per_s=0)


class TestReplayer:
    def test_jobs_arrive_and_complete(self):
        kernel = make_lottery_kernel(seed=21)
        trace = WorkloadTrace(
            [
                JobSpec("first", 0.0, 100.0, [(200.0, 0.0)]),
                JobSpec("second", 1_000.0, 100.0, [(200.0, 0.0)]),
            ]
        )
        replayer = TraceReplayer(kernel, trace)
        replayer.start()
        kernel.run_until(5_000)
        assert replayer.completed() == 2
        responses = replayer.response_times()
        # Unloaded: each job takes its own CPU demand.
        assert responses["first"] == pytest.approx(200.0)
        assert responses["second"] == pytest.approx(200.0)

    def test_contention_inflates_response_time(self):
        kernel = make_lottery_kernel(seed=23)
        jobs = [
            JobSpec(f"j{i}", 0.0, 100.0, [(500.0, 0.0)]) for i in range(4)
        ]
        replayer = TraceReplayer(kernel, WorkloadTrace(jobs))
        replayer.start()
        kernel.run_until(10_000)
        assert replayer.completed() == 4
        slowdowns = replayer.slowdowns()
        assert all(s >= 1.0 for s in slowdowns.values())
        assert replayer.mean_response_time() > 500.0

    def test_funded_job_finishes_sooner(self):
        kernel = make_lottery_kernel(seed=25)
        trace = WorkloadTrace(
            [
                JobSpec("vip", 0.0, 900.0, [(1_000.0, 0.0)]),
                JobSpec("pleb", 0.0, 100.0, [(1_000.0, 0.0)]),
            ]
        )
        replayer = TraceReplayer(kernel, trace)
        replayer.start()
        kernel.run_until(60_000)
        responses = replayer.response_times()
        assert responses["vip"] < responses["pleb"]

    def test_phases_with_sleep(self):
        kernel = make_lottery_kernel(seed=27)
        trace = WorkloadTrace(
            [JobSpec("io", 0.0, 100.0, [(50.0, 300.0), (50.0, 0.0)])]
        )
        replayer = TraceReplayer(kernel, trace)
        replayer.start()
        kernel.run_until(5_000)
        response = replayer.response_times()["io"]
        assert response == pytest.approx(400.0)
