"""Tests for the lottery scheduling policy wired into the kernel."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.kernel.kernel import Kernel
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine
from tests.conftest import make_lottery_kernel, spin_body


class TestProportionalShares:
    @pytest.mark.parametrize("ratio", [1, 2, 5, 10])
    def test_two_thread_ratios(self, ratio):
        kernel = make_lottery_kernel(seed=ratio * 13)
        a = kernel.spawn(spin_body(), "a", tickets=100.0 * ratio)
        b = kernel.spawn(spin_body(), "b", tickets=100.0)
        kernel.run_until(200_000)
        observed = a.cpu_time / b.cpu_time
        assert observed == pytest.approx(ratio, rel=0.2)

    def test_three_way_split(self):
        kernel = make_lottery_kernel(seed=4242)
        threads = {
            name: kernel.spawn(spin_body(), name, tickets=amount)
            for name, amount in (("a", 500), ("b", 300), ("c", 200))
        }
        kernel.run_until(200_000)
        total = sum(t.cpu_time for t in threads.values())
        assert threads["a"].cpu_time / total == pytest.approx(0.5, abs=0.05)
        assert threads["b"].cpu_time / total == pytest.approx(0.3, abs=0.05)
        assert threads["c"].cpu_time / total == pytest.approx(0.2, abs=0.05)

    def test_dynamic_ticket_change_takes_effect(self):
        kernel = make_lottery_kernel(seed=321)
        a = kernel.spawn(spin_body(), "a", tickets=100)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(100_000)
        first_a = a.cpu_time
        # Inflate a's ticket 4x; the next 100 s should split ~4:1.
        a.tickets[0].set_amount(400)
        kernel.run_until(200_000)
        second_a = a.cpu_time - first_a
        second_b = b.cpu_time - (100_000 - first_a)
        assert second_a / second_b == pytest.approx(4.0, rel=0.25)

    def test_currency_funded_threads(self):
        kernel = make_lottery_kernel(seed=999)
        ledger = kernel.ledger
        group = ledger.create_currency("group")
        ledger.create_ticket(900, fund=group)
        solo = kernel.spawn(spin_body(), "solo", tickets=300)
        grouped = []
        for i in range(3):
            task = kernel.create_task(f"g{i}")
            task.currency = group
            grouped.append(
                kernel.spawn(spin_body(), f"g{i}", task=task, tickets=100,
                             currency=group)
            )
        kernel.run_until(200_000)
        group_cpu = sum(t.cpu_time for t in grouped)
        # Group gets 900 of 1200 total = 75%; members split it evenly.
        assert group_cpu / 200_000 == pytest.approx(0.75, abs=0.05)
        for member in grouped:
            assert member.cpu_time / group_cpu == pytest.approx(1 / 3, abs=0.07)


class TestTreeMode:
    def test_tree_policy_matches_list_shares(self):
        engine = Engine()
        ledger = Ledger()
        policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(55), use_tree=True)
        kernel = Kernel(engine, policy, ledger=ledger, quantum=100.0)
        a = kernel.spawn(spin_body(), "a", tickets=300)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(200_000)
        assert a.cpu_time / b.cpu_time == pytest.approx(3.0, rel=0.2)

    def test_tree_mode_tracks_funding_changes(self):
        engine = Engine()
        ledger = Ledger()
        policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(56), use_tree=True)
        kernel = Kernel(engine, policy, ledger=ledger, quantum=100.0)
        a = kernel.spawn(spin_body(), "a", tickets=100)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(50_000)
        a.tickets[0].set_amount(900)
        start_a, start_b = a.cpu_time, b.cpu_time
        kernel.run_until(250_000)
        gained_a = a.cpu_time - start_a
        gained_b = b.cpu_time - start_b
        assert gained_a / gained_b == pytest.approx(9.0, rel=0.3)


class TestCompensationIntegration:
    def test_io_bound_thread_keeps_share(self):
        # Section 4.5: B uses 20 ms then yields; equal funding -> equal
        # long-run CPU with compensation enabled.
        from repro.kernel.syscalls import Compute, YieldCPU

        kernel = make_lottery_kernel(seed=31)

        def fractional(ctx):
            while True:
                yield Compute(20.0)
                yield YieldCPU()

        a = kernel.spawn(spin_body(100.0), "full", tickets=400)
        b = kernel.spawn(fractional, "frac", tickets=400)
        kernel.run_until(400_000)
        assert a.cpu_time / b.cpu_time == pytest.approx(1.0, rel=0.15)

    def test_without_compensation_fraction_user_starves(self):
        from repro.kernel.syscalls import Compute, YieldCPU

        kernel = make_lottery_kernel(seed=31, compensation=False)

        def fractional(ctx):
            while True:
                yield Compute(20.0)
                yield YieldCPU()

        a = kernel.spawn(spin_body(100.0), "full", tickets=400)
        b = kernel.spawn(fractional, "frac", tickets=400)
        kernel.run_until(400_000)
        # B only banks 20 ms per win at equal win rates: ~5:1.
        assert a.cpu_time / b.cpu_time == pytest.approx(5.0, rel=0.2)


class TestBookkeeping:
    def test_lottery_counter(self):
        kernel = make_lottery_kernel()
        kernel.spawn(spin_body(), "a", tickets=10)
        kernel.spawn(spin_body(), "b", tickets=10)
        kernel.run_until(10_000)
        assert kernel.policy.lotteries_held == kernel.dispatch_count

    def test_exited_thread_leaves_no_state(self):
        from repro.kernel.syscalls import Compute

        kernel = make_lottery_kernel()

        def short(ctx):
            yield Compute(30.0)

        kernel.spawn(short, "short", tickets=10)
        kernel.run_until(1000)
        assert kernel.policy.runnable_count() == 0
        assert kernel.policy.compensation.outstanding() == 0

    def test_draw_stats_exposed(self):
        kernel = make_lottery_kernel()
        kernel.spawn(spin_body(), "a", tickets=10)
        kernel.run_until(1000)
        assert kernel.policy.draw_stats().draws > 0
