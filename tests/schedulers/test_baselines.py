"""Tests for the baseline scheduling policies."""

import pytest

from repro.core.tickets import Ledger
from repro.errors import SchedulerError
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.schedulers.fair_share import FairSharePolicy
from repro.schedulers.priority import FixedPriorityPolicy
from repro.schedulers.round_robin import RoundRobinPolicy
from repro.schedulers.stride import StridePolicy
from repro.schedulers.timesharing import TimesharingPolicy
from repro.sim.engine import Engine
from tests.conftest import spin_body


def make_kernel(policy, quantum=100.0):
    engine = Engine()
    ledger = Ledger()
    return Kernel(engine, policy, ledger=ledger, quantum=quantum)


class TestRoundRobin:
    def test_equal_shares_regardless_of_tickets(self):
        kernel = make_kernel(RoundRobinPolicy())
        a = kernel.spawn(spin_body(), "a", tickets=1000)
        b = kernel.spawn(spin_body(), "b", tickets=1)
        kernel.run_until(100_000)
        assert a.cpu_time == pytest.approx(b.cpu_time, rel=0.01)

    def test_strict_rotation(self):
        kernel = make_kernel(RoundRobinPolicy())
        order = []

        def tracker(name):
            def body(ctx):
                while True:
                    yield Compute(100.0)
                    order.append(name)

            return body

        kernel.spawn(tracker("a"), "a")
        kernel.spawn(tracker("b"), "b")
        kernel.spawn(tracker("c"), "c")
        kernel.run_until(1200)
        # (A thread's post-compute statement runs at its *next* dispatch,
        # so the log lags by one round; the rotation itself is strict.)
        assert order[:9] == ["a", "b", "c"] * 3

    def test_double_enqueue_rejected(self):
        policy = RoundRobinPolicy()
        kernel = make_kernel(policy)
        thread = kernel.spawn(spin_body(), "t", start=False)
        policy.enqueue(thread)
        with pytest.raises(SchedulerError):
            policy.enqueue(thread)

    def test_dequeue_unknown_rejected(self):
        policy = RoundRobinPolicy()
        kernel = make_kernel(policy)
        thread = kernel.spawn(spin_body(), "t", start=False)
        with pytest.raises(SchedulerError):
            policy.dequeue(thread)

    def test_empty_select_returns_none(self):
        assert RoundRobinPolicy().select() is None


class TestFixedPriority:
    def test_higher_priority_monopolizes(self):
        kernel = make_kernel(FixedPriorityPolicy())
        high = kernel.spawn(spin_body(), "high", priority=10)
        low = kernel.spawn(spin_body(), "low", priority=1)
        kernel.run_until(50_000)
        assert high.cpu_time == pytest.approx(50_000)
        assert low.cpu_time == 0.0  # absolute starvation

    def test_equal_priority_round_robin(self):
        kernel = make_kernel(FixedPriorityPolicy())
        a = kernel.spawn(spin_body(), "a", priority=5)
        b = kernel.spawn(spin_body(), "b", priority=5)
        kernel.run_until(10_000)
        assert a.cpu_time == pytest.approx(b.cpu_time, rel=0.05)

    def test_low_runs_when_high_blocks(self):
        kernel = make_kernel(FixedPriorityPolicy())

        def intermittent(ctx):
            while True:
                yield Compute(10.0)
                yield Sleep(90.0)

        kernel.spawn(intermittent, "high", priority=10)
        low = kernel.spawn(spin_body(), "low", priority=1)
        kernel.run_until(10_000)
        assert low.cpu_time > 8000

    def test_runnable_count(self):
        policy = FixedPriorityPolicy()
        kernel = make_kernel(policy)
        kernel.spawn(spin_body(), "a", priority=1)
        kernel.spawn(spin_body(), "b", priority=2)
        assert policy.runnable_count() == 2


class TestTimesharing:
    def test_equal_loads_share_equally(self):
        kernel = make_kernel(TimesharingPolicy())
        a = kernel.spawn(spin_body(), "a")
        b = kernel.spawn(spin_body(), "b")
        kernel.run_until(100_000)
        assert a.cpu_time == pytest.approx(b.cpu_time, rel=0.05)

    def test_interactive_thread_gets_priority_boost(self):
        # A thread that sleeps accumulates little usage, so its decayed
        # priority stays high and its scheduling latency stays low.
        kernel = make_kernel(TimesharingPolicy())
        latencies = []

        def interactive(ctx):
            while True:
                yield Sleep(400.0)
                start = ctx.now
                yield Compute(10.0)
                latencies.append(ctx.now - start - 10.0)

        kernel.spawn(spin_body(), "hog1")
        kernel.spawn(spin_body(), "hog2")
        kernel.spawn(interactive, "ui")
        kernel.run_until(100_000)
        # The interactive thread must not wait many quanta on average.
        assert sum(latencies) / len(latencies) < 150.0

    def test_decay_sweeps_run(self):
        policy = TimesharingPolicy(decay_period=500.0)
        kernel = make_kernel(policy)
        kernel.spawn(spin_body(), "t")
        kernel.run_until(5000)
        assert policy.decay_sweeps >= 9

    def test_no_ticket_proportionality(self):
        # The §5.6 baseline ignores tickets entirely.
        kernel = make_kernel(TimesharingPolicy())
        a = kernel.spawn(spin_body(), "a", tickets=900)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(100_000)
        assert a.cpu_time == pytest.approx(b.cpu_time, rel=0.1)

    def test_parameter_validation(self):
        with pytest.raises(SchedulerError):
            TimesharingPolicy(decay_period=0)
        with pytest.raises(SchedulerError):
            TimesharingPolicy(decay=1.5)


class TestFairShare:
    def test_groups_converge_to_shares(self):
        policy = FairSharePolicy(adjust_period=1000.0)
        kernel = make_kernel(policy)
        policy.set_share("research", 3.0)
        policy.set_share("admin", 1.0)
        threads = []
        for index in range(2):
            thread = kernel.spawn(spin_body(), f"r{index}", start=False)
            policy.assign(thread, "research")
            kernel.start_thread(thread)
            threads.append(thread)
        admin = kernel.spawn(spin_body(), "a0", start=False)
        policy.assign(admin, "admin")
        kernel.start_thread(admin)
        kernel.run_until(300_000)
        research_cpu = sum(t.cpu_time for t in threads)
        ratio = research_cpu / admin.cpu_time
        # Coarse convergence over minutes (the paper's critique): the
        # 3:1 share is honoured within a generous tolerance.
        assert ratio == pytest.approx(3.0, rel=0.25)

    def test_unassigned_threads_get_default_group(self):
        policy = FairSharePolicy()
        kernel = make_kernel(policy)
        thread = kernel.spawn(spin_body(), "stray")
        kernel.run_until(5000)
        assert thread.cpu_time > 0

    def test_share_validation(self):
        policy = FairSharePolicy()
        with pytest.raises(SchedulerError):
            policy.set_share("g", 0.0)
        kernel = make_kernel(policy)
        thread = kernel.spawn(spin_body(), "t", start=False)
        with pytest.raises(SchedulerError):
            policy.assign(thread, "nonexistent")


class TestStride:
    def test_exact_proportions_deterministically(self):
        kernel = make_kernel(StridePolicy())
        a = kernel.spawn(spin_body(), "a", tickets=300)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(100_000)
        # Stride is deterministic: 3:1 within one quantum of error.
        assert abs(a.cpu_time - 75_000) <= 200.0
        assert abs(b.cpu_time - 25_000) <= 200.0

    def test_three_way_deterministic(self):
        kernel = make_kernel(StridePolicy())
        threads = {
            name: kernel.spawn(spin_body(), name, tickets=amount)
            for name, amount in (("a", 500), ("b", 300), ("c", 200))
        }
        kernel.run_until(100_000)
        assert abs(threads["a"].cpu_time - 50_000) <= 300
        assert abs(threads["b"].cpu_time - 30_000) <= 300
        assert abs(threads["c"].cpu_time - 20_000) <= 300

    def test_blocked_thread_does_not_bank_credit(self):
        # A thread that sleeps must not later monopolize the CPU to
        # "catch up" past service it never queued for.
        kernel = make_kernel(StridePolicy())

        def sleeper(ctx):
            yield Sleep(50_000.0)
            while True:
                yield Compute(100.0)

        spinner = kernel.spawn(spin_body(), "spin", tickets=100)
        napper = kernel.spawn(sleeper, "nap", tickets=100)
        kernel.run_until(100_000)
        # After waking at 50 s, the napper gets ~50% of the second half,
        # not 100% of it.
        assert napper.cpu_time == pytest.approx(25_000, rel=0.1)
        assert spinner.cpu_time == pytest.approx(75_000, rel=0.1)

    def test_unfunded_thread_defaults_to_one_ticket(self):
        kernel = make_kernel(StridePolicy())
        funded = kernel.spawn(spin_body(), "funded", tickets=99)
        poor = kernel.spawn(spin_body(), "poor")
        kernel.run_until(100_000)
        assert funded.cpu_time / poor.cpu_time == pytest.approx(99, rel=0.1)
