"""Finer-grained behavioural tests for the scheduling policies."""

import pytest

from repro.core.tickets import Ledger
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Compute, Sleep
from repro.schedulers.fair_share import FairSharePolicy
from repro.schedulers.stride import STRIDE1, StridePolicy
from repro.schedulers.timesharing import TimesharingPolicy
from repro.sim.engine import Engine
from tests.conftest import spin_body


def make_kernel(policy, quantum=100.0):
    return Kernel(Engine(), policy, ledger=Ledger(), quantum=quantum)


class TestTimesharingDetails:
    def test_effective_priority_decreases_with_usage(self):
        policy = TimesharingPolicy(usage_weight=0.01)
        kernel = make_kernel(policy)
        hog = kernel.spawn(spin_body(), "hog")
        idle = kernel.spawn(spin_body(), "idle", start=False)
        kernel.run_until(2_000)
        assert (policy.effective_priority(hog)
                < policy.effective_priority(idle))

    def test_decay_restores_priority(self):
        policy = TimesharingPolicy(decay_period=500.0, decay=0.5,
                                   usage_weight=0.01)
        kernel = make_kernel(policy)
        thread = kernel.spawn(spin_body(), "t", start=False)
        # Charge heavy usage by hand, then let only the decay sweeps run.
        policy.enqueue(thread)
        policy.quantum_end(thread, used=1_000.0, quantum=100.0,
                           still_runnable=True)
        worn = policy.effective_priority(thread)
        policy.dequeue(thread)
        kernel.engine.run(until=6_000)
        assert policy.effective_priority(thread) > worn
        assert policy.decay_sweeps >= 11

    def test_base_priority_respected(self):
        policy = TimesharingPolicy(usage_weight=1e-6)
        kernel = make_kernel(policy)
        high = kernel.spawn(spin_body(), "high", priority=5)
        low = kernel.spawn(spin_body(), "low", priority=0)
        kernel.run_until(5_000)
        # With negligible usage penalty, base priority dominates.
        assert high.cpu_time > 4 * low.cpu_time


class TestStrideDetails:
    def test_stride_constant(self):
        assert STRIDE1 == float(1 << 20)

    def test_three_one_interleave_pattern(self):
        """Stride's signature: a 3:1 allocation produces the regular
        A A B A / A A B A ... dispatch pattern, not bursts."""
        policy = StridePolicy()
        kernel = make_kernel(policy)
        order = []
        original_select = policy.select

        def logging_select():
            thread = original_select()
            if thread is not None:
                order.append(thread.name)
            return thread

        policy.select = logging_select
        kernel.spawn(spin_body(100.0), "a", tickets=300)
        kernel.spawn(spin_body(100.0), "b", tickets=100)
        kernel.run_until(4_000)
        window = order[4:40]
        # b never runs twice in any window of four consecutive quanta.
        for i in range(len(window) - 3):
            assert window[i:i + 4].count("b") <= 1
        assert order.count("a") == pytest.approx(3 * order.count("b"),
                                                 abs=3)

    def test_rejoin_after_block_keeps_relative_position(self):
        policy = StridePolicy()
        kernel = make_kernel(policy)

        def blinker(ctx):
            while True:
                yield Compute(100.0)
                yield Sleep(100.0)

        spinner = kernel.spawn(spin_body(100.0), "spin", tickets=100)
        blink = kernel.spawn(blinker, "blink", tickets=100)
        kernel.run_until(60_000)
        # The blinker asks for at most 50% duty; with equal tickets it
        # gets close to what it asks for, and never more than that.
        assert blink.cpu_time <= 30_100
        assert blink.cpu_time > 20_000
        assert spinner.cpu_time + blink.cpu_time == pytest.approx(60_000,
                                                                  rel=1e-6)


class TestFairShareDetails:
    def test_two_groups_with_uneven_membership(self):
        policy = FairSharePolicy(adjust_period=500.0)
        kernel = make_kernel(policy)
        policy.set_share("big", 1.0)
        policy.set_share("small", 1.0)
        big_threads = []
        for i in range(3):
            thread = kernel.spawn(spin_body(), f"big{i}", start=False)
            policy.assign(thread, "big")
            kernel.start_thread(thread)
            big_threads.append(thread)
        solo = kernel.spawn(spin_body(), "solo", start=False)
        policy.assign(solo, "small")
        kernel.start_thread(solo)
        kernel.run_until(200_000)
        big_total = sum(t.cpu_time for t in big_threads)
        # Equal group shares: the 3-thread group and the 1-thread group
        # each get ~half the machine (per-USER fairness, the [Kay88]
        # property plain priority schemes lack).
        assert big_total == pytest.approx(solo.cpu_time, rel=0.15)

    def test_adjustments_counted(self):
        policy = FairSharePolicy(adjust_period=250.0)
        kernel = make_kernel(policy)
        kernel.spawn(spin_body(), "t")
        kernel.run_until(5_000)
        assert policy.adjustments >= 19
