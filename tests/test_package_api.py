"""Tests for the top-level package API and error hierarchy."""

import pytest

import repro
from repro import simulate_shares
from repro.errors import (
    CurrencyCycleError,
    CurrencyError,
    EmptyLotteryError,
    ExperimentError,
    InsufficientTicketsError,
    IpcError,
    KernelError,
    ReproError,
    SchedulerError,
    SimulationError,
    ThreadStateError,
    TicketError,
)


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_core_types_reachable_from_top_level(self):
        machine_parts = (repro.Engine, repro.Ledger, repro.Kernel,
                         repro.LotteryPolicy, repro.ParkMillerPRNG)
        for part in machine_parts:
            assert callable(part)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            TicketError,
            CurrencyError,
            CurrencyCycleError,
            InsufficientTicketsError,
            EmptyLotteryError,
            KernelError,
            ThreadStateError,
            IpcError,
            SimulationError,
            SchedulerError,
            ExperimentError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_specializations(self):
        assert issubclass(CurrencyCycleError, CurrencyError)
        assert issubclass(InsufficientTicketsError, TicketError)
        assert issubclass(ThreadStateError, KernelError)
        assert issubclass(IpcError, KernelError)


class TestSimulateShares:
    def test_shares_sum_to_one(self):
        shares = simulate_shares({"a": 1, "b": 2, "c": 3},
                                 duration_ms=30_000, seed=5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shares_track_tickets(self):
        shares = simulate_shares({"big": 300, "small": 100},
                                 duration_ms=120_000, seed=9)
        assert shares["big"] == pytest.approx(0.75, abs=0.06)

    def test_single_client_gets_everything(self):
        shares = simulate_shares({"only": 7}, duration_ms=5_000)
        assert shares == {"only": 1.0}

    def test_deterministic_per_seed(self):
        first = simulate_shares({"a": 2, "b": 1}, duration_ms=20_000,
                                seed=77)
        second = simulate_shares({"a": 2, "b": 1}, duration_ms=20_000,
                                 seed=77)
        assert first == second

    def test_custom_quantum(self):
        shares = simulate_shares({"a": 2, "b": 1}, duration_ms=30_000,
                                 quantum_ms=10.0, seed=3)
        # Finer quanta: tighter convergence to 2/3 over the same time.
        assert shares["a"] == pytest.approx(2 / 3, abs=0.03)
