"""Property-based tests on whole-kernel invariants.

Hypothesis generates random ticket allocations, quanta, and workload
mixes; the properties are the paper's global guarantees: CPU-time
conservation, proportional sharing within statistical bounds, exact
determinism for fixed seeds, and stride's deterministic error bound.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tickets import Ledger
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Compute, Sleep, YieldCPU
from repro.schedulers.stride import StridePolicy
from repro.sim.engine import Engine
from tests.conftest import make_lottery_kernel, spin_body

allocations = st.lists(
    st.integers(min_value=1, max_value=50), min_size=2, max_size=6
)
seeds = st.integers(min_value=1, max_value=2**31 - 2)


def make_stride_kernel(quantum=100.0):
    engine = Engine()
    ledger = Ledger()
    return Kernel(engine, StridePolicy(), ledger=ledger, quantum=quantum)


class TestConservation:
    @given(allocations, seeds)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cpu_time_conserved_under_full_load(self, tickets, seed):
        """With always-runnable threads, delivered CPU == elapsed time,
        no matter the allocation or seed."""
        kernel = make_lottery_kernel(seed=seed)
        threads = [
            kernel.spawn(spin_body(50.0), f"t{i}", tickets=float(amount))
            for i, amount in enumerate(tickets)
        ]
        horizon = 20_000.0
        kernel.run_until(horizon)
        total = sum(t.cpu_time for t in threads)
        assert math.isclose(total, horizon, rel_tol=1e-9)

    @given(allocations, seeds)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mixed_workload_never_overcommits(self, tickets, seed):
        """CPU handed out never exceeds elapsed time, even with
        blocking/yielding threads leaving the CPU idle."""
        kernel = make_lottery_kernel(seed=seed)

        def mixed(period):
            def body(ctx):
                while True:
                    yield Compute(period)
                    yield Sleep(period)
                    yield Compute(period / 2)
                    yield YieldCPU()

            return body

        threads = [
            kernel.spawn(mixed(10.0 + 7 * i), f"m{i}", tickets=float(amount))
            for i, amount in enumerate(tickets)
        ]
        horizon = 15_000.0
        kernel.run_until(horizon)
        total = sum(t.cpu_time for t in threads)
        assert total <= horizon + 1e-6


class TestProportionality:
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
        seeds,
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_two_thread_shares_within_binomial_bounds(self, a, b, seed):
        """Observed shares stay within ~4 sigma of the binomial law."""
        kernel = make_lottery_kernel(seed=seed)
        thread_a = kernel.spawn(spin_body(100.0), "a", tickets=float(a * 10))
        kernel.spawn(spin_body(100.0), "b", tickets=float(b * 10))
        lotteries = 1500
        kernel.run_until(lotteries * 100.0)
        p = a / (a + b)
        expected = lotteries * p
        sigma = math.sqrt(lotteries * p * (1 - p))
        observed_quanta = thread_a.cpu_time / 100.0
        assert abs(observed_quanta - expected) < 4 * sigma + 2

    @given(allocations)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stride_error_bounded_by_constant(self, tickets):
        """Stride scheduling: every thread within a few quanta of its
        exact entitlement, independent of horizon."""
        kernel = make_stride_kernel()
        threads = [
            kernel.spawn(spin_body(100.0), f"s{i}", tickets=float(amount))
            for i, amount in enumerate(tickets)
        ]
        horizon = 50_000.0
        kernel.run_until(horizon)
        total_tickets = sum(tickets)
        for thread, amount in zip(threads, tickets):
            entitled = horizon * amount / total_tickets
            assert abs(thread.cpu_time - entitled) <= 100.0 * (
                len(tickets) + 1
            )


class TestDeterminism:
    @given(allocations, seeds)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_identical_runs_identical_cpu(self, tickets, seed):
        def run_once():
            kernel = make_lottery_kernel(seed=seed)
            threads = [
                kernel.spawn(spin_body(30.0), f"t{i}", tickets=float(amount))
                for i, amount in enumerate(tickets)
            ]
            kernel.run_until(5_000.0)
            return [t.cpu_time for t in threads]

        assert run_once() == run_once()
