"""Tests for the counting semaphore."""

import pytest

from repro.errors import KernelError
from repro.kernel.syscalls import Compute, SemaphoreDown, SemaphoreUp
from repro.sync.semaphore import Semaphore
from tests.conftest import make_lottery_kernel


class TestSemaphore:
    def test_initial_value_consumed_without_blocking(self):
        kernel = make_lottery_kernel()
        sem = Semaphore(kernel, value=2)
        progress = []

        def body(ctx):
            yield SemaphoreDown(sem)
            yield SemaphoreDown(sem)
            progress.append("through")
            yield Compute(1.0)

        kernel.spawn(body, "t", tickets=10)
        kernel.run_until(1000)
        assert progress == ["through"]
        assert sem.value == 0

    def test_down_blocks_until_up(self):
        kernel = make_lottery_kernel()
        sem = Semaphore(kernel)
        times = []

        def consumer(ctx):
            yield SemaphoreDown(sem)
            times.append(ctx.now)

        def producer(ctx):
            yield Compute(250.0)
            yield SemaphoreUp(sem)

        kernel.spawn(consumer, "c", tickets=10)
        kernel.spawn(producer, "p", tickets=10)
        kernel.run_until(1000)
        assert times and times[0] >= 250.0

    def test_negative_initial_value_rejected(self):
        kernel = make_lottery_kernel()
        with pytest.raises(KernelError):
            Semaphore(kernel, value=-1)

    def test_bounded_buffer_pattern(self):
        kernel = make_lottery_kernel(seed=5)
        items = Semaphore(kernel, value=0, name="items")
        slots = Semaphore(kernel, value=3, name="slots")
        buffer = []
        consumed = []

        def producer(ctx):
            for i in range(10):
                yield SemaphoreDown(slots)
                yield Compute(5.0)
                buffer.append(i)
                yield SemaphoreUp(items)

        def consumer(ctx):
            for _ in range(10):
                yield SemaphoreDown(items)
                yield Compute(10.0)
                consumed.append(buffer.pop(0))
                yield SemaphoreUp(slots)

        kernel.spawn(producer, "prod", tickets=10)
        kernel.spawn(consumer, "cons", tickets=10)
        kernel.run_until(100_000)
        assert consumed == list(range(10))

    def test_fifo_wakeups_by_default(self):
        # Round-robin scheduling makes blocking order deterministic.
        from repro.core.tickets import Ledger
        from repro.kernel.kernel import Kernel
        from repro.schedulers.round_robin import RoundRobinPolicy
        from repro.sim.engine import Engine

        kernel = Kernel(Engine(), RoundRobinPolicy(), ledger=Ledger(),
                        quantum=100.0)
        sem = Semaphore(kernel)
        woken = []

        def waiter(name):
            def body(ctx):
                yield Compute(1.0)
                yield SemaphoreDown(sem)
                woken.append(name)

            return body

        def poster(ctx):
            yield Compute(500.0)
            for _ in range(3):
                yield SemaphoreUp(sem)

        kernel.spawn(waiter("w0"), "w0")
        kernel.spawn(waiter("w1"), "w1")
        kernel.spawn(waiter("w2"), "w2")
        kernel.spawn(poster, "post")
        kernel.run_until(10_000)
        assert woken == ["w0", "w1", "w2"]

    def test_lottery_wakeup_prefers_funded(self):
        kernel = make_lottery_kernel(seed=13)
        from repro.core.prng import ParkMillerPRNG

        sem = Semaphore(kernel, lottery_wakeup=True,
                        prng=ParkMillerPRNG(14))
        first_woken = []

        def waiter(name, delay, tickets):
            def body(ctx):
                yield Compute(delay)
                yield SemaphoreDown(sem)
                if not first_woken:
                    first_woken.append(name)

            return body

        def poster(ctx):
            yield Compute(500.0)
            yield SemaphoreUp(sem)

        # Run many independent trials via distinct kernels would be
        # expensive; instead give one waiter overwhelming funding so the
        # lottery outcome is near-certain.
        kernel.spawn(waiter("poor", 1.0, 1), "poor", tickets=1)
        kernel.spawn(waiter("rich", 2.0, 100000), "rich", tickets=100_000)
        kernel.spawn(poster, "post", tickets=10)
        kernel.run_until(10_000)
        assert first_woken == ["rich"]

    def test_counters(self):
        kernel = make_lottery_kernel()
        sem = Semaphore(kernel, value=1)

        def body(ctx):
            yield SemaphoreDown(sem)
            yield Compute(1.0)
            yield SemaphoreUp(sem)

        kernel.spawn(body, "t", tickets=10)
        kernel.run_until(100)
        assert sem.downs == 1
        assert sem.ups == 1
        assert sem.waiting() == 0
