"""Tests for condition variables over simulated mutexes."""


from repro.errors import KernelError
from repro.kernel.syscalls import (
    AcquireMutex,
    BroadcastCondition,
    Compute,
    ReleaseMutex,
    SignalCondition,
    WaitCondition,
)
from repro.sync.condition import Condition
from repro.sync.mutex import LotteryMutex, Mutex
from tests.conftest import make_lottery_kernel


class TestConditionBasics:
    def test_wait_requires_mutex_ownership(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        cond = Condition(kernel, mutex)
        errors = []

        def body(ctx):
            try:
                cond.wait(ctx.thread)
            except KernelError as exc:
                errors.append(exc)
            yield Compute(1.0)

        kernel.spawn(body, "t", tickets=10)
        kernel.run_until(100)
        assert errors

    def test_signal_with_no_waiters_is_noop(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        cond = Condition(kernel, mutex)
        cond.signal()
        assert cond.signals == 1

    def test_wait_releases_mutex_and_reacquires_on_signal(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        cond = Condition(kernel, mutex)
        log = []

        def waiter(ctx):
            yield AcquireMutex(mutex)
            log.append(("wait-start", mutex.owner is ctx.thread))
            yield WaitCondition(cond)
            log.append(("woken-holding", mutex.owner is ctx.thread))
            yield ReleaseMutex(mutex)

        def signaller(ctx):
            yield Compute(50.0)
            yield AcquireMutex(mutex)  # must succeed: waiter released it
            log.append(("signaller-got-lock", True))
            yield SignalCondition(cond)
            yield ReleaseMutex(mutex)

        kernel.spawn(waiter, "w", tickets=10)
        kernel.spawn(signaller, "s", tickets=10)
        kernel.run_until(10_000)
        assert ("wait-start", True) in log
        assert ("signaller-got-lock", True) in log
        assert ("woken-holding", True) in log

    def test_broadcast_wakes_everyone(self):
        kernel = make_lottery_kernel(seed=3)
        mutex = Mutex(kernel, "m")
        cond = Condition(kernel, mutex)
        woken = []

        def waiter(name):
            def body(ctx):
                yield AcquireMutex(mutex)
                yield WaitCondition(cond)
                woken.append(name)
                yield ReleaseMutex(mutex)

            return body

        def broadcaster(ctx):
            yield Compute(100.0)
            yield BroadcastCondition(cond)

        for i in range(4):
            kernel.spawn(waiter(f"w{i}"), f"w{i}", tickets=10)
        kernel.spawn(broadcaster, "b", tickets=10)
        kernel.run_until(10_000)
        assert sorted(woken) == ["w0", "w1", "w2", "w3"]

    def test_signal_wakes_exactly_one(self):
        kernel = make_lottery_kernel(seed=5)
        mutex = Mutex(kernel, "m")
        cond = Condition(kernel, mutex)
        woken = []

        def waiter(name):
            def body(ctx):
                yield AcquireMutex(mutex)
                yield WaitCondition(cond)
                woken.append(name)
                yield ReleaseMutex(mutex)

            return body

        def signaller(ctx):
            yield Compute(100.0)
            yield SignalCondition(cond)
            yield Compute(500.0)

        kernel.spawn(waiter("w0"), "w0", tickets=10)
        kernel.spawn(waiter("w1"), "w1", tickets=10)
        kernel.spawn(signaller, "s", tickets=10)
        kernel.run_until(10_000)
        assert len(woken) == 1
        assert cond.waiting() == 1

    def test_works_over_lottery_mutex(self):
        kernel = make_lottery_kernel(seed=7)
        mutex = LotteryMutex(kernel, "lm")
        cond = Condition(kernel, mutex)
        done = []

        def waiter(ctx):
            yield AcquireMutex(mutex)
            yield WaitCondition(cond)
            done.append(ctx.now)
            yield ReleaseMutex(mutex)

        def signaller(ctx):
            yield Compute(100.0)
            yield SignalCondition(cond)

        kernel.spawn(waiter, "w", tickets=100)
        kernel.spawn(signaller, "s", tickets=100)
        kernel.run_until(10_000)
        assert done
        assert mutex.owner is None
