"""Tests for standard and lottery-scheduled mutexes (paper section 6.1)."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.errors import KernelError
from repro.kernel.syscalls import AcquireMutex, Compute, ReleaseMutex
from repro.sync.mutex import LotteryMutex, Mutex
from repro.workloads.synthetic import MutexContender
from tests.conftest import make_lottery_kernel


def hold_loop(mutex, hold_ms=30.0, gap_ms=70.0, seed=1):
    contender = MutexContender("c", mutex, hold_ms=hold_ms,
                               compute_ms=gap_ms, seed=seed)
    return contender.body


class TestStandardMutex:
    def test_uncontended_acquire_release(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        done = []

        def body(ctx):
            yield AcquireMutex(mutex)
            yield Compute(10.0)
            yield ReleaseMutex(mutex)
            done.append(ctx.now)

        kernel.spawn(body, "t", tickets=10)
        kernel.run_until(1000)
        assert done
        assert not mutex.locked

    def test_mutual_exclusion(self):
        kernel = make_lottery_kernel(seed=7)
        mutex = Mutex(kernel, "m")
        active = []
        overlaps = []

        def body(name):
            def gen(ctx):
                for _ in range(5):
                    yield AcquireMutex(mutex)
                    if active:
                        overlaps.append((name, list(active)))
                    active.append(name)
                    yield Compute(30.0)
                    active.remove(name)
                    yield ReleaseMutex(mutex)
                    yield Compute(20.0)

            return gen

        for i in range(4):
            kernel.spawn(body(f"t{i}"), f"t{i}", tickets=10)
        kernel.run_until(60_000)
        assert overlaps == []

    def test_fifo_wakeup_order(self):
        # Round-robin scheduling makes the blocking order deterministic
        # (spawn order), so the FIFO wake order is checkable exactly.
        from repro.core.tickets import Ledger
        from repro.kernel.kernel import Kernel
        from repro.schedulers.round_robin import RoundRobinPolicy
        from repro.sim.engine import Engine

        kernel = Kernel(Engine(), RoundRobinPolicy(), ledger=Ledger(),
                        quantum=100.0)
        mutex = Mutex(kernel, "m")
        grants = []

        def holder(ctx):
            yield AcquireMutex(mutex)
            yield Compute(500.0)
            yield ReleaseMutex(mutex)

        def waiter(name):
            def gen(ctx):
                yield Compute(1.0)
                yield AcquireMutex(mutex)
                grants.append(name)
                yield ReleaseMutex(mutex)

            return gen

        kernel.spawn(holder, "holder")
        for i in range(3):
            kernel.spawn(waiter(f"w{i}"), f"w{i}")
        kernel.run_until(10_000)
        assert grants == ["w0", "w1", "w2"]

    def test_release_without_ownership_rejected(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        thread = kernel.spawn(lambda ctx: iter(()), "t", start=False)
        with pytest.raises(KernelError):
            mutex.release(thread)

    def test_recursive_acquire_rejected(self):
        kernel = make_lottery_kernel()
        mutex = Mutex(kernel, "m")
        errors = []

        def body(ctx):
            yield AcquireMutex(mutex)
            try:
                mutex.acquire(ctx.thread)
            except KernelError as exc:
                errors.append(exc)
            yield ReleaseMutex(mutex)

        kernel.spawn(body, "t", tickets=10)
        kernel.run_until(1000)
        assert errors

    def test_statistics(self):
        kernel = make_lottery_kernel(seed=3)
        mutex = Mutex(kernel, "m")
        thread = kernel.spawn(hold_loop(mutex), "c", tickets=10)
        kernel.run_until(50_000)
        assert mutex.acquisitions[thread.tid] > 100
        assert mutex.held_time > 0
        assert mutex.total_acquisitions() == mutex.acquisitions[thread.tid]


class TestLotteryMutex:
    def test_creates_currency_and_inheritance_ticket(self):
        kernel = make_lottery_kernel()
        mutex = LotteryMutex(kernel, "biglock")
        assert kernel.ledger.currency("mutex:biglock") is mutex.currency
        assert mutex.inheritance_ticket.currency is mutex.currency

    def test_owner_inherits_waiter_funding(self):
        kernel = make_lottery_kernel(seed=21)
        mutex = LotteryMutex(kernel, "lock")
        inherited = []

        def poor_holder(ctx):
            yield AcquireMutex(mutex)
            yield Compute(300.0)
            inherited.append(ctx.thread.nominal_funding())
            yield Compute(300.0)
            yield ReleaseMutex(mutex)

        def rich_waiter(ctx):
            yield Compute(50.0)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        kernel.spawn(poor_holder, "poor", tickets=10)
        kernel.spawn(rich_waiter, "rich", tickets=990)
        kernel.run_until(10_000)
        # While rich waits, poor's effective funding includes the
        # transferred 990 (plus its own 10): priority inversion solved.
        assert inherited and inherited[0] == pytest.approx(1000, rel=0.01)

    def test_inheritance_ticket_moves_to_next_owner(self):
        kernel = make_lottery_kernel(seed=23)
        mutex = LotteryMutex(kernel, "lock")
        owners = []

        def contender(name):
            def gen(ctx):
                yield Compute(float(len(owners)) + 1.0)
                yield AcquireMutex(mutex)
                owners.append(
                    (name, mutex.inheritance_ticket.target is ctx.thread)
                )
                yield Compute(50.0)
                yield ReleaseMutex(mutex)

            return gen

        kernel.spawn(contender("a"), "a", tickets=100)
        kernel.spawn(contender("b"), "b", tickets=100)
        kernel.run_until(10_000)
        assert len(owners) == 2
        assert all(held for _, held in owners)
        assert mutex.inheritance_ticket.target is None  # released at end

    def test_waiter_funding_captured_before_transfer(self):
        kernel = make_lottery_kernel(seed=29)
        mutex = LotteryMutex(kernel, "lock")

        def holder(ctx):
            yield AcquireMutex(mutex)
            yield Compute(400.0)
            yield ReleaseMutex(mutex)

        def waiter(ctx):
            yield Compute(10.0)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        # Spawn the holder alone and let it take the lock before the
        # waiter exists, so the block order is deterministic.
        kernel.spawn(holder, "h", tickets=50)
        kernel.run_until(50)
        assert mutex.locked
        waiter_thread = kernel.spawn(waiter, "w", tickets=700)
        kernel.run_until(350)  # waiter dispatched, computes 10, blocks
        assert mutex._waiters
        assert mutex._waiters[0].funding == pytest.approx(700)
        kernel.run_until(10_000)
        assert mutex.waiting_times[waiter_thread.tid][0] > 0

    def test_acquisition_ratio_tracks_funding(self):
        # A compact version of Figure 11: 2:1 funding -> ~2:1 rates.
        kernel = make_lottery_kernel(seed=61)
        mutex = LotteryMutex(kernel, "lock", prng=ParkMillerPRNG(62))
        rich_threads, poor_threads = [], []
        for i in range(2):
            contender = MutexContender(f"rich{i}", mutex, hold_ms=50,
                                       compute_ms=50, seed=100 + i)
            rich_threads.append(
                kernel.spawn(contender.body, f"rich{i}", tickets=200)
            )
        for i in range(2):
            contender = MutexContender(f"poor{i}", mutex, hold_ms=50,
                                       compute_ms=50, seed=200 + i)
            poor_threads.append(
                kernel.spawn(contender.body, f"poor{i}", tickets=100)
            )
        kernel.run_until(240_000)
        rich = sum(mutex.acquisitions.get(t.tid, 0) for t in rich_threads)
        poor = sum(mutex.acquisitions.get(t.tid, 0) for t in poor_threads)
        assert rich / poor == pytest.approx(2.0, rel=0.3)

    def test_single_waiter_skips_lottery(self):
        kernel = make_lottery_kernel(seed=67)
        mutex = LotteryMutex(kernel, "lock")

        def holder(ctx):
            yield AcquireMutex(mutex)
            yield Compute(200.0)
            yield ReleaseMutex(mutex)

        def waiter(ctx):
            yield Compute(10.0)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        kernel.spawn(holder, "h", tickets=100)
        kernel.spawn(waiter, "w", tickets=100)
        kernel.run_until(10_000)
        assert mutex.total_acquisitions() == 2
