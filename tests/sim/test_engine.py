"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError


class TestScheduling:
    def test_call_after_advances_clock(self, engine):
        fired = []
        engine.call_after(25.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [25.0]
        assert engine.now == 25.0

    def test_call_at_absolute(self, engine):
        fired = []
        engine.call_at(10.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [10.0]

    def test_call_soon_runs_at_current_time(self, engine):
        fired = []
        engine.call_after(5.0, lambda: engine.call_soon(
            lambda: fired.append(engine.now)))
        engine.run()
        assert fired == [5.0]

    def test_past_scheduling_rejected(self, engine):
        engine.call_after(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_after(-1.0, lambda: None)

    def test_cancel(self, engine):
        fired = []
        event = engine.call_after(5.0, lambda: fired.append("x"))
        engine.cancel(event)
        engine.run()
        assert fired == []


class TestRun:
    def test_run_until_horizon(self, engine):
        fired = []
        for t in (10.0, 20.0, 30.0):
            engine.call_at(t, lambda t=t: fired.append(t))
        engine.run(until=20.0)
        assert fired == [10.0, 20.0]
        assert engine.now == 20.0
        engine.run()
        assert fired == [10.0, 20.0, 30.0]

    def test_run_until_advances_clock_to_horizon(self, engine):
        engine.call_at(5.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_chained_events(self, engine):
        fired = []

        def tick(n):
            fired.append((engine.now, n))
            if n > 0:
                engine.call_after(10.0, lambda: tick(n - 1))

        engine.call_soon(lambda: tick(3))
        engine.run()
        assert fired == [(0.0, 3), (10.0, 2), (20.0, 1), (30.0, 0)]

    def test_max_events_guard(self, engine):
        def forever():
            engine.call_soon(forever)

        engine.call_soon(forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_not_reentrant(self, engine):
        def nested():
            engine.run()

        engine.call_soon(nested)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_processed_counter(self, engine):
        for t in range(5):
            engine.call_at(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_pending(self, engine):
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        assert engine.pending() == 2
        engine.run(until=1.0)
        assert engine.pending() == 1

    def test_same_time_events_fire_in_schedule_order(self, engine):
        fired = []
        for i in range(20):
            engine.call_at(42.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == list(range(20))
