"""Tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import MS, SECONDS, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(50.0).now == 50.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)

    def test_advance_forward(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_backwards_rejected(self):
        clock = VirtualClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_tiny_backwards_tolerated(self):
        # Floating-point slop within 1e-9 must not crash the engine.
        clock = VirtualClock(10.0)
        clock.advance_to(10.0 - 1e-12)
        assert clock.now == 10.0

    def test_units(self):
        assert SECONDS == 1000 * MS
