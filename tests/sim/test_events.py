"""Tests for the event queue: ordering, cancellation, bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        # Events at one instant fire in schedule order (determinism).
        queue = EventQueue()
        order = []
        for i in range(10):
            queue.push(5.0, lambda i=i: order.append(i))
        while queue.pop() is not None:
            pass
        events = EventQueue()
        for i in range(10):
            events.push(5.0, lambda i=i: order.append(i))
        event = events.pop()
        first_seq = event.seq
        event2 = events.pop()
        assert event2.seq > first_seq

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, label="keep")
        drop = queue.push(0.5, lambda: None, label="drop")
        queue.cancel(drop)
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_cancel_is_idempotent_for_len(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue

    def test_len_counts_live_events(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(5)]
        assert len(queue) == 5
        queue.cancel(events[2])
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3

    def test_labels_preserved(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="dispatch")
        assert event.label == "dispatch"
