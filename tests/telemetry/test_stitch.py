"""Trace stitching: per-core span dumps -> one canonical Chrome trace."""

from __future__ import annotations

import json

from repro.telemetry.exporters import validate_chrome_trace
from repro.telemetry.stitch import (
    STITCH_FORMAT,
    STITCH_VERSION,
    stitch_trace,
    stitched_chrome,
)


def _span(sid, name, start, end, track="sched", category="kernel",
          parent=None, attrs=None):
    return {"sid": sid, "parent": parent, "track": track, "name": name,
            "category": category, "start": start, "end": end,
            "attrs": attrs or {}}


def _dump(core, spans=(), open_spans=()):
    return {"core": core, "spans": list(spans),
            "open_spans": list(open_spans)}


def test_stitched_trace_is_valid_chrome_json():
    dumps = [
        _dump(0, [_span(0, "epoch", 0.0, 500.0, track="shard0",
                        category="shard")]),
        _dump(1, [_span(0, "epoch", 0.0, 500.0, track="shard1",
                        category="shard")]),
    ]
    text = stitched_chrome(dumps, barriers=[{"time": 500.0,
                                             "payloads": 1}])
    validate_chrome_trace(text)  # raises on malformed events
    payload = json.loads(text)
    assert payload["metadata"]["format"] == STITCH_FORMAT
    assert payload["metadata"]["version"] == STITCH_VERSION
    assert payload["metadata"]["cores"] == 2


def test_span_ids_are_remapped_globally_with_parents():
    """Local sids collide across cores; the stitch reassigns them on
    the canonical (start, core, sid) order and remaps parent links."""
    dumps = [
        _dump(0, [_span(7, "outer", 0.0, 400.0),
                  _span(8, "inner", 100.0, 200.0, parent=7)]),
        _dump(1, [_span(7, "other", 50.0, 300.0)]),
    ]
    payload = json.loads(stitched_chrome(dumps))
    by_name = {e["name"]: e for e in payload["traceEvents"]
               if e["ph"] == "X"}
    # canonical order: outer@0/core0 -> 0, other@50/core1 -> 1,
    # inner@100/core0 -> 2.
    assert by_name["outer"]["args"]["sid"] == 0
    assert by_name["other"]["args"]["sid"] == 1
    assert by_name["inner"]["args"]["sid"] == 2
    assert by_name["inner"]["args"]["parent"] == 0
    assert by_name["outer"]["args"]["parent"] is None


def test_tx_rx_instants_become_flow_events():
    """A matching (src, seq) tx/rx pair renders as a Chrome flow
    arrow: ph 's' at the emission, ph 'f' at the application."""
    tx = _span(0, "shard.tx.ipc", 500.0, None, track="barrier",
               category="shard", attrs={"src": 0, "seq": 3})
    tx["end"] = 500.0
    rx = _span(0, "shard.rx.ipc", 500.0, None, track="barrier",
               category="shard", attrs={"src": 0, "seq": 3})
    rx["end"] = 500.0
    payload = json.loads(stitched_chrome([_dump(0, [tx]),
                                          _dump(1, [rx])]))
    flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
    assert [e["ph"] for e in flows] == ["s", "f"]
    start, finish = flows
    assert start["id"] == finish["id"]
    assert start["pid"] == 1 and finish["pid"] == 2  # core0 -> core1
    assert start["name"] == finish["name"] == "shard.flow.ipc"
    validate_chrome_trace(json.dumps(payload))


def test_unmatched_tx_produces_no_flow():
    tx = _span(0, "shard.tx.ipc", 500.0, 500.0, category="shard",
               attrs={"src": 0, "seq": 9})
    payload = json.loads(stitched_chrome([_dump(0, [tx])]))
    assert not [e for e in payload["traceEvents"]
                if e["ph"] in ("s", "f")]


def test_open_spans_are_clamped_and_flagged_not_finalized():
    dumps = [_dump(0, open_spans=[_span(0, "epoch", 1500.0, None)])]
    payload = json.loads(stitched_chrome(dumps, end_time=2000.0))
    event = next(e for e in payload["traceEvents"] if e["ph"] == "X")
    assert event["dur"] == 500.0 * 1000.0
    assert event["args"]["stitch_open"] is True


def test_recovery_events_live_in_a_separate_annex():
    dumps = [_dump(0, [_span(0, "epoch", 0.0, 500.0)])]
    bare = json.loads(stitched_chrome(dumps))
    supervised = json.loads(stitched_chrome(dumps, recovery=[
        {"kind": "worker.restart", "time": 0.5, "shard": 0},
    ]))
    # host fate differs; the canonical digest must not.
    assert (supervised["metadata"]["sha256"]
            == bare["metadata"]["sha256"])
    assert (supervised["metadata"]["recovery_sha256"]
            != bare["metadata"]["recovery_sha256"])
    annex = [e for e in supervised["traceEvents"]
             if e.get("cat") == "recovery"]
    assert len(annex) == 1
    assert annex[0]["name"] == "shard.worker.restart"
    # recovery gets its own Chrome process, after all core pids.
    assert annex[0]["pid"] == 2


def test_slo_alerts_render_on_the_global_track():
    dumps = [_dump(0, [_span(0, "epoch", 0.0, 500.0)])]
    payload = json.loads(stitched_chrome(dumps, alerts=[
        {"rule": "fairness.drift", "time": 500.0, "subject": "hog",
         "value": 1.2, "bound": 0.9},
    ]))
    alert = next(e for e in payload["traceEvents"]
                 if e.get("cat") == "slo")
    assert alert["pid"] == 0  # run-global process
    assert alert["name"] == "slo.fairness.drift"
    assert alert["args"]["subject"] == "hog"


def test_stitching_is_deterministic_and_order_insensitive():
    dumps = [
        _dump(1, [_span(0, "b", 50.0, 300.0)]),
        _dump(0, [_span(0, "a", 0.0, 400.0)]),
    ]
    first = stitched_chrome(dumps)
    second = stitched_chrome(list(reversed(dumps)))
    assert first == second
