"""Deterministic SLO watchdogs: fairness drift, p99 ceiling, starvation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.telemetry.slo import SloEvaluator, SloPolicy, evaluate_slo


def _thread(tid, name, tickets, cpu_ms, dispatches, runnable=True,
            alive=True):
    return {"name": name, "tid": tid, "alive": alive,
            "state": "runnable" if runnable else "blocked",
            "runnable": runnable, "tickets": float(tickets),
            "cpu_ms": float(cpu_ms), "dispatches": dispatches}


def _slice(seq, time, frames, kind="epoch"):
    return {"seq": seq, "time": time, "kind": kind, "payloads": 0,
            "frames": frames}


def _series(per_slice_threads, metrics_per_slice=None):
    """Build slices from per-slice thread lists (single core 0)."""
    slices = []
    for index, threads in enumerate(per_slice_threads):
        metrics = (metrics_per_slice[index] if metrics_per_slice
                   else {})
        frame = {"core": 0, "time": (index + 1) * 500.0,
                 "metrics": metrics, "threads": threads}
        slices.append(_slice(index, (index + 1) * 500.0, [frame]))
    return slices


# -- policy validation ---------------------------------------------------------

def test_policy_rejects_nonsense():
    with pytest.raises(ReproError):
        SloPolicy(fairness_rel_error_max=0.0)
    with pytest.raises(ReproError):
        SloPolicy(p99_ceiling_ms=-1.0)
    with pytest.raises(ReproError):
        SloPolicy(fairness_window=0)
    with pytest.raises(ReproError):
        SloPolicy(min_samples=0)
    with pytest.raises(ReproError):
        SloPolicy(fairness_min_expected_dispatches=-1.0)


# -- fairness drift ------------------------------------------------------------

def _fairness_series(hog_cpu_per_slice):
    """Two equally funded threads; the hog takes ``hog_cpu_per_slice``
    of every 500ms slice, the victim the rest (both stay runnable)."""
    slices = []
    for index in range(5):  # window 4 -> judged at index 4 only
        t = index + 1
        slices.append(_thread(1, "hog", 100, hog_cpu_per_slice * t,
                              40 * t))
        slices.append(_thread(2, "victim", 100,
                              (500.0 - hog_cpu_per_slice) * t, 40 * t))
    return _series([[slices[2 * i], slices[2 * i + 1]]
                    for i in range(5)])


def test_fairness_over_use_breaches():
    # hog: entitlement 0.5, usage 1.0 -> rel over-use 1.0 > 0.9.
    verdict = evaluate_slo(_fairness_series(500.0))
    assert not verdict["ok"]
    assert verdict["counts"] == {"fairness.drift": 1}
    breach = verdict["breaches"][0]
    assert breach["subject"] == "hog" and breach["core"] == 0
    assert breach["value"] == pytest.approx(1.0)
    assert breach["bound"] == pytest.approx(0.9)


def test_fairness_under_use_is_not_graded():
    """The victim of the hog under-uses by the same margin but is not
    flagged -- barrier snapshots cannot tell blocking from denial, so
    only over-use (an isolation violation) breaches."""
    verdict = evaluate_slo(_fairness_series(500.0))
    assert all(b["subject"] != "victim" for b in verdict["breaches"])


def test_fairness_proportional_usage_passes():
    verdict = evaluate_slo(_fairness_series(250.0))
    assert verdict["ok"] and verdict["checks"] > 0


def test_fairness_skips_statistically_meaningless_windows():
    """Below ``fairness_min_expected_dispatches`` a verdict would
    grade lottery noise; the window is skipped, not judged."""
    slices = _fairness_series(500.0)
    policy = SloPolicy(fairness_min_expected_dispatches=1_000_000.0)
    verdict = evaluate_slo(slices, policy)
    assert verdict["ok"]


def test_fairness_needs_competition():
    """A thread alone on its core cannot drift against anyone."""
    slices = _series([[_thread(1, "solo", 100, 500.0 * (i + 1),
                               40 * (i + 1))]
                      for i in range(5)])
    verdict = evaluate_slo(slices)
    assert verdict["ok"]


# -- latency ceiling -----------------------------------------------------------

def _latency_series(bin_start, bin_end, per_slice=30):
    """Cumulative per-band histogram growing by ``per_slice`` samples
    in one bin every slice."""
    name = 'repro_wake_to_dispatch_ms{share="0-5%"}'
    metrics = []
    for index in range(5):
        count = per_slice * (index + 1)
        metrics.append({name: {
            "kind": "histogram", "count": count,
            "mean": (bin_start + bin_end) / 2.0,
            "bins": [[bin_start, bin_end, count]],
        }})
    return _series([[ _thread(1, "t", 100, 500.0 * (i + 1), 40 * (i + 1))]
                    for i in range(5)], metrics)


def test_latency_p99_breaches_above_ceiling():
    verdict = evaluate_slo(_latency_series(2400.0, 2600.0))
    assert {"rule": b["rule"] for b in verdict["breaches"]} == \
        {"rule": "latency.p99"}
    breach = verdict["breaches"][0]
    assert breach["subject"] == "0-5%"
    assert breach["value"] == 2600.0  # conservative upper bin edge


def test_latency_under_ceiling_passes():
    verdict = evaluate_slo(_latency_series(10.0, 20.0))
    assert verdict["ok"] and verdict["checks"] > 0


def test_latency_skips_thin_windows():
    verdict = evaluate_slo(_latency_series(2400.0, 2600.0, per_slice=2))
    assert verdict["ok"]  # 8 samples in the window < min_samples 20


# -- starvation ----------------------------------------------------------------

def test_starving_runnable_thread_breaches():
    slices = _series([[
        _thread(1, "busy", 100, 500.0 * (i + 1), 40 * (i + 1)),
        _thread(2, "starved", 100, 0.0, 0),
    ] for i in range(7)])  # starvation window 6 -> judged at index 6
    verdict = evaluate_slo(slices)
    assert any(b["rule"] == "starvation"
               and b["subject"] == "starved" for b in verdict["breaches"])


def test_blocked_thread_is_not_starving():
    slices = _series([[
        _thread(1, "busy", 100, 500.0 * (i + 1), 40 * (i + 1)),
        _thread(2, "sleeper", 100, 0.0, 0, runnable=False),
    ] for i in range(7)])
    verdict = evaluate_slo(slices)
    assert all(b["rule"] != "starvation" for b in verdict["breaches"])


# -- determinism ---------------------------------------------------------------

def test_verdict_is_a_pure_function_of_the_slices():
    slices = _fairness_series(500.0)
    first = SloEvaluator().evaluate(slices)
    second = SloEvaluator().evaluate(json.loads(json.dumps(slices)))
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
    assert first["policy"]["fairness_window"] == 4  # policy is recorded
