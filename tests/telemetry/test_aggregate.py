"""Barrier-mediated metric aggregation: frames -> one global registry."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.telemetry.aggregate import (
    FRAME_FORMAT,
    FRAME_VERSION,
    GlobalMetricsView,
    MergedHistogram,
    ObsAggregator,
    fairness_summary,
    merge_frames,
    percentile_from_bins,
)


def _frame(core, time=500.0, metrics=None, threads=None, shard=None):
    return {
        "format": FRAME_FORMAT, "version": FRAME_VERSION,
        "core": core, "time": time,
        "metrics": metrics or {},
        "threads": threads or [],
        "shard": shard or {},
    }


def _thread(tid, name, tickets, cpu_ms, dispatches=10, alive=True,
            runnable=True):
    return {"name": name, "tid": tid, "alive": alive,
            "state": "runnable" if runnable else "blocked",
            "runnable": runnable, "tickets": float(tickets),
            "cpu_ms": float(cpu_ms), "dispatches": dispatches}


def _counter(value):
    return {"kind": "counter", "value": float(value)}


def _hist(bins, count, mean):
    return {"kind": "histogram", "bins": bins, "count": count, "mean": mean}


# -- percentile_from_bins ------------------------------------------------------

def test_percentile_resolves_to_upper_bin_edge():
    bins = [[0.0, 10.0, 50], [10.0, 20.0, 49], [20.0, 30.0, 1]]
    assert percentile_from_bins(bins, 50) == 10.0
    assert percentile_from_bins(bins, 99) == 20.0
    assert percentile_from_bins(bins, 100) == 30.0


def test_percentile_empty_and_range_checks():
    assert percentile_from_bins([], 99) == 0.0
    with pytest.raises(ReproError, match="percentile"):
        percentile_from_bins([[0.0, 1.0, 1]], 101)


# -- merge_frames --------------------------------------------------------------

def test_counters_sum_across_cores():
    view = merge_frames([
        _frame(0, metrics={"repro_dispatches_total": _counter(7)}),
        _frame(1, metrics={"repro_dispatches_total": _counter(5)}),
    ])
    assert view.get("repro_dispatches_total").value == 12.0
    assert view.as_dict()["repro_dispatches_total"]["value"] == 12.0


def test_histograms_merge_bin_wise():
    view = merge_frames([
        _frame(0, metrics={"lat": _hist([[0.0, 10.0, 4]], 4, 5.0)}),
        _frame(1, metrics={"lat": _hist([[0.0, 10.0, 2],
                                         [10.0, 20.0, 2]], 4, 10.0)}),
    ])
    merged = view.get("lat")
    assert isinstance(merged, MergedHistogram)
    assert merged.count == 8
    assert merged.histogram.bins() == [(0.0, 10.0, 6), (10.0, 20.0, 2)]
    assert merged.mean() == pytest.approx(7.5)
    assert merged.percentile(99) == 20.0


def test_kind_conflict_across_cores_raises():
    with pytest.raises(ReproError, match="conflicting kinds"):
        merge_frames([
            _frame(0, metrics={"m": _counter(1)}),
            _frame(1, metrics={"m": _hist([[0.0, 1.0, 1]], 1, 0.5)}),
        ])


def test_merge_emits_derived_gauges():
    frames = [
        _frame(0, threads=[_thread(1, "a", 100, 600),
                           _thread(2, "b", 100, 400)],
               shard={"payloads_applied": 3, "migrations_out": 1,
                      "evacuations": 0, "casualties": 0}),
        _frame(1, threads=[_thread(1, "c", 200, 1000)],
               shard={"payloads_applied": 2, "migrations_out": 0,
                      "evacuations": 1, "casualties": 1}),
    ]
    view = merge_frames(frames)
    assert view.get("repro_obs_threads_alive").value == 3.0
    assert view.get("repro_obs_tickets_alive").value == 400.0
    assert view.get("repro_obs_cpu_ms").value == 2000.0
    assert view.get("repro_obs_shard_payloads_applied").value == 5.0
    assert view.get("repro_obs_shard_evacuations").value == 1.0
    assert view.get("repro_obs_shard_casualties").value == 1.0


def test_view_is_registry_shaped():
    view = merge_frames([_frame(0, metrics={"z": _counter(1),
                                            "a": _counter(2)})])
    names = [i.full_name for i in view.instruments()]
    assert names == sorted(names)  # canonical order for exporters
    assert len(view) == len(names)
    assert view.get("missing") is None


# -- fairness_summary ----------------------------------------------------------

def test_fairness_normalizes_within_each_core():
    """Each core runs its own lottery: a thread's entitlement is its
    share of *its core's* tickets, not of the global pool."""
    frames = [
        # core 0: 2:1 tickets, cpu exactly proportional -> no error.
        _frame(0, threads=[_thread(1, "a", 200, 800),
                           _thread(2, "b", 100, 400)]),
        # core 1: single thread owns everything -> no error either,
        # even though globally it has 1/4 of tickets and 1/2 of cpu.
        _frame(1, threads=[_thread(1, "c", 100, 1200)]),
    ]
    summary = fairness_summary(frames)
    assert summary["max_abs_error"] == pytest.approx(0.0)
    assert summary["max_rel_error"] == pytest.approx(0.0)
    assert summary["tickets_total"] == 400.0  # globals stay global
    assert summary["cpu_ms_total"] == 2400.0
    assert summary["alive"] == 3 and summary["funded"] == 3


def test_fairness_flags_disproportion():
    frames = [_frame(0, threads=[_thread(1, "hog", 100, 900),
                                 _thread(2, "victim", 100, 100)])]
    summary = fairness_summary(frames)
    # entitlement 0.5 each; hog used 0.9 -> abs error 0.4, rel 0.8.
    assert summary["max_abs_error"] == pytest.approx(0.4)
    assert summary["max_rel_error"] == pytest.approx(0.8)
    rows = {t["name"]: t for t in summary["threads"]}
    assert rows["hog"]["usage"] == pytest.approx(0.9)
    assert rows["victim"]["entitlement"] == pytest.approx(0.5)


def test_fairness_ignores_dead_threads_for_entitlement():
    frames = [_frame(0, threads=[
        _thread(1, "alive", 100, 500),
        _thread(2, "dead", 900, 500, alive=False),
    ])]
    summary = fairness_summary(frames)
    assert summary["alive"] == 1
    assert summary["tickets_total"] == 100.0
    # dead thread's cpu still counts toward the core's consumed cpu.
    assert summary["cpu_ms_total"] == 1000.0


# -- ObsAggregator -------------------------------------------------------------

def test_aggregator_orders_frames_and_replaces_same_time_slice():
    agg = ObsAggregator()
    agg.observe(500.0, [_frame(1), _frame(0)], payloads=2)
    assert [f["core"] for f in agg.latest_frames()] == [0, 1]
    assert len(agg) == 1

    # a stop-point re-observation at the same instant replaces, so
    # supervisor replay keeps observation idempotent.
    agg.observe(500.0, [_frame(0), _frame(1)], payloads=2, kind="stop")
    assert len(agg) == 1
    assert agg.slices[0]["kind"] == "stop"


def test_aggregator_barrier_instants_skip_stop_slices():
    agg = ObsAggregator()
    agg.observe(500.0, [_frame(0)], payloads=3)
    agg.observe(750.0, [_frame(0, time=750.0)], kind="stop")
    assert agg.barrier_instants() == [{"time": 500.0, "payloads": 3}]


def test_aggregator_empty_observe_is_a_noop():
    agg = ObsAggregator()
    agg.observe(500.0, [])
    assert len(agg) == 0 and agg.latest_frames() == []
    assert isinstance(agg.merged_metrics(), GlobalMetricsView)


def test_aggregator_rings_view():
    agg = ObsAggregator()
    frame = _frame(0)
    frame["ring"] = {"entries": [{"t": 1}], "spans": []}
    agg.observe(500.0, [frame])
    rings = agg.rings()
    assert rings == [{"core": 0, "time": 500.0,
                      "ring": {"entries": [{"t": 1}], "spans": []}}]
