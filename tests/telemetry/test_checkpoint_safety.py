"""Telemetry across checkpoint save/restore: hooks, seams, regression."""

from repro.checkpoint import build_recipe
from repro.checkpoint.capture import save
from repro.checkpoint.restore import restore
from repro.telemetry import Telemetry, hooks


class TestCheckpointHooks:
    def test_save_and_restore_emit_spans_when_observing(self, tmp_path):
        handle = build_recipe("chaos-fairness", {"seed": 2718})
        handle.advance(10_000.0)
        hub = Telemetry()
        hub.observe_checkpoints()
        try:
            path = str(tmp_path / "chaos.ckpt")
            payload = save(handle, path)
            restored, _ = restore(path)
        finally:
            hub.close()
        names = [s.name for s in hub.tracer.spans]
        assert names == ["checkpoint.save", "checkpoint.restore"]
        checksums = {s.attrs["checksum"] for s in hub.tracer.spans}
        assert checksums == {payload["checksum"]}
        assert all(s.track == "checkpoint" for s in hub.tracer.spans)
        assert all(s.start == 10_000.0 for s in hub.tracer.spans)
        assert restored.now == handle.now

    def test_no_subscriber_is_a_silent_noop(self, tmp_path):
        assert hooks.subscribers() == []
        handle = build_recipe("lottery-mix", {"seed": 5})
        handle.advance(1_000.0)
        save(handle, str(tmp_path / "plain.ckpt"))  # must not raise

    def test_unsubscribe_stops_notifications(self, tmp_path):
        handle = build_recipe("lottery-mix", {"seed": 5})
        handle.advance(1_000.0)
        hub = Telemetry()
        hub.observe_checkpoints()
        hub.close()
        save(handle, str(tmp_path / "after.ckpt"))
        assert hub.tracer.spans == []


class TestRestoreThenTrace:
    def test_restored_handle_can_be_instrumented(self, tmp_path):
        handle = build_recipe("chaos-fairness", {"seed": 2718})
        handle.advance(20_000.0)
        path = str(tmp_path / "mid.ckpt")
        save(handle, path)

        restored, _ = restore(path)
        hub = Telemetry().instrument_handle(restored)
        restored.advance(40_000.0)
        hub.finalize(restored.now)
        counts = hub.tracer.counts()
        assert counts.get(("kernel", "quantum"), 0) > 0
        assert counts.get(("scheduler", "lottery.draw"), 0) > 0
        hub.close()

    def test_traced_restore_matches_traced_original(self, tmp_path):
        """Restoring at T and tracing to T2 sees the same scheduling
        events as a fresh run traced over the same window."""
        handle = build_recipe("chaos-fairness", {"seed": 2718})
        handle.advance(15_000.0)
        path = str(tmp_path / "replaytrace.ckpt")
        save(handle, path)

        fresh = build_recipe("chaos-fairness", {"seed": 2718})
        fresh.advance(15_000.0)
        hub_fresh = Telemetry().instrument_handle(fresh)
        fresh.advance(30_000.0)
        hub_fresh.finalize(fresh.now)
        fresh_counts = hub_fresh.tracer.counts()
        hub_fresh.close()

        restored, _ = restore(path)
        hub_restored = Telemetry().instrument_handle(restored)
        restored.advance(30_000.0)
        hub_restored.finalize(restored.now)

        assert hub_restored.tracer.counts() == fresh_counts
        hub_restored.close()


class TestSnapshotSeams:
    def test_hub_snapshot_state_covers_tracer_and_registry(self):
        hub = Telemetry(max_spans=128)
        hub.tracer.event("k", "e", "kernel", 1.0)
        hub.registry.counter("c").inc()
        state = hub.snapshot_state()
        assert state["tracer"]["completed"] == 1
        assert state["tracer"]["max_spans"] == 128
        assert state["registry"]["instruments"]["c"]["value"] == 1.0
        assert state["probes"] == 0
