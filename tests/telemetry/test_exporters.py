"""Exporters: round-trips, checksums, and byte-identical determinism."""

import json

import pytest

from repro.checkpoint.registry import build_recipe
from repro.errors import ReproError
from repro.telemetry import (
    Telemetry,
    export_chrome,
    export_jsonl,
    export_prometheus,
    parse_chrome,
    parse_jsonl,
    sha256_text,
    validate_chrome_trace,
    write_checksummed,
)
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanTracer


def _sample_tracer():
    tracer = SpanTracer()
    quantum = tracer.begin("node0", "quantum", "kernel", 0.0,
                           {"thread": "w0"})
    tracer.event("node0", "lottery.draw", "scheduler", 0.0,
                 {"winner": "w0", "funding": 100.0})
    tracer.end(quantum, 20.0, {"outcome": "preempt"})
    tracer.complete("node0", "ipc.rpc", "ipc", 3.0, 33.0, {"port": "db"})
    return tracer


def _sample_registry():
    registry = MetricRegistry()
    registry.counter("repro_dispatches_total", {"track": "node0"},
                     help="dispatches").inc(3)
    registry.gauge("repro_depth").set(2.0)
    histogram = registry.histogram("repro_latency_ms", 5.0,
                                   help="latency")
    for value in (1.0, 2.0, 7.0, 12.0):
        histogram.record(value)
    return registry


class TestJsonl:
    def test_round_trip_spans_and_metrics(self):
        tracer, registry = _sample_tracer(), _sample_registry()
        text = export_jsonl(tracer, registry)
        spans, metrics = parse_jsonl(text)
        assert spans == tracer.spans
        assert metrics == registry.as_dict()

    def test_checksum_footer_detects_tampering(self):
        text = export_jsonl(_sample_tracer())
        tampered = text.replace('"quantum"', '"quantuX"')
        with pytest.raises(ReproError, match="checksum mismatch"):
            parse_jsonl(tampered)

    def test_rejects_foreign_stream(self):
        with pytest.raises(ReproError, match="not a"):
            parse_jsonl('{"kind":"header","format":"something-else"}\n{}')


class TestChrome:
    def test_round_trip_preserves_span_tree(self):
        tracer = _sample_tracer()
        spans = parse_chrome(export_chrome(tracer))
        assert spans == sorted(tracer.spans, key=lambda s: s.sid)

    def test_schema_valid(self):
        assert validate_chrome_trace(export_chrome(_sample_tracer())) == []

    def test_validator_flags_problems(self):
        bad = json.dumps({"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "q", "ts": 0.0,
             "dur": -5.0},
            {"ph": "?", "pid": 0, "tid": 0, "name": "x", "ts": 0.0},
            {"ph": "i", "pid": 0, "tid": 0, "name": "e", "ts": 0.0,
             "s": "q"},
        ]})
        problems = validate_chrome_trace(bad)
        assert any("negative dur" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("scope" in p for p in problems)

    def test_checksum_detects_tampering(self):
        text = export_chrome(_sample_tracer())
        tampered = text.replace('"quantum"', '"quantuX"')
        with pytest.raises(ReproError, match="checksum mismatch"):
            parse_chrome(tampered)

    def test_timestamps_are_microseconds(self):
        payload = json.loads(export_chrome(_sample_tracer()))
        quantum = next(e for e in payload["traceEvents"]
                       if e.get("name") == "quantum")
        assert quantum["ts"] == 0.0 and quantum["dur"] == 20_000.0


class TestPrometheus:
    def test_text_format_with_histogram_series(self):
        text = export_prometheus(_sample_registry())
        lines = text.splitlines()
        assert "# TYPE repro_dispatches_total counter" in lines
        assert 'repro_dispatches_total{track="node0"} 3' in lines
        assert "repro_depth 2" in lines
        assert 'repro_latency_ms_bucket{le="5"} 2' in lines
        assert 'repro_latency_ms_bucket{le="10"} 3' in lines
        assert 'repro_latency_ms_bucket{le="15"} 4' in lines
        assert 'repro_latency_ms_bucket{le="+Inf"} 4' in lines
        assert "repro_latency_ms_count 4" in lines

    def test_trailing_checksum_comment_matches_body(self):
        text = export_prometheus(_sample_registry())
        body, checksum_line = text.rstrip("\n").rsplit("\n", 1)
        assert checksum_line == f"# sha256 {sha256_text(body)}"


class TestFiles:
    def test_write_checksummed_sidecar(self, tmp_path):
        path = tmp_path / "out" / "trace.json"
        digest = write_checksummed(str(path), "payload\n")
        assert path.read_text() == "payload\n"
        sidecar = (tmp_path / "out" / "trace.json.sha256").read_text()
        assert sidecar == f"{digest}  trace.json\n"
        assert digest == sha256_text("payload\n")


class TestDeterminism:
    def _traced_chaos(self, seed=2718, until=30_000.0):
        handle = build_recipe("chaos-fairness", {"seed": seed})
        hub = Telemetry()
        hub.instrument_handle(handle)
        handle.advance(until)
        hub.finalize(handle.now)
        exports = (export_chrome(hub.tracer),
                   export_jsonl(hub.tracer, hub.registry),
                   export_prometheus(hub.registry))
        hub.close()
        return exports

    def test_same_seed_exports_are_byte_identical(self):
        first = self._traced_chaos()
        second = self._traced_chaos()
        assert first == second

    def test_different_seed_diverges(self):
        assert self._traced_chaos(seed=2718) != self._traced_chaos(seed=99)


class TestPrometheusSanitization:
    """Exposition-format hygiene: the registry allows dotted/spaced
    names (e.g. the supervisor's ``shard.restart`` counters), the
    exporter must emit legal Prometheus families anyway."""

    def test_dotted_names_and_spaced_labels_are_sanitized(self):
        registry = MetricRegistry()
        registry.counter("shard.restart", {"fault kind": "kill"},
                         help="worker restarts").inc(2)
        text = export_prometheus(registry)
        assert 'shard_restart{fault_kind="kill"} 2' in text
        assert "# HELP shard_restart worker restarts" in text
        assert "# TYPE shard_restart counter" in text
        assert "shard.restart" not in text

    def test_histograms_render_help_type_and_le_series(self):
        registry = MetricRegistry()
        histogram = registry.histogram("repro_latency_ms", 5.0,
                                       {"shard id": "s0"}, help="lat")
        histogram.record(7.0)
        text = export_prometheus(registry)
        assert text.count("# TYPE repro_latency_ms histogram") == 1
        assert 'repro_latency_ms_bucket{shard_id="s0",le="10"} 1' in text
        assert 'repro_latency_ms_bucket{shard_id="s0",le="+Inf"} 1' in text
        assert 'repro_latency_ms_sum{shard_id="s0"} 7' in text
        assert 'repro_latency_ms_count{shard_id="s0"} 1' in text

    def test_label_values_escape_backslash_and_newline(self):
        registry = MetricRegistry()
        registry.counter("evil", {"msg": "a\\b\nc"}).inc()
        text = export_prometheus(registry)
        assert 'evil{msg="a\\\\b\\nc"} 1' in text

    def test_every_sample_line_is_legal_exposition(self):
        import re
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? \S+$')
        registry = MetricRegistry()
        registry.counter("shard.worker restart", {"shard id": "0"}).inc()
        registry.gauge("a-b.c").set(1.0)
        registry.histogram("d e", 1.0, {"x y": "z"}).record(0.5)
        for line in export_prometheus(registry).splitlines():
            if line.startswith("#"):
                continue
            assert sample.match(line), line

    def test_sanitization_is_identity_on_legal_names(self):
        first = export_prometheus(_sample_registry())
        assert "repro_dispatches_total" in first
        assert first == export_prometheus(_sample_registry())
