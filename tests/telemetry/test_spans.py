"""SpanTracer: nesting, bounds, finalization."""

import pytest

from repro.errors import ReproError
from repro.telemetry.spans import Span, SpanTracer


class TestNesting:
    def test_child_gets_parent_sid(self):
        tracer = SpanTracer()
        outer = tracer.begin("k", "quantum", "kernel", 0.0)
        inner = tracer.event("k", "lottery.draw", "scheduler", 0.0)
        assert inner.parent == outer.sid
        tracer.end(outer, 20.0)
        assert outer.parent is None

    def test_nesting_is_per_track(self):
        tracer = SpanTracer()
        tracer.begin("a", "quantum", "kernel", 0.0)
        other = tracer.event("b", "lottery.draw", "scheduler", 0.0)
        assert other.parent is None

    def test_stack_pops_on_end(self):
        tracer = SpanTracer()
        outer = tracer.begin("k", "outer", "kernel", 0.0)
        inner = tracer.begin("k", "inner", "kernel", 1.0)
        tracer.end(inner, 2.0)
        tracer.end(outer, 3.0)
        assert tracer.open_spans() == []
        # Completion order: inner first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_complete_spans_do_not_nest(self):
        tracer = SpanTracer()
        tracer.begin("k", "quantum", "kernel", 0.0)
        rpc = tracer.complete("k", "ipc.rpc", "ipc", 5.0, 50.0)
        assert rpc.parent is None

    def test_sids_are_sequential(self):
        tracer = SpanTracer()
        sids = [tracer.event("k", "e", "kernel", float(i)).sid
                for i in range(5)]
        assert sids == [0, 1, 2, 3, 4]


class TestBounds:
    def test_drop_oldest_beyond_max(self):
        tracer = SpanTracer(max_spans=3)
        for i in range(5):
            tracer.event("k", f"e{i}", "kernel", float(i))
        assert len(tracer) == 3
        assert tracer.dropped_spans == 2
        assert [s.name for s in tracer.spans] == ["e2", "e3", "e4"]

    def test_strict_mode_raises_instead(self):
        tracer = SpanTracer(max_spans=1, strict=True)
        tracer.event("k", "e0", "kernel", 0.0)
        with pytest.raises(ReproError, match="overflow"):
            tracer.event("k", "e1", "kernel", 1.0)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ReproError):
            SpanTracer(max_spans=0)


class TestEndValidation:
    def test_negative_duration_rejected(self):
        tracer = SpanTracer()
        span = tracer.begin("k", "quantum", "kernel", 10.0)
        with pytest.raises(ReproError, match="end before it started"):
            tracer.end(span, 5.0)

    def test_double_end_rejected(self):
        tracer = SpanTracer()
        span = tracer.begin("k", "quantum", "kernel", 0.0)
        tracer.end(span, 1.0)
        with pytest.raises(ReproError, match="already ended"):
            tracer.end(span, 2.0)

    def test_complete_negative_duration_rejected(self):
        tracer = SpanTracer()
        with pytest.raises(ReproError, match="negative duration"):
            tracer.complete("k", "ipc.rpc", "ipc", 10.0, 5.0)


class TestFinalize:
    def test_finalize_closes_all_open_spans(self):
        tracer = SpanTracer()
        tracer.begin("a", "quantum", "kernel", 0.0)
        tracer.begin("a", "inner", "kernel", 5.0)
        tracer.begin("b", "quantum", "kernel", 2.0)
        closed = tracer.finalize(100.0)
        assert closed == 3
        assert tracer.open_spans() == []
        assert all(s.end == 100.0 for s in tracer.spans)
        assert all(s.attrs.get("finalized") for s in tracer.spans)


class TestSpanValue:
    def test_round_trip_dict(self):
        span = Span(sid=7, parent=2, track="k", name="quantum",
                    category="kernel", start=1.0, end=21.0,
                    attrs={"thread": "w0"})
        assert Span.from_dict(span.to_dict()) == span

    def test_duration_and_instant(self):
        tracer = SpanTracer()
        instant = tracer.event("k", "e", "kernel", 3.0)
        assert instant.instant and instant.duration == 0.0
        span = tracer.begin("k", "q", "kernel", 0.0)
        assert span.duration == 0.0  # open
        tracer.end(span, 20.0)
        assert span.duration == 20.0 and not span.instant

    def test_counts_by_category_and_name(self):
        tracer = SpanTracer()
        tracer.event("k", "a", "kernel", 0.0)
        tracer.event("k", "a", "kernel", 1.0)
        tracer.event("k", "b", "ipc", 2.0)
        assert tracer.counts() == {("kernel", "a"): 2, ("ipc", "b"): 1}

    def test_snapshot_state_summarizes(self):
        tracer = SpanTracer(max_spans=10)
        tracer.begin("k", "q", "kernel", 0.0)
        tracer.event("k", "e", "kernel", 1.0)
        state = tracer.snapshot_state()
        assert state["completed"] == 1
        assert state["open"] == {"k": 1}
        assert state["next_sid"] == 2
