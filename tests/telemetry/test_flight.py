"""Crash flight recorder: checksummed, tamper-evident debug bundles."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError, ShardError
from repro.telemetry.flight import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    build_bundle,
    load_bundle,
    summarize_bundle,
    write_bundle,
)

_RINGS = [
    {"core": 0, "time": 1000.0,
     "ring": {"entries": [{"time": 990.0, "tid": 1}],
              "spans": [{"name": "epoch"}]}},
    {"core": 1, "time": 1000.0,
     "ring": {"entries": [{"time": 985.0, "tid": 2},
                          {"time": 990.0, "tid": 2}], "spans": []}},
]


def _bundle(**overrides):
    error = ShardError("worker for shard 0 exhausted its retry budget")
    kwargs = {"plan_checksum": "abc123", "time": 1000.0,
              "rings": _RINGS,
              "metrics": {"repro_obs_cpu_ms": {"kind": "gauge",
                                               "value": 2000.0}},
              "recovery": {"degraded": False,
                           "events": [{"kind": "fault.detected",
                                       "time": 1000.0}]},
              "context": {"backend": "mp", "shards": 2}}
    kwargs.update(overrides)
    return build_bundle(error, **kwargs)


def test_bundle_digest_covers_the_whole_body():
    bundle = _bundle()
    assert bundle["format"] == BUNDLE_FORMAT
    assert bundle["version"] == BUNDLE_VERSION
    assert bundle["error"]["type"] == "ShardError"
    assert "retry budget" in bundle["error"]["message"]
    assert len(bundle["sha256"]) == 64
    # the digest is over everything except itself: any field change
    # changes it.
    assert _bundle(time=1001.0)["sha256"] != bundle["sha256"]


def test_write_load_roundtrip(tmp_path):
    bundle = _bundle()
    path = write_bundle(str(tmp_path / "flight"), bundle)
    assert f"flight-1000-{bundle['sha256'][:12]}.json" in path
    assert load_bundle(path) == bundle


def test_load_rejects_tampering(tmp_path):
    bundle = _bundle()
    path = write_bundle(str(tmp_path), bundle)
    corrupt = dict(bundle)
    corrupt["plan"] = "doctored"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(corrupt, handle)
    with pytest.raises(ReproError, match="checksum mismatch"):
        load_bundle(path)


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "not-a-bundle.json"
    path.write_text(json.dumps({"format": "something-else"}),
                    encoding="utf-8")
    with pytest.raises(ReproError, match="not a repro-flight-bundle"):
        load_bundle(str(path))


def test_summary_counts_rings_and_recovery():
    summary = summarize_bundle(_bundle())
    assert summary["error"] == "ShardError"
    assert summary["cores"] == 2
    assert summary["ring_entries"] == 3
    assert summary["ring_spans"] == 1
    assert summary["recovery_events"] == 1
    assert summary["degraded"] is False
    assert summary["plan"] == "abc123"


def test_bundle_is_reproducible_for_identical_inputs():
    assert _bundle()["sha256"] == _bundle()["sha256"]
