"""``python -m repro.telemetry report``: the observability front door."""

from __future__ import annotations

import json

import pytest

from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import HostFault, HostFaultPlan
from repro.shard.plan import mix_plan
from repro.shard.supervisor import SupervisorPolicy
from repro.telemetry.__main__ import main

_RUN = ["report", "--plan", "mix", "--cores", "4", "--until", "2000",
        "--backend", "inline", "--shards", "2"]


def test_run_mode_prints_canonical_sha_and_passes(capsys):
    code = main(_RUN + ["--quiet"])
    err = capsys.readouterr().err
    assert code == 0
    assert "canonical sha256: " in err


def test_run_mode_writes_requested_artifacts(capsys, tmp_path):
    report = tmp_path / "report.json"
    trace = tmp_path / "trace.json"
    prom = tmp_path / "metrics.prom"
    code = main(_RUN + ["--quiet", "--json", str(report),
                        "--trace", str(trace), "--prom", str(prom)])
    assert code == 0
    capsys.readouterr()
    document = json.loads(report.read_text().rsplit("\n", 2)[0])
    assert document["canonical"]["slo"]["ok"] is True
    payload = json.loads(trace.read_text().rsplit("\n", 2)[0])
    assert (document["canonical"]["trace_sha256"]
            == payload["metadata"]["sha256"])
    assert prom.read_text().startswith("#")


def test_run_mode_markdown_report(capsys):
    code = main(_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "# repro observability report" in out.lower() or "|" in out


def test_bundle_mode_summarizes_flight_bundle(capsys, tmp_path):
    flight_dir = str(tmp_path / "flight")
    fault = HostFaultPlan([HostFault("kill", shard=0, epoch=1)])
    with pytest.raises(ShardError) as excinfo:
        with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                           backend="mp", supervise=True,
                           policy=SupervisorPolicy(max_retries=0,
                                                   degrade=False),
                           host_faults=fault, obs=True,
                           flight_dir=flight_dir) as engine:
            engine.advance(2000.0)
    path = excinfo.value.flight_bundle

    code = main(["report", "--bundle", path])
    out = capsys.readouterr().out
    assert code == 0
    summary = json.loads(out)
    assert summary["error"] == "ShardError"
    assert summary["sha256"]


def test_bundle_mode_fails_on_invalid_bundle(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "nope"}), encoding="utf-8")
    assert main(["report", "--bundle", str(bad)]) == 1
    assert "nope" in capsys.readouterr().err


def test_legacy_flat_invocation_still_works(capsys):
    """The pre-existing ``python -m repro.telemetry`` surface (recipe
    tracing) must keep its contract alongside the new subcommand."""
    code = main(["--list-recipes"])
    out = capsys.readouterr().out
    assert code in (0, None)
    assert out.strip()  # it printed the recipe listing
