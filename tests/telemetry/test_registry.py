"""MetricRegistry: identity, kinds, and instrument semantics."""

import pytest

from repro.errors import ReproError
from repro.telemetry.registry import MetricRegistry, render_name


class TestIdentity:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricRegistry()
        a = registry.counter("dispatches", {"track": "node0"})
        b = registry.counter("dispatches", {"track": "node0"})
        assert a is b
        assert len(registry) == 1

    def test_labels_render_sorted(self):
        assert render_name("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        assert render_name("m") == "m"

    def test_label_order_does_not_split_identity(self):
        registry = MetricRegistry()
        a = registry.counter("m", {"x": "1", "y": "2"})
        b = registry.counter("m", {"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(ReproError, match="is a counter"):
            registry.gauge("m")
        with pytest.raises(ReproError, match="not a histogram"):
            registry.histogram("m", 5.0)

    def test_histogram_bin_width_conflict_raises(self):
        registry = MetricRegistry()
        registry.histogram("h", 5.0)
        with pytest.raises(ReproError, match="bin "):
            registry.histogram("h", 10.0)

    def test_get_does_not_create(self):
        registry = MetricRegistry()
        assert registry.get("missing") is None
        assert len(registry) == 0


class TestInstruments:
    def test_counter_is_monotonic(self):
        registry = MetricRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_histogram_delegates_to_metrics_histogram(self):
        registry = MetricRegistry()
        histogram = registry.histogram("h", 5.0)
        for value in (1.0, 6.0, 11.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean() == pytest.approx(6.0)
        assert histogram.percentile(100) == 11.0

    def test_histogram_rejects_negative_observations(self):
        registry = MetricRegistry()
        histogram = registry.histogram("h", 5.0)
        with pytest.raises(ReproError):
            histogram.record(-1.0)


class TestExportViews:
    def test_instruments_sorted_by_full_name(self):
        registry = MetricRegistry()
        registry.counter("z")
        registry.counter("a")
        registry.gauge("m", {"k": "v"})
        names = [i.full_name for i in registry.instruments()]
        assert names == sorted(names)

    def test_as_dict_snapshots(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", 5.0).record(7.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == {"kind": "counter", "value": 2.0}
        assert snapshot["h"]["kind"] == "histogram"
        assert snapshot["h"]["bins"] == [[5.0, 10.0, 1]]
