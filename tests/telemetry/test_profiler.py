"""ProfiledPolicy: transparent wrapping, attribution math, no perturbation."""

from repro.checkpoint.replay import ReplayRecorder
from repro.telemetry import ProfiledPolicy, attach_profiler
from repro.telemetry.profiler import PROFILED_OPS
from tests.conftest import make_lottery_kernel, spin_body


def _run(kernel, until=3000):
    kernel.spawn(spin_body(), "a", tickets=100)
    kernel.spawn(spin_body(), "b", tickets=300)
    kernel.run_until(until)


class TestTransparency:
    def test_dispatch_stream_unchanged_by_profiler(self):
        streams = []
        for profiled in (False, True):
            kernel = make_lottery_kernel(seed=21)
            replay = ReplayRecorder()
            kernel.attach_recorder(replay)
            if profiled:
                attach_profiler(kernel)
            _run(kernel)
            streams.append(replay.entries)
        assert streams[0] == streams[1]

    def test_wrapper_delegates_attributes(self):
        kernel = make_lottery_kernel(seed=21)
        inner = kernel.policy
        wrapper = attach_profiler(kernel)
        assert kernel.policy is wrapper
        assert wrapper.name == inner.name
        assert wrapper.uses_tickets == inner.uses_tickets
        assert wrapper.prng is inner.prng

    def test_draw_hook_reaches_inner_policy(self):
        kernel = make_lottery_kernel(seed=21)
        inner = kernel.policy
        wrapper = attach_profiler(kernel)
        seen = []

        def hook(draw):
            seen.append(draw)

        wrapper.draw_hook = hook
        assert inner.draw_hook is hook
        assert wrapper.draw_hook is hook
        _run(kernel, until=500)
        assert seen and "winner" in seen[0]


class TestReport:
    def test_counts_and_bucket_math(self):
        kernel = make_lottery_kernel(seed=21)
        wrapper = attach_profiler(kernel)
        _run(kernel)
        report = wrapper.report()
        assert report["policy"] == kernel.policy.name
        calls, us = report["calls"], report["us"]
        assert set(calls) == set(us) == set(PROFILED_OPS)
        assert calls["select"] > 0
        assert calls["enqueue"] >= 2  # the two spawned threads
        assert report["draw_us"] == us["select"]
        assert report["queue_us"] == us["enqueue"] + us["dequeue"]
        assert (report["compensation_us"]
                == us["quantum_end"] + us["thread_exited"])
        assert report["draw_us_per_select"] > 0

    def test_fresh_wrapper_reports_zero_per_select(self):
        kernel = make_lottery_kernel(seed=21)
        wrapper = ProfiledPolicy(kernel.policy)
        report = wrapper.report()
        assert report["draw_us_per_select"] == 0.0
        assert all(v == 0 for v in report["calls"].values())
