"""KernelProbe + Telemetry hub: spans from live kernels, zero perturbation."""

from repro.checkpoint.registry import build_recipe
from repro.checkpoint.replay import ReplayRecorder
from repro.kernel.ipc import Port
from repro.kernel.syscalls import Call, Compute, Receive, Reply
from repro.telemetry import Telemetry
from tests.conftest import make_lottery_kernel, spin_body


def _spans(hub, name):
    return [s for s in hub.tracer.spans if s.name == name]


class TestQuantumSpans:
    def test_one_quantum_span_per_dispatch(self):
        kernel = make_lottery_kernel(seed=7)
        hub = Telemetry()
        probe = hub.instrument_kernel(kernel)
        kernel.spawn(spin_body(), "a", tickets=100)
        kernel.spawn(spin_body(), "b", tickets=300)
        kernel.run_until(2000)
        hub.finalize(kernel.now)
        quanta = _spans(hub, "quantum")
        assert len(quanta) == probe._dispatches.value > 0
        assert all(s.category == "kernel" for s in quanta)
        assert all(s.end is not None and s.end >= s.start for s in quanta)

    def test_quantum_outcomes(self):
        kernel = make_lottery_kernel(seed=7)
        hub = Telemetry()
        hub.instrument_kernel(kernel)
        port = Port(kernel, "p")

        def blocker(ctx):
            yield Compute(10.0)
            yield Receive(port)  # blocks forever

        def finisher(ctx):
            yield Compute(10.0)

        kernel.spawn(blocker, "blocker", tickets=100)
        kernel.spawn(finisher, "finisher", tickets=100)
        kernel.spawn(spin_body(), "spinner", tickets=100)
        kernel.run_until(2000)
        hub.finalize(kernel.now)
        outcomes = {s.attrs.get("outcome") for s in _spans(hub, "quantum")}
        assert {"block", "exit", "preempt"} <= outcomes

    def test_wake_to_dispatch_latency_recorded_by_share_band(self):
        kernel = make_lottery_kernel(seed=7)
        hub = Telemetry()
        hub.instrument_kernel(kernel)
        kernel.spawn(spin_body(), "small", tickets=100)
        kernel.spawn(spin_body(), "large", tickets=900)
        kernel.run_until(5000)
        hub.finalize(kernel.now)
        latency = [i for i in hub.registry.instruments()
                   if i.full_name.startswith("repro_wake_to_dispatch_ms")]
        assert latency and sum(i.count for i in latency) > 0
        assert any('share="50-100%"' in i.full_name for i in latency)


class TestLotteryDraws:
    def test_draw_events_mirror_draw_counter(self):
        kernel = make_lottery_kernel(seed=11)
        hub = Telemetry()
        hub.instrument_kernel(kernel)
        kernel.spawn(spin_body(), "a", tickets=100)
        kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(1000)
        hub.finalize(kernel.now)
        draws = _spans(hub, "lottery.draw")
        counter = hub.registry.get('repro_lottery_draws_total{track="kernel"}')
        assert draws and counter is not None
        assert len(draws) == counter.value
        sample = draws[0].attrs
        assert sample["funding"] > 0 and sample["total"] >= sample["funding"]
        assert isinstance(sample["prng_state"], int)


class TestIpcSpans:
    def test_rpc_lifetime_becomes_a_span(self):
        kernel = make_lottery_kernel(seed=5)
        hub = Telemetry()
        hub.instrument_kernel(kernel)
        port = Port(kernel, "echo")
        replies = []

        def server(ctx):
            while True:
                request = yield Receive(port)
                yield Compute(10.0)
                yield Reply(request, f"echo:{request.message}")

        def client(ctx):
            response = yield Call(port, "ping")
            replies.append(response)

        kernel.spawn(server, "server", tickets=100)
        kernel.spawn(client, "client", tickets=100)
        kernel.run_until(5000)
        hub.finalize(kernel.now)
        assert replies == ["echo:ping"]
        calls = _spans(hub, "ipc.call")
        rpcs = _spans(hub, "ipc.rpc")
        assert len(calls) == len(rpcs) == 1
        assert rpcs[0].attrs["port"] == "echo"
        assert rpcs[0].duration >= 10.0
        assert hub.registry.get(
            'repro_ipc_replies_total{track="kernel"}').value == 1


class TestClusterAndFaults:
    def test_chaos_run_yields_migration_and_fault_spans(self):
        handle = build_recipe("chaos-fairness", {"seed": 2718})
        hub = Telemetry().instrument_handle(handle)
        handle.advance(120_000.0)
        hub.finalize(handle.now)
        counts = hub.tracer.counts()
        names = {name for _, name in counts}
        assert any(n.startswith("fault.") for n in names)
        assert "cluster.evacuate" in names or "cluster.migrate" in names
        assert ("kernel", "quantum") in counts
        tracks = hub.tracer.tracks()
        assert "kernel" not in tracks  # probes use the node names
        assert len([t for t in tracks if t.startswith("node")]) >= 2
        hub.close()


class TestNoPerturbation:
    def _dispatch_stream(self, instrument: bool):
        kernel = make_lottery_kernel(seed=42)
        replay = ReplayRecorder()
        kernel.attach_recorder(replay)
        hub = None
        if instrument:
            hub = Telemetry()
            hub.instrument_kernel(kernel)
        kernel.spawn(spin_body(), "a", tickets=100)
        kernel.spawn(spin_body(), "b", tickets=200)
        kernel.spawn(spin_body(), "c", tickets=700)
        kernel.run_until(5000)
        if hub is not None:
            hub.finalize(kernel.now)
            hub.close()
        return replay.entries

    def test_instrumentation_does_not_change_dispatch_stream(self):
        assert self._dispatch_stream(False) == self._dispatch_stream(True)


class TestDetach:
    def test_close_restores_kernel_and_policy(self):
        kernel = make_lottery_kernel(seed=3)
        assert kernel.recorder is None
        hub = Telemetry()
        hub.instrument_kernel(kernel)
        assert kernel.telemetry is hub
        assert kernel.policy.draw_hook is not None
        hub.close()
        assert kernel.recorder is None
        assert kernel.telemetry is None
        assert kernel.policy.draw_hook is None
