"""Tests for the distributed lottery scheduler extension."""

import pytest

from repro.distributed.cluster import Cluster
from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Sleep
from repro.kernel.thread import ThreadState


def spinner(chunk_ms=50.0):
    def body(ctx):
        while True:
            yield Compute(chunk_ms)

    return body


class TestClusterBasics:
    def test_nodes_share_one_clock(self):
        cluster = Cluster(nodes=3, rebalance_period=None)
        for node in cluster.nodes:
            assert node.kernel.engine is cluster.engine

    def test_validation(self):
        with pytest.raises(ReproError):
            Cluster(nodes=0)
        with pytest.raises(ReproError):
            Cluster(nodes=2, rebalance_period=0.0)

    def test_spawn_places_on_least_funded_node(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        first = cluster.spawn(spinner(), "heavy", tickets=500)
        second = cluster.spawn(spinner(), "light", tickets=100)
        assert cluster.node_of(first) is not cluster.node_of(second)

    def test_unplaced_thread_lookup_rejected(self):
        cluster = Cluster(nodes=1, rebalance_period=None)
        other = Cluster(nodes=1, rebalance_period=None)
        stray = other.spawn(spinner(), "stray", tickets=1)
        with pytest.raises(ReproError):
            cluster.node_of(stray)

    def test_nodes_run_in_parallel(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        a = cluster.spawn(spinner(), "a", tickets=100)
        b = cluster.spawn(spinner(), "b", tickets=100)
        cluster.run_until(10_000)
        # Two CPUs: both threads got (nearly) the whole 10 s each.
        assert a.cpu_time == pytest.approx(10_000, rel=0.01)
        assert b.cpu_time == pytest.approx(10_000, rel=0.01)


class TestMigration:
    def test_migrate_moves_runnable_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        moved = cluster.spawn(spinner(), "mover", tickets=100, node=node0)
        cluster.spawn(spinner(), "stayer", tickets=100, node=node0)
        cluster.run_until(50)  # let dispatching settle
        # Whichever of the two is currently runnable can migrate.
        candidate = moved if moved.state is ThreadState.RUNNABLE else None
        if candidate is None:
            candidate = next(
                t for t in node0.threads if t.state is ThreadState.RUNNABLE
            )
        assert cluster.migrate(candidate, node1)
        assert cluster.node_of(candidate) is node1
        assert candidate.kernel is node1.kernel
        cluster.run_until(10_000)
        assert candidate.cpu_time > 4000  # runs on its new node

    def test_migrate_refuses_running_and_pinned(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        pinned = cluster.spawn(spinner(), "pinned", tickets=100,
                               node=node0, pinned=True)
        cluster.run_until(50)
        assert not cluster.migrate(pinned, node1)
        running = node0.kernel.running
        if running is not None:
            assert not cluster.migrate(running, node1)

    def test_migrate_to_same_node_is_noop(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        thread = cluster.spawn(spinner(), "t", tickets=100)
        assert not cluster.migrate(thread, cluster.node_of(thread))

    def test_sleeping_thread_wakes_on_new_node(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes

        def napper(ctx):
            yield Sleep(1_000.0)
            while True:
                yield Compute(50.0)

        thread = cluster.spawn(napper, "napper", tickets=100, node=node0)
        cluster.run_until(10)
        # Blocked threads cannot migrate...
        assert not cluster.migrate(thread, node1)
        # ...but after waking (runnable) they can, and the sleep wake-up
        # found the thread on whatever kernel it belongs to.
        cluster.run_until(1_100)
        assert thread.alive


class TestRebalancing:
    def test_rebalancer_fixes_skewed_placement(self):
        skewed = Cluster(nodes=2, rebalance_period=None, seed=7)
        balanced = Cluster(nodes=2, rebalance_period=500.0, seed=7)
        for cluster in (skewed, balanced):
            node0 = cluster.nodes[0]
            for index, funding in enumerate((300.0, 300.0, 200.0, 200.0)):
                cluster.spawn(spinner(), f"t{index}", tickets=funding,
                              node=node0)
        skewed.run_until(60_000)
        balanced.run_until(60_000)
        assert balanced.migrations > 0
        assert (balanced.max_relative_error(60_000)
                < skewed.max_relative_error(60_000))
        # With 1000 tickets split 500/500, errors should be small.
        assert balanced.max_relative_error(60_000) < 0.2

    def test_balanced_cluster_stays_put(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=9)
        cluster.spawn(spinner(), "a", tickets=100)
        cluster.spawn(spinner(), "b", tickets=100)
        cluster.run_until(30_000)
        assert cluster.migrations == 0

    def test_water_filling_caps_heavy_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=11)
        heavy = cluster.spawn(spinner(), "heavy", tickets=10_000)
        light_a = cluster.spawn(spinner(), "la", tickets=100)
        light_b = cluster.spawn(spinner(), "lb", tickets=100)
        cluster.run_until(60_000)
        report = {r["thread"]: r for r in cluster.fairness_report(60_000)}
        # Heavy cannot use more than one CPU; the lights split the other.
        assert report["heavy"]["entitled_ms"] == pytest.approx(60_000)
        assert report["la"]["entitled_ms"] == pytest.approx(30_000)
        assert report["heavy"]["cpu_ms"] == pytest.approx(60_000, rel=0.02)
        assert light_a.cpu_time + light_b.cpu_time == pytest.approx(
            60_000, rel=0.02
        )
