"""Tests for the distributed lottery scheduler extension."""

import pytest

from repro.analysis.sanitizer import sanitize_ledger
from repro.distributed.cluster import Cluster
from repro.errors import ReproError
from repro.faults.retry import RetryPolicy
from repro.kernel.syscalls import Compute, Sleep
from repro.kernel.thread import ThreadState


def spinner(chunk_ms=50.0):
    def body(ctx):
        while True:
            yield Compute(chunk_ms)

    return body


class TestClusterBasics:
    def test_nodes_share_one_clock(self):
        cluster = Cluster(nodes=3, rebalance_period=None)
        for node in cluster.nodes:
            assert node.kernel.engine is cluster.engine

    def test_validation(self):
        with pytest.raises(ReproError):
            Cluster(nodes=0)
        with pytest.raises(ReproError):
            Cluster(nodes=2, rebalance_period=0.0)

    def test_spawn_places_on_least_funded_node(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        first = cluster.spawn(spinner(), "heavy", tickets=500)
        second = cluster.spawn(spinner(), "light", tickets=100)
        assert cluster.node_of(first) is not cluster.node_of(second)

    def test_unplaced_thread_lookup_rejected(self):
        cluster = Cluster(nodes=1, rebalance_period=None)
        other = Cluster(nodes=1, rebalance_period=None)
        stray = other.spawn(spinner(), "stray", tickets=1)
        with pytest.raises(ReproError):
            cluster.node_of(stray)

    def test_nodes_run_in_parallel(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        a = cluster.spawn(spinner(), "a", tickets=100)
        b = cluster.spawn(spinner(), "b", tickets=100)
        cluster.run_until(10_000)
        # Two CPUs: both threads got (nearly) the whole 10 s each.
        assert a.cpu_time == pytest.approx(10_000, rel=0.01)
        assert b.cpu_time == pytest.approx(10_000, rel=0.01)


class TestMigration:
    def test_migrate_moves_runnable_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        moved = cluster.spawn(spinner(), "mover", tickets=100, node=node0)
        cluster.spawn(spinner(), "stayer", tickets=100, node=node0)
        cluster.run_until(50)  # let dispatching settle
        # Whichever of the two is currently runnable can migrate.
        candidate = moved if moved.state is ThreadState.RUNNABLE else None
        if candidate is None:
            candidate = next(
                t for t in node0.threads if t.state is ThreadState.RUNNABLE
            )
        assert cluster.migrate(candidate, node1)
        assert cluster.node_of(candidate) is node1
        assert candidate.kernel is node1.kernel
        cluster.run_until(10_000)
        assert candidate.cpu_time > 4000  # runs on its new node

    def test_migrate_refuses_running_and_pinned(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        pinned = cluster.spawn(spinner(), "pinned", tickets=100,
                               node=node0, pinned=True)
        cluster.run_until(50)
        assert not cluster.migrate(pinned, node1)
        running = node0.kernel.running
        if running is not None:
            assert not cluster.migrate(running, node1)

    def test_migrate_to_same_node_is_noop(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        thread = cluster.spawn(spinner(), "t", tickets=100)
        assert not cluster.migrate(thread, cluster.node_of(thread))

    def test_sleeping_thread_wakes_on_new_node(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes

        def napper(ctx):
            yield Sleep(1_000.0)
            while True:
                yield Compute(50.0)

        thread = cluster.spawn(napper, "napper", tickets=100, node=node0)
        cluster.run_until(10)
        # Blocked threads cannot migrate...
        assert not cluster.migrate(thread, node1)
        # ...but after waking (runnable) they can, and the sleep wake-up
        # found the thread on whatever kernel it belongs to.
        cluster.run_until(1_100)
        assert thread.alive


class TestRebalancing:
    def test_rebalancer_fixes_skewed_placement(self):
        skewed = Cluster(nodes=2, rebalance_period=None, seed=7)
        balanced = Cluster(nodes=2, rebalance_period=500.0, seed=7)
        for cluster in (skewed, balanced):
            node0 = cluster.nodes[0]
            for index, funding in enumerate((300.0, 300.0, 200.0, 200.0)):
                cluster.spawn(spinner(), f"t{index}", tickets=funding,
                              node=node0)
        skewed.run_until(60_000)
        balanced.run_until(60_000)
        assert balanced.migrations > 0
        assert (balanced.max_relative_error(60_000)
                < skewed.max_relative_error(60_000))
        # With 1000 tickets split 500/500, errors should be small.
        assert balanced.max_relative_error(60_000) < 0.2

    def test_balanced_cluster_stays_put(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=9)
        cluster.spawn(spinner(), "a", tickets=100)
        cluster.spawn(spinner(), "b", tickets=100)
        cluster.run_until(30_000)
        assert cluster.migrations == 0

    def test_pinned_threads_never_move(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=13)
        node0 = cluster.nodes[0]
        for index in range(4):
            cluster.spawn(spinner(), f"p{index}", tickets=100.0,
                          node=node0, pinned=True)
        cluster.run_until(30_000)
        # Placement is maximally skewed, but every thread is pinned.
        assert cluster.migrations == 0
        assert all(cluster.node_of(t) is node0 for t in node0.threads)

    def test_rebalancing_disabled_with_none_period(self):
        cluster = Cluster(nodes=2, rebalance_period=None, seed=13)
        node0 = cluster.nodes[0]
        for index, funding in enumerate((300.0, 300.0, 200.0, 200.0)):
            cluster.spawn(spinner(), f"t{index}", tickets=funding, node=node0)
        cluster.run_until(30_000)
        assert cluster.migrations == 0
        assert cluster.nodes[1].threads == []

    def test_over_gap_mega_thread_does_not_oscillate(self):
        # The only candidate move (800 tickets) exceeds the funding gap;
        # moving it would overshoot and invite ping-ponging, and no swap
        # shrinks the gap either, so the rebalancer must leave it alone.
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=17)
        node0, node1 = cluster.nodes
        cluster.spawn(spinner(), "mega", tickets=800.0, node=node0)
        cluster.spawn(spinner(), "light", tickets=100.0, node=node1)
        cluster.spawn(spinner(), "tiny", tickets=50.0, node=node1)
        cluster.run_until(30_000)
        assert cluster.migrations == 0

    def test_swap_unsticks_where_single_moves_cannot(self):
        # 200+200 vs 150+150: gap is 100, every rich-node thread funds
        # >= the gap, so no single move fires -- but swapping a 200 for
        # a 150 shrinks the gap to zero.
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=19)
        node0, node1 = cluster.nodes
        for name, funding, node in (("a", 200.0, node0), ("b", 200.0, node0),
                                    ("c", 150.0, node1), ("d", 150.0, node1)):
            cluster.spawn(spinner(), name, tickets=funding, node=node)
        cluster.run_until(10_000)
        assert cluster.migrations == 2  # one swap = two coupled moves
        assert node0.total_funding() == node1.total_funding() == 350.0
        settled = cluster.migrations
        cluster.run_until(30_000)
        assert cluster.migrations == settled  # balanced: no oscillation

    def test_water_filling_caps_heavy_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0, seed=11)
        heavy = cluster.spawn(spinner(), "heavy", tickets=10_000)
        light_a = cluster.spawn(spinner(), "la", tickets=100)
        light_b = cluster.spawn(spinner(), "lb", tickets=100)
        cluster.run_until(60_000)
        report = {r["thread"]: r for r in cluster.fairness_report(60_000)}
        # Heavy cannot use more than one CPU; the lights split the other.
        assert report["heavy"]["entitled_ms"] == pytest.approx(60_000)
        assert report["la"]["entitled_ms"] == pytest.approx(30_000)
        assert report["heavy"]["cpu_ms"] == pytest.approx(60_000, rel=0.02)
        assert light_a.cpu_time + light_b.cpu_time == pytest.approx(
            60_000, rel=0.02
        )


class TestPlacementHygiene:
    def test_node_of_rejects_exited_thread_with_clear_error(self):
        cluster = Cluster(nodes=2, rebalance_period=None)

        def finite(ctx):
            yield Compute(100.0)

        thread = cluster.spawn(finite, "finite", tickets=100)
        cluster.run_until(1_000)
        assert not thread.alive
        with pytest.raises(ReproError, match="exited"):
            cluster.node_of(thread)

    def test_rebalance_tick_prunes_exited_threads(self):
        cluster = Cluster(nodes=2, rebalance_period=500.0)

        def finite(ctx):
            yield Compute(100.0)

        thread = cluster.spawn(finite, "finite", tickets=100)
        node = cluster.node_of(thread)
        cluster.spawn(spinner(), "keeper", tickets=100)
        cluster.run_until(5_000)
        assert not thread.alive
        assert thread not in node.threads
        assert thread.tid not in cluster._placement


class TestCrashRecovery:
    @staticmethod
    def napper(ctx):
        yield Sleep(120_000.0)

    def _populated(self):
        cluster = Cluster(nodes=2, rebalance_period=None, seed=23)
        node0 = cluster.nodes[0]
        threads = {
            "r1": cluster.spawn(spinner(), "r1", tickets=100, node=node0),
            "r2": cluster.spawn(spinner(), "r2", tickets=100, node=node0),
            "pinned": cluster.spawn(spinner(), "pinned", tickets=100,
                                    node=node0, pinned=True),
            "napper": cluster.spawn(self.napper, "napper", tickets=100,
                                    node=node0),
        }
        cluster.run_until(2_000)  # let the napper reach its Sleep
        assert threads["napper"].state is ThreadState.BLOCKED
        return cluster, threads

    def test_crash_evacuates_runnable_kills_pinned_and_blocked(self):
        cluster, threads = self._populated()
        node0, node1 = cluster.nodes
        cluster.crash_node(node0)
        assert not node0.alive
        assert node0.threads == []
        # Unpinned runnable threads (including the preempted runner)
        # land on the surviving node; pinned and blocked threads die.
        for name in ("r1", "r2"):
            assert threads[name].alive
            assert cluster.node_of(threads[name]) is node1
            assert threads[name].kernel is node1.kernel
        assert not threads["pinned"].alive
        assert not threads["napper"].alive
        assert cluster.evacuations == 2
        assert cluster.threads_killed == 2
        assert cluster.node_crashes == 1
        # Killed threads' tickets were reclaimed: books still balance.
        assert sanitize_ledger(cluster.ledger) == []
        # Survivors keep making progress on the surviving node.
        before = threads["r1"].cpu_time + threads["r2"].cpu_time
        cluster.run_until(10_000)
        assert threads["r1"].cpu_time + threads["r2"].cpu_time > before

    def test_crash_and_restart_state_machine(self):
        cluster, _ = self._populated()
        node0 = cluster.nodes[0]
        cluster.crash_node(node0)
        with pytest.raises(ReproError, match="already down"):
            cluster.crash_node(node0)
        with pytest.raises(ReproError, match="crashed node"):
            cluster.spawn(spinner(), "late", tickets=10, node=node0)
        cluster.restart_node(node0)
        assert node0.alive and node0.threads == []
        assert cluster.node_restarts == 1
        with pytest.raises(ReproError, match="already up"):
            cluster.restart_node(node0)

    def test_crashing_every_node_leaves_no_placement_target(self):
        cluster = Cluster(nodes=1, rebalance_period=None)
        cluster.spawn(spinner(), "only", tickets=100)
        cluster.run_until(100)
        cluster.crash_node(cluster.nodes[0])
        with pytest.raises(ReproError, match="no live node"):
            cluster.spawn(spinner(), "homeless", tickets=10)


class TestMigrationRollback:
    def test_destination_failure_mid_move_rolls_back(self, monkeypatch):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        cluster.spawn(spinner(), "mate", tickets=100, node=node0)
        mover = cluster.spawn(spinner(), "mover", tickets=100, node=node0)
        cluster.run_until(50)
        if mover.state is not ThreadState.RUNNABLE:
            mover = next(t for t in node0.threads
                         if t.state is ThreadState.RUNNABLE)

        def refuse(thread):
            raise ReproError("destination lost mid-migration")

        monkeypatch.setattr(node1.policy, "enqueue", refuse)
        assert not cluster.migrate(mover, node1)
        assert cluster.migration_rollbacks == 1
        assert cluster.migrations == 0
        # The thread is back on its source, enqueued, and schedulable.
        assert cluster.node_of(mover) is node0
        assert mover.kernel is node0.kernel
        assert mover in node0.threads
        before = mover.cpu_time
        cluster.run_until(10_000)
        assert mover.cpu_time > before
        assert sanitize_ledger(cluster.ledger) == []


class TestMigrateWithRetry:
    def test_retries_until_destination_restarts(self):
        cluster = Cluster(nodes=2, rebalance_period=None, seed=29)
        node0, node1 = cluster.nodes
        # Low tickets keep the mover off the CPU (runnable) nearly
        # always, so attempts fail only while the destination is down.
        mover = cluster.spawn(spinner(), "mover", tickets=10, node=node0)
        cluster.spawn(spinner(), "hog", tickets=1000, node=node0)
        cluster.run_until(50)
        cluster.crash_node(node1)
        state = cluster.migrate_with_retry(
            mover, node1,
            policy=RetryPolicy(max_attempts=8, base_delay_ms=130.0),
        )
        assert not state.finished  # destination is down; retrying
        cluster.engine.call_after(400.0,
                                  lambda: cluster.restart_node(node1))
        cluster.run_until(30_000)
        assert state.succeeded
        assert state.attempts > 1
        assert cluster.node_of(mover) is node1

    def test_aborts_for_pinned_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        pinned = cluster.spawn(spinner(), "pinned", tickets=100,
                               node=node0, pinned=True)
        state = cluster.migrate_with_retry(pinned, node1)
        assert state.aborted and state.attempts == 1

    def test_aborts_for_dead_thread(self):
        cluster = Cluster(nodes=2, rebalance_period=None)
        node0, node1 = cluster.nodes
        doomed = cluster.spawn(spinner(), "doomed", tickets=100, node=node0)
        cluster.run_until(50)
        node0.kernel.kill(doomed)
        state = cluster.migrate_with_retry(doomed, node1)
        assert state.aborted and not state.succeeded
