"""Property-based tests on IPC invariants under random RPC topologies."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.ipc import Port
from repro.kernel.syscalls import Call, Compute, Receive, Reply
from tests.conftest import make_lottery_kernel

topologies = st.tuples(
    st.integers(min_value=1, max_value=4),  # workers
    st.integers(min_value=1, max_value=5),  # clients
    st.integers(min_value=1, max_value=6),  # queries per client
    st.integers(min_value=1, max_value=10_000),  # seed
)


def build_rpc_system(workers, clients, queries_each, seed):
    kernel = make_lottery_kernel(seed=seed)
    port = Port(kernel, "svc")
    answered = []
    received_totals = {"count": 0}

    def worker(ctx):
        while True:
            request = yield Receive(port)
            received_totals["count"] += 1
            yield Compute(10.0)
            yield Reply(request, request.message * 2)

    for index in range(workers):
        kernel.spawn(worker, f"w{index}", tickets=1)

    def client(base):
        def body(ctx):
            for query_index in range(queries_each):
                yield Compute(1.0)
                reply = yield Call(port, base + query_index)
                answered.append((base + query_index, reply))

        return body

    for index in range(clients):
        kernel.spawn(client(index * 1000), f"c{index}",
                     tickets=100 * (index + 1))
    return kernel, port, answered, received_totals


class TestRpcConservation:
    @given(topologies)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_query_answered_exactly_once_and_correctly(self, topo):
        workers, clients, queries_each, seed = topo
        kernel, port, answered, received = build_rpc_system(
            workers, clients, queries_each, seed
        )
        kernel.run_until(600_000)
        expected = clients * queries_each
        assert len(answered) == expected
        assert received["count"] == expected
        assert port.replies_sent == expected
        assert port.calls_made == expected
        # Replies routed to the right callers with the right values.
        for query, reply in answered:
            assert reply == query * 2
        # No duplicate answers.
        assert len({q for q, _ in answered}) == expected

    @given(topologies)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_no_transfer_leaks_after_drain(self, topo):
        """Once all RPCs complete, no transfer tickets remain anywhere:
        the base currency's issue is exactly the threads' own tickets
        plus any outstanding compensation."""
        workers, clients, queries_each, seed = topo
        kernel, port, answered, _ = build_rpc_system(
            workers, clients, queries_each, seed
        )
        kernel.run_until(600_000)
        assert len(answered) == clients * queries_each
        leftovers = [
            t for t in kernel.ledger.base.issued if t.tag == "transfer"
        ]
        assert leftovers == []
        assert port.queue_depth() == 0
