"""Probe attribution and the SLO feedback loop, isolated and end-to-end."""

from __future__ import annotations

import pytest

from repro.core.tickets import Ledger
from repro.errors import ReproError
from repro.serving.slo_controller import ClassLatencyProbe, SloController
from repro.serving.stats import ServingStats


class _FakeThread:
    """Just enough surface for the probe: a name and a wake instant."""

    def __init__(self, name, runnable_since=0.0):
        self.name = name
        self.runnable_since = runnable_since


class TestClassLatencyProbe:
    def test_attributes_latency_by_thread_name(self):
        stats = ServingStats()
        probe = ClassLatencyProbe(stats)
        # Hold references: the probe caches class by id(thread), so
        # fakes must stay alive like real threads do.
        threads = [_FakeThread("fe:gold:0", 10.0),
                   _FakeThread("fe:gold:1", 20.0),
                   _FakeThread("be:0", 0.0)]
        probe.on_dispatch(threads[0], 35.0)
        probe.on_dispatch(threads[1], 30.0)
        probe.on_dispatch(threads[2], 50.0)  # not a class
        digest = probe.digest("gold")
        assert digest.count == 2
        assert digest.max_ms == 25.0
        assert stats.wake["gold"].count == 2
        assert "be" not in probe.window

    def test_watch_overrides_name_parsing(self):
        probe = ClassLatencyProbe()
        thread = _FakeThread("worker-7", 0.0)
        probe.watch(thread, "silver")
        probe.on_dispatch(thread, 12.0)
        assert probe.digest("silver").count == 1

    def test_exit_drops_the_id_cache(self):
        probe = ClassLatencyProbe()
        thread = _FakeThread("fe:gold:0", 0.0)
        probe.on_dispatch(thread, 1.0)
        probe.on_exit(thread, 2.0)
        assert id(thread) not in probe._by_tid


def _controller(target=50.0, **kwargs):
    ledger = Ledger()
    currency = ledger.create_currency("gold")
    lever = ledger.create_ticket(100.0, fund=currency, tag="lever")
    probe = ClassLatencyProbe()
    controller = SloController(probe, min_samples=5, **kwargs)
    controller.add_class("gold", target, [lever])
    return controller, probe, lever


def _feed(probe, latency, count):
    for _ in range(count):
        probe.digest("gold").record(latency)


class TestSloController:
    def test_breach_inflates_toward_the_ceiling(self):
        controller, probe, lever = _controller(target=50.0)
        _feed(probe, 200.0, 10)
        controller.control(100.0)
        assert lever.amount == pytest.approx(130.0)
        assert controller.history[-1]["action"] == "inflate"
        # Keep breaching: multiplicative growth clamps at the ceiling.
        for epoch in range(30):
            _feed(probe, 200.0, 10)
            controller.control(200.0 + epoch)
        assert lever.amount == pytest.approx(1600.0)  # 16x default ceiling

    def test_comfort_deflates_back_to_the_floor(self):
        controller, probe, lever = _controller(target=50.0)
        _feed(probe, 200.0, 10)
        controller.control(100.0)
        assert lever.amount > 100.0
        for epoch in range(40):
            _feed(probe, 1.0, 10)  # far under comfort * target
            controller.control(200.0 + epoch)
        assert lever.amount == pytest.approx(100.0)  # floor = initial
        assert "deflate" in {row["action"] for row in controller.history}

    def test_windowing_uses_only_new_samples(self):
        controller, probe, lever = _controller(target=50.0)
        _feed(probe, 200.0, 10)
        controller.control(100.0)
        inflated = lever.amount
        # No new samples: the old breach must not count twice.
        controller.control(200.0)
        assert controller.history[-1]["action"] == "idle"
        assert lever.amount == inflated

    def test_idle_below_min_samples(self):
        controller, probe, lever = _controller(target=50.0)
        _feed(probe, 200.0, 3)  # < min_samples=5
        controller.control(100.0)
        assert controller.history[-1]["action"] == "idle"
        assert lever.amount == 100.0

    def test_recovery_epoch_reads_the_history(self):
        controller, probe, _ = _controller(target=50.0)
        assert controller.recovery_epoch("gold") is None
        _feed(probe, 200.0, 10)
        controller.control(100.0)  # breach
        assert controller.recovery_epoch("gold") is None
        _feed(probe, 10.0, 10)
        controller.control(200.0)  # met target after breach
        assert controller.recovery_epoch("gold") == 2

    def test_duplicate_class_is_an_error(self):
        controller, _, _ = _controller()
        ledger = Ledger()
        lever = ledger.create_ticket(1.0, tag="x")
        with pytest.raises(ReproError, match="already registered"):
            controller.add_class("gold", 10.0, [lever])


class TestConvergenceEndToEnd:
    def test_breaching_class_recovers_within_epochs(self):
        """The ISSUE's acceptance property: under lottery at 1.5x
        overload, a class whose target is set below its natural p99
        breaches, the controller inflates its currency backing, and
        the windowed p99 recovers within a bounded number of epochs."""
        from repro.experiments.serving_tail import run_arena

        arena = run_arena("lottery", 1.5, 600, seed=2026, slo=True)
        controller = arena.controller
        recovery = controller.recovery_epoch("bronze")
        assert recovery is not None and recovery <= 12
        actions = [row["action"] for row in controller.history
                   if row["class"] == "bronze"]
        assert "inflate" in actions
        # The lever actually moved above its floor at some point.
        peak = max(row["amount_after"] for row in controller.history
                   if row["class"] == "bronze")
        assert peak > arena.controller.classes["bronze"].floor
