"""The partitioned arena: plan round-trips and cross-backend equivalence."""

from __future__ import annotations

from repro.checkpoint.statetree import tree_checksum
from repro.serving.shardplan import serving_plan
from repro.shard.engine import ShardedEngine
from repro.shard.plan import ShardPlan


class TestPlan:
    def test_plan_validates_and_round_trips_json(self):
        plan = serving_plan(seed=31, cores=2, requests_per_class=60)
        clone = ShardPlan.from_dict(plan.to_dict())
        assert clone.checksum() == plan.checksum()

    def test_per_core_arrival_seeds_are_distinct(self):
        plan = serving_plan(seed=31, cores=2, requests_per_class=60)
        seeds = [thread["args"]["seed"]
                 for core in range(plan.cores)
                 for thread in plan.threads_on(core)
                 if thread["name"].startswith("pump:")]
        assert len(seeds) == len(set(seeds)) == 6  # 3 classes x 2 cores

    def test_slo_flag_adds_a_controller_per_core(self):
        plan = serving_plan(seed=31, cores=2, requests_per_class=60,
                            slo=True)
        slo_threads = [thread["name"]
                       for core in range(plan.cores)
                       for thread in plan.threads_on(core)
                       if thread["body"] == "serving_slo"]
        assert sorted(slo_threads) == ["slo:c0", "slo:c1"]


def _checksums(backend, shards, horizon=2000.0):
    plan = serving_plan(seed=31, cores=2, requests_per_class=60, slo=True)
    with ShardedEngine(plan, shards=shards, backend=backend) as engine:
        engine.advance(horizon)
        return (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()))


class TestBackendEquivalence:
    def test_single_and_inline_agree_bit_exactly(self):
        """The acceptance criterion at small scale: the partitioned
        arena's merged event stream and final state are identical
        whether the cores run in one loop or interleaved shards."""
        assert _checksums("single", 1) == _checksums("inline", 2)

    def test_same_backend_replays_identically(self):
        assert _checksums("inline", 2) == _checksums("inline", 2)
