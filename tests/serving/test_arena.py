"""The single-kernel arena: conservation, determinism, telemetry."""

from __future__ import annotations

import pytest

from repro.checkpoint.statetree import tree_checksum
from repro.experiments.common import build_machine
from repro.serving.arena import ArenaConfig, build_arena

_QUANTUM = 20.0


def _run(policy="lottery", seed=2026, load=1.5, requests=150, **overrides):
    machine = build_machine(seed=seed, quantum=_QUANTUM, policy=policy)
    config = ArenaConfig(seed=seed, load_factor=load,
                         requests_per_class=requests, **overrides)
    arena = build_arena(machine.kernel, config)
    arena.run()
    return arena


class TestConservation:
    @pytest.mark.parametrize("policy", ["lottery", "stride", "timesharing"])
    def test_every_offered_request_is_accounted(self, policy):
        arena = _run(policy=policy)
        stats = arena.stats
        for name in stats.offered:
            offered = stats.offered[name]
            shed = stats.shed.get(name, 0)
            completed = stats.completed.get(name, 0)
            in_flight = offered - shed - completed
            assert offered == arena.config.requests_per_class
            assert in_flight >= 0  # nothing completes twice
        # Under 1.5x overload the admission door actually worked.
        assert sum(stats.shed.values()) > 0

    def test_admission_counters_match_stats(self):
        arena = _run()
        by_class = {row["class"]: row for row in arena.admission.rows()}
        for name, shed in arena.stats.shed.items():
            assert by_class[name]["shed"] == shed


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a, b = _run(seed=7), _run(seed=7)
        assert a.rows() == b.rows()
        assert tree_checksum(a.snapshot_state()) \
            == tree_checksum(b.snapshot_state())

    def test_different_seed_diverges(self):
        assert _run(seed=7).rows() != _run(seed=8).rows()


class TestShareOrdering:
    def test_lottery_orders_wake_p99_by_ticket_share(self):
        """The tentpole claim at small scale: more tickets, lower
        wake->dispatch tail, even while overloaded."""
        arena = _run(policy="lottery", requests=200)
        p99 = {name: arena.stats.wake[name].percentile(99.0)
               for name in ("gold", "silver", "bronze")}
        assert p99["gold"] <= p99["silver"] <= p99["bronze"]
        assert p99["bronze"] > p99["gold"]


class TestTelemetry:
    def test_request_completions_reach_the_hub(self):
        from repro.telemetry import Telemetry

        machine = build_machine(seed=5, quantum=_QUANTUM, policy="lottery")
        hub = Telemetry()
        hub.instrument_kernel(machine.kernel, track="serving")
        arena = build_arena(machine.kernel, ArenaConfig(
            seed=5, load_factor=0.7, requests_per_class=80))
        arena.run()
        e2e = [i for i in hub.registry.instruments()
               if i.full_name.startswith("repro_request_e2e_ms")]
        assert e2e and sum(i.count for i in e2e) \
            == sum(arena.stats.completed.values())

    def test_arena_runs_clean_without_a_hub(self):
        arena = _run(requests=50)
        assert sum(arena.stats.completed.values()) > 0


class TestHorizon:
    def test_horizon_covers_the_slowest_trace(self):
        config = ArenaConfig(load_factor=1.0, requests_per_class=100)
        slowest = max(100 / config.class_rate_per_s(spec) * 1000.0
                      for spec in config.classes)
        assert config.horizon_ms() >= slowest
