"""The serving_tail experiment: verdict logic and byte-stable reports."""

from __future__ import annotations

from repro.experiments import serving_tail


class TestOrderingPredicate:
    def test_ordered_with_spread(self):
        ordered = {"gold": 10.0, "silver": 20.0, "bronze": 40.0}
        assert serving_tail._ordered_with_spread(ordered)

    def test_inversion_fails(self):
        inverted = {"gold": 40.0, "silver": 20.0, "bronze": 10.0}
        assert not serving_tail._ordered_with_spread(inverted)

    def test_flat_tails_fail_the_spread(self):
        flat = {"gold": 15.0, "silver": 15.0, "bronze": 16.0}
        assert not serving_tail._ordered_with_spread(flat)


class TestExperiment:
    def test_quick_run_passes_and_reports_byte_identically(self):
        """Two in-process same-seed runs render the exact same bytes --
        the property the CI serving-smoke step cmp's from the shell."""
        first = serving_tail.run(quick=True, requests=80)
        second = serving_tail.run(quick=True, requests=80)
        assert first.summary["verdict"] == "PASS"
        assert serving_tail.report_text(first) \
            == serving_tail.report_text(second)

    def test_summary_separates_the_policies(self):
        result = serving_tail.run(quick=True, requests=80)
        summary = result.summary
        assert summary["lottery wake-p99 share-ordered at 1.5x"] == "yes"
        assert summary["timesharing wake-p99 share-ordered at 1.5x"] == "no"
        assert summary["slo bronze recovery epoch"] != "never"
        assert summary["sharded backends agree"] == "yes"
        # policy x load x class sweep rows are all present
        assert len(result.rows) == len(serving_tail.POLICIES) \
            * len(serving_tail.LOADS) * 3

    def test_report_embeds_shard_checksums(self):
        result = serving_tail.run(quick=True, requests=80)
        text = serving_tail.report_text(result)
        for row in result.summary["shard_rows"]:
            assert row["stream_sha"] in text
            assert row["state_sha"] in text
        assert text.endswith("\n")
