"""Statistical acceptance + bit-reproducibility of the arrival processes."""

from __future__ import annotations

import statistics

import pytest

from repro.errors import ReproError
from repro.workloads.arrivals import (ARRIVAL_KINDS, DiurnalArrivals,
                                      MMPPArrivals, PoissonArrivals,
                                      make_arrivals, replay_digest)

SEEDS = (7, 42, 2026)
RATE = 100.0  # 100/s -> mean inter-arrival 10ms


def _gaps(process, count=2000):
    instants = process.take(count)
    return [b - a for a, b in zip(instants, instants[1:])]


class TestStatisticalAcceptance:
    """Per-seed mean/CV tolerances: each process is what it claims."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_poisson_mean_and_cv(self, seed):
        gaps = _gaps(PoissonArrivals(seed, RATE))
        mean = statistics.mean(gaps)
        cv = statistics.pstdev(gaps) / mean
        assert mean == pytest.approx(1000.0 / RATE, rel=0.05)
        assert cv == pytest.approx(1.0, abs=0.1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mmpp_is_bursty_but_rate_true(self, seed):
        gaps = _gaps(MMPPArrivals(seed, RATE, burst_factor=4.0,
                                  mean_dwell_ms=1000.0))
        mean = statistics.mean(gaps)
        cv = statistics.pstdev(gaps) / mean
        # Time-averaged rate stays near the request; burstiness shows
        # as inter-arrival CV well above the Poisson baseline of 1.
        assert mean == pytest.approx(1000.0 / RATE, rel=0.25)
        assert cv > 1.1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_diurnal_mean_over_full_cycles(self, seed):
        # A short period so 3000 arrivals span several full cycles;
        # over whole cycles the thinned rate averages back to RATE.
        gaps = _gaps(DiurnalArrivals(seed, RATE, period_ms=5_000.0,
                                     amplitude=0.8), count=3000)
        mean = statistics.mean(gaps)
        cv = statistics.pstdev(gaps) / mean
        assert mean == pytest.approx(1000.0 / RATE, rel=0.1)
        assert cv > 1.1  # rate modulation adds variance over Poisson

    def test_diurnal_rate_at_tracks_the_sinusoid(self):
        process = DiurnalArrivals(1, RATE, period_ms=1000.0, amplitude=0.5)
        assert process.rate_at(0.0) == pytest.approx(RATE)
        assert process.rate_at(250.0) == pytest.approx(RATE * 1.5)
        assert process.rate_at(750.0) == pytest.approx(RATE * 0.5)


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_replays_bit_identically(self, kind, seed):
        first = make_arrivals(kind, seed, RATE).take(500)
        second = make_arrivals(kind, seed, RATE).take(500)
        assert first == second

    def test_seeds_decorrelate_streams(self):
        a = make_arrivals("poisson", 1, RATE).take(100)
        b = make_arrivals("poisson", 2, RATE).take(100)
        assert a != b

    @pytest.mark.parametrize("kind,digest", [
        ("poisson",
         "a8bae379b926158a5ea8623b7edc51fa"
         "1e432b2ae945631aa8af34b5d5e22ff5"),
        ("mmpp",
         "d3a7082c2f5c74405dee33d601bc6ebd"
         "263a0fce4fbf720bb609a5da476e3949"),
        ("diurnal",
         "4537400f25fa5af00ad1ab64a267f92f"
         "ba5badad73c83d7d1e5eac4c5edc0757"),
    ])
    def test_pinned_replay_digests(self, kind, digest):
        """The exact float sequences are pinned: any change to the
        generators (or the PRNG underneath) is a visible diff here."""
        assert replay_digest(kind, 42, RATE, 200) == digest


class TestSnapshotRestore:
    @pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
    def test_restore_resumes_the_exact_stream(self, kind):
        process = make_arrivals(kind, 42, RATE)
        process.take(123)
        state = process.snapshot_state()
        tail = process.take(200)
        fresh = make_arrivals(kind, 42, RATE)
        fresh.restore_state(state)
        assert fresh.emitted == 123
        assert fresh.take(200) == tail

    def test_snapshot_carries_kind_and_position(self):
        process = make_arrivals("mmpp", 7, RATE)
        process.take(10)
        state = process.snapshot_state()
        assert state["kind"] == "mmpp"
        assert state["emitted"] == 10
        assert state["clock_ms"] == process.clock_ms


class TestValidation:
    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ReproError, match="unknown arrival kind"):
            make_arrivals("lunar", 1, RATE)

    def test_nonpositive_rate_is_an_error(self):
        with pytest.raises(ReproError, match="rate must be positive"):
            make_arrivals("poisson", 1, 0.0)

    def test_mmpp_rejects_degenerate_burst(self):
        with pytest.raises(ReproError, match="burst factor"):
            MMPPArrivals(1, RATE, burst_factor=1.0)

    def test_diurnal_rejects_full_amplitude(self):
        with pytest.raises(ReproError, match="amplitude"):
            DiurnalArrivals(1, RATE, amplitude=1.0)
