"""Token-bucket admission: analytic refill, ticket pricing, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.serving.admission import AdmissionController, TokenBucket
from repro.workloads.arrivals import PoissonArrivals


class TestTokenBucket:
    def test_burst_then_shed_then_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        # Burst allowance admits the first five simultaneous arrivals.
        assert all(bucket.admit(0.0) for _ in range(5))
        assert not bucket.admit(0.0)
        assert (bucket.admitted, bucket.shed) == (5, 1)
        # 10/s refill: 300ms buys exactly three more tokens.
        assert all(bucket.admit(300.0) for _ in range(3))
        assert not bucket.admit(300.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0)
        bucket.admit(0.0)
        bucket.admit(10_000.0)  # a long idle gap refills to burst only
        assert bucket.tokens == pytest.approx(1.0)

    def test_stale_instants_refill_nothing(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1.0)
        assert bucket.admit(1_000.0)
        # An earlier instant must not rewind the clock or mint tokens.
        assert not bucket.admit(500.0)
        assert bucket.clock_ms == 1_000.0

    def test_validation(self):
        with pytest.raises(ReproError, match="refill rate"):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ReproError, match="burst"):
            TokenBucket(1.0, 0.5)


class TestAdmissionController:
    def test_rates_priced_by_ticket_share(self):
        controller = AdmissionController(
            100.0, {"gold": 400, "silver": 200, "bronze": 100},
            headroom=1.4)
        rates = {row["class"]: row["rate_per_s"]
                 for row in controller.rows()}
        assert rates["gold"] == pytest.approx(100.0 * 1.4 * 400 / 700)
        assert rates["silver"] == pytest.approx(rates["gold"] / 2.0)
        assert rates["bronze"] == pytest.approx(rates["gold"] / 4.0)

    def test_unknown_class_is_an_error(self):
        controller = AdmissionController(10.0, {"gold": 1})
        with pytest.raises(ReproError, match="no admission bucket"):
            controller.admit("lead", 0.0)

    def test_shed_pattern_is_a_pure_function_of_the_trace(self):
        """Two controllers fed the same seeded trace shed identically --
        the property that keeps the shed pattern policy-independent."""

        def run():
            controller = AdmissionController(
                50.0, {"gold": 2, "bronze": 1}, headroom=1.0)
            trace = PoissonArrivals(99, 120.0).take(400)
            return [controller.admit("bronze", at) for at in trace]

        first, second = run(), run()
        assert first == second
        assert False in first  # offered 120/s vs ~16.7/s priced: sheds

    def test_snapshot_state_round_trips_counts(self):
        controller = AdmissionController(10.0, {"a": 1})
        controller.admit("a", 0.0)
        state = controller.snapshot_state()
        assert state["buckets"]["a"]["admitted"] == 1
        assert state["capacity_rps"] == 10.0
