"""Tests for the section 4.7 user commands."""

import pytest

from repro.cli.commands import (
    fund,
    fundx,
    lscur,
    lstkt,
    mkcur,
    mktkt,
    rmcur,
    rmtkt,
    unfund,
)
from repro.cli.state import CommandState, PermissionError_
from repro.core.tickets import TicketHolder
from repro.errors import ReproError, TicketError


@pytest.fixture
def state():
    return CommandState()


class TestTicketCommands:
    def test_mktkt_creates_named_ticket(self, state):
        output = mktkt(state, ["100", "base", "t1"])
        assert "t1" in output
        assert state.tickets["t1"].amount == 100

    def test_mktkt_autonames(self, state):
        mktkt(state, ["50", "base"])
        assert "t1" in state.tickets

    def test_mktkt_duplicate_name_rejected(self, state):
        mktkt(state, ["1", "base", "x"])
        with pytest.raises(TicketError):
            mktkt(state, ["1", "base", "x"])

    def test_rmtkt(self, state):
        mktkt(state, ["1", "base", "x"])
        rmtkt(state, ["x"])
        assert "x" not in state.tickets

    def test_rmtkt_unknown_rejected(self, state):
        with pytest.raises(TicketError):
            rmtkt(state, ["ghost"])

    def test_usage_errors(self, state):
        with pytest.raises(ReproError):
            mktkt(state, [])
        with pytest.raises(ReproError):
            rmtkt(state, [])


class TestCurrencyCommands:
    def test_mkcur_and_rmcur(self, state):
        mkcur(state, ["alice"])
        assert state.ledger.currency("alice")
        rmcur(state, ["alice"])
        with pytest.raises(ReproError):
            state.ledger.currency("alice")

    def test_rmcur_ownership_enforced(self, state):
        mkcur(state, ["alice"])
        state.user = "mallory"
        with pytest.raises(ReproError):
            rmcur(state, ["alice"])

    def test_fund_and_unfund(self, state):
        mkcur(state, ["alice"])
        mktkt(state, ["200", "base", "t1"])
        fund(state, ["t1", "alice"])
        assert state.tickets["t1"].target is state.ledger.currency("alice")
        unfund(state, ["t1"])
        assert state.tickets["t1"].target is None

    def test_fund_unknown_target_rejected(self, state):
        mktkt(state, ["1", "base", "t1"])
        with pytest.raises(ReproError):
            fund(state, ["t1", "nowhere"])


class TestListingCommands:
    def test_lstkt_lists_tickets(self, state):
        mkcur(state, ["alice"])
        mktkt(state, ["200", "base", "t1"])
        fund(state, ["t1", "alice"])
        listing = lstkt(state, [])
        assert "t1" in listing
        assert "alice" in listing

    def test_lscur_lists_currencies(self, state):
        mkcur(state, ["alice"])
        listing = lscur(state, [])
        assert "base" in listing
        assert "alice" in listing

    def test_listing_args_rejected(self, state):
        with pytest.raises(ReproError):
            lstkt(state, ["junk"])
        with pytest.raises(ReproError):
            lscur(state, ["junk"])


class TestFundx:
    def test_funds_registered_client(self, state):
        holder = TicketHolder("job")
        holder.start_competing()
        state.register_holder("job", holder)
        fundx(state, ["300", "base", "job"])
        assert holder.funding() == pytest.approx(300)

    def test_unknown_client_rejected(self, state):
        with pytest.raises(ReproError):
            fundx(state, ["1", "base", "ghost"])

    def test_duplicate_holder_registration_rejected(self, state):
        state.register_holder("job", TicketHolder("job"))
        with pytest.raises(ReproError):
            state.register_holder("job", TicketHolder("other"))


class TestAccessControl:
    def test_non_owner_cannot_inflate_foreign_currency(self, state):
        mkcur(state, ["alice"])
        state.user = "mallory"
        with pytest.raises(PermissionError_):
            mktkt(state, ["100", "alice"])

    def test_owner_may_inflate_own_currency(self, state):
        state.user = "alice"
        mkcur(state, ["wallet"])
        output = mktkt(state, ["10", "wallet"])
        assert "wallet" in output

    def test_acl_grant_allows_inflation(self, state):
        mkcur(state, ["shared"])
        state.grant_inflation(state.ledger.currency("shared"), "bob")
        state.user = "bob"
        mktkt(state, ["5", "shared"])  # should not raise

    def test_root_may_do_anything(self, state):
        state.user = "alice"
        mkcur(state, ["wallet"])
        state.user = "root"
        mktkt(state, ["5", "wallet"])  # root bypasses the ACL


class TestChaosCommand:
    def test_runs_short_chaos_and_reports_windows(self, state):
        from repro.cli.commands import chaos

        out = chaos(state, ["2718", "80000"])
        assert "chaos: seed=2718" in out
        assert "node-crash node1" in out
        assert "window @30000ms (node-crash node1):" in out
        assert "window @60000ms (node-restart node1):" in out
        assert "reconverged after" in out
        assert "final_window_error=" in out

    def test_usage_errors(self, state):
        from repro.cli.commands import chaos

        with pytest.raises(ReproError):
            chaos(state, ["1", "2", "3"])
