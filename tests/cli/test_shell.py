"""Tests for the command shell."""

from repro.cli.shell import Shell


class TestShell:
    def test_basic_session(self):
        shell = Shell()
        assert "alice" in shell.execute("mkcur alice")
        assert "t1" in shell.execute("mktkt 200 base t1")
        assert "funds alice" in shell.execute("fund t1 alice")
        listing = shell.execute("lscur")
        assert "alice" in listing

    def test_unknown_command_reported_not_raised(self):
        shell = Shell()
        output = shell.execute("frobnicate 1 2 3")
        assert output.startswith("error:")

    def test_command_errors_reported(self):
        shell = Shell()
        output = shell.execute("rmtkt ghost")
        assert output.startswith("error:")

    def test_blank_and_comment_lines(self):
        shell = Shell()
        assert shell.execute("") == ""
        assert shell.execute("   ") == ""
        assert shell.execute("# a comment") == ""

    def test_help(self):
        shell = Shell()
        output = shell.execute("help")
        for name in ("mktkt", "mkcur", "fund", "lscur", "fundx"):
            assert name in output

    def test_run_script(self):
        shell = Shell()
        outputs = shell.run_script(
            """
            # build a tiny currency graph
            mkcur alice
            mktkt 100 base t1
            fund t1 alice
            lstkt
            """
        )
        assert len(outputs) == 4
        assert not any(o.startswith("error:") for o in outputs)

    def test_history_recorded(self):
        shell = Shell()
        shell.execute("mkcur a")
        shell.execute("lscur")
        assert shell.history == ["mkcur a", "lscur"]

    def test_malformed_quoting_reported(self):
        shell = Shell()
        output = shell.execute('mkcur "unterminated')
        assert output.startswith("error:")
