"""Integration: driving a live kernel through the §4.7 command shell."""

import pytest

from repro.cli.shell import Shell
from repro.cli.state import CommandState
from tests.conftest import make_lottery_kernel, spin_body


@pytest.fixture
def live_machine():
    """A kernel plus a shell bound to the same ledger."""
    kernel = make_lottery_kernel(seed=41)
    shell = Shell(CommandState(ledger=kernel.ledger))
    return kernel, shell


class TestShellOverLiveKernel:
    def test_fundx_changes_running_shares(self, live_machine):
        kernel, shell = live_machine
        a = kernel.spawn(spin_body(), "a", tickets=100)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        shell.state.register_holder("a", a)
        kernel.run_until(50_000)
        first_a = a.cpu_time
        # The administrator boosts thread a by 300 base mid-run.
        output = shell.execute("fundx 300 base a")
        assert not output.startswith("error:")
        kernel.run_until(100_000)
        gain_a = a.cpu_time - first_a
        gain_b = b.cpu_time - (50_000 - first_a)
        # Second half: a holds 400 of 500 active tickets.
        assert gain_a / gain_b == pytest.approx(4.0, rel=0.25)

    def test_mkcur_fund_visible_to_scheduler(self, live_machine):
        kernel, shell = live_machine
        shell.run_script(
            """
            mkcur team
            mktkt 900 base backing
            fund backing team
            """
        )
        team = kernel.ledger.currency("team")
        task = kernel.create_task("member-task")
        task.currency = team
        member = kernel.spawn(spin_body(), "member", task=task,
                              tickets=100, currency=team)
        rival = kernel.spawn(spin_body(), "rival", tickets=100)
        kernel.run_until(100_000)
        # Team currency worth 900 vs rival's 100: 9:1.
        assert member.cpu_time / rival.cpu_time == pytest.approx(9.0,
                                                                 rel=0.2)

    def test_unfund_starves_currency_members(self, live_machine):
        kernel, shell = live_machine
        shell.run_script(
            """
            mkcur team
            mktkt 500 base backing
            fund backing team
            """
        )
        team = kernel.ledger.currency("team")
        task = kernel.create_task("member-task")
        task.currency = team
        member = kernel.spawn(spin_body(), "member", task=task,
                              tickets=100, currency=team)
        rival = kernel.spawn(spin_body(), "rival", tickets=100)
        kernel.run_until(30_000)
        mid_member = member.cpu_time
        mid_rival = rival.cpu_time
        shell.execute("unfund backing")
        kernel.run_until(60_000)
        member_gain = member.cpu_time - mid_member
        rival_gain = rival.cpu_time - mid_rival
        # Unfunded currency: the member's tickets are worthless, so the
        # rival takes (essentially) the whole second half.
        assert member_gain < 2_000
        assert rival_gain > 28_000

    def test_lstkt_reflects_live_values(self, live_machine):
        kernel, shell = live_machine
        thread = kernel.spawn(spin_body(), "t", tickets=100, start=False)
        shell.state.register_holder("t", thread)
        shell.execute("fundx 250 base t")
        kernel.start_thread(thread)
        kernel.run_until(150)
        listing = shell.execute("lstkt")
        assert "250" in listing
