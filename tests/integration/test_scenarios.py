"""End-to-end scenario tests exercising many subsystems together."""

import pytest

from repro.core.inflation import set_share
from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.kernel.ipc import Port
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import (
    AcquireMutex,
    Call,
    Compute,
    Receive,
    ReleaseMutex,
    Reply,
)
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine
from repro.sync.mutex import LotteryMutex
from tests.conftest import make_lottery_kernel, spin_body


class TestReproducibility:
    def test_identical_seeds_identical_histories(self):
        """The whole machine is a deterministic function of its seeds."""

        def run_once():
            kernel = make_lottery_kernel(seed=1234)
            log = []
            threads = [
                kernel.spawn(spin_body(30.0), f"t{i}", tickets=100 * (i + 1))
                for i in range(4)
            ]
            original_select = kernel.policy.select

            def logging_select():
                winner = original_select()
                if winner is not None:
                    log.append((kernel.now, winner.name))
                return winner

            kernel.policy.select = logging_select
            kernel.run_until(20_000)
            return log, [t.cpu_time for t in threads]

        first_log, first_cpu = run_once()
        second_log, second_cpu = run_once()
        assert first_log == second_log
        assert first_cpu == second_cpu
        # 20 s / 100 ms quantum, plus the boundary dispatch at t=20 s.
        assert len(first_log) == 201

    def test_different_seeds_different_histories(self):
        a = make_lottery_kernel(seed=1)
        b = make_lottery_kernel(seed=2)
        for kernel in (a, b):
            kernel.spawn(spin_body(), "x", tickets=100)
            kernel.spawn(spin_body(), "y", tickets=100)
        a.run_until(50_000)
        b.run_until(50_000)
        cpu_a = [t.cpu_time for t in a.threads]
        cpu_b = [t.cpu_time for t in b.threads]
        assert cpu_a != cpu_b


class TestStarvationFreedom:
    def test_every_funded_thread_eventually_runs(self):
        """Section 2.2: any client with tickets eventually wins."""
        kernel = make_lottery_kernel(seed=5)
        tiny = kernel.spawn(spin_body(), "tiny", tickets=1)
        for i in range(5):
            kernel.spawn(spin_body(), f"hog{i}", tickets=1000)
        kernel.run_until(3_000_000)  # 30,000 lotteries at p ~ 1/5001
        assert tiny.cpu_time > 0
        assert tiny.dispatches >= 1


class TestQuantumGranularity:
    def test_smaller_quantum_improves_short_window_fairness(self):
        """Section 2.2: with a 10 ms quantum (100 lotteries/sec),
        'reasonable fairness can be achieved over subsecond time
        intervals' -- the same interval at 100 ms quantum is far
        noisier."""
        from repro.metrics.recorder import KernelRecorder
        from repro.metrics.stats import stdev

        def window_ratio_spread(quantum):
            kernel = make_lottery_kernel(seed=77, quantum=quantum)
            recorder = KernelRecorder()
            kernel.recorder = recorder
            a = kernel.spawn(spin_body(quantum), "a", tickets=200)
            b = kernel.spawn(spin_body(quantum), "b", tickets=100)
            kernel.run_until(60_000)
            shares = []
            window = 1_000.0  # one-second windows
            t = 0.0
            while t < 60_000:
                share_a = recorder.cpu_share(a, t, t + window)
                shares.append(share_a)
                t += window
            return stdev(shares)

        assert window_ratio_spread(10.0) < window_ratio_spread(100.0) / 2


class TestFullStackScenario:
    def test_users_tasks_transfers_and_inflation_together(self):
        """Two user currencies; one user runs a compute task and a
        client calling a shared ticketless server; mid-run the other
        user inflates.  Conservation and insulation must hold at every
        level, and the server must keep running purely on transfers."""
        engine = Engine()
        ledger = Ledger()
        kernel = Kernel(engine, LotteryPolicy(ledger, ParkMillerPRNG(31)),
                        ledger=ledger, quantum=100.0)
        alice = ledger.create_currency("alice")
        bob = ledger.create_currency("bob")
        ledger.create_ticket(1000, fund=alice)
        ledger.create_ticket(1000, fund=bob)

        port = Port(kernel, "svc")

        def worker(ctx):
            while True:
                request = yield Receive(port)
                yield Compute(40.0)
                yield Reply(request, "ok")

        # Boot the ticketless-ish worker alone so it parks in Receive
        # before the funded threads exist (the real server's startup).
        worker_thread = kernel.spawn(worker, "worker", tickets=1)
        kernel.run_until(200)
        from repro.kernel.thread import ThreadState

        assert worker_thread.state is ThreadState.BLOCKED

        # Alice: one compute thread + one RPC client.
        alice_task = kernel.create_task("alice-task")
        alice_task.currency = alice
        spin_alice = kernel.spawn(spin_body(), "alice-spin",
                                  task=alice_task, tickets=100,
                                  currency=alice)

        completed = []

        def client(ctx):
            while True:
                yield Compute(1.0)
                yield Call(port, "query")
                completed.append(ctx.now)

        client_task = kernel.create_task("alice-client")
        client_task.currency = alice
        kernel.spawn(client, "alice-client", task=client_task,
                     tickets=100, currency=alice)

        # Bob: two compute threads; one will inflate later.
        bob_task = kernel.create_task("bob-task")
        bob_task.currency = bob
        bob_threads = [
            kernel.spawn(spin_body(), f"bob{i}", task=bob_task,
                         tickets=100, currency=bob)
            for i in range(2)
        ]

        kernel.run_until(60_000)
        alice_mid = spin_alice.cpu_time
        bob_mid_each = [t.cpu_time for t in bob_threads]
        bob_mid = sum(bob_mid_each)

        # Bob inflates one thread 5x: internal to bob's currency.
        set_share(bob_threads[0], bob, 500)
        kernel.run_until(120_000)

        # Insulation: bob's aggregate share is unchanged by internal
        # inflation (his currency is still worth 1000 base).
        bob_second_half = sum(t.cpu_time for t in bob_threads) - bob_mid
        assert bob_second_half == pytest.approx(bob_mid, rel=0.15)
        # Bob's internal ratio shifted to ~5:1 in the second half.
        gain0 = bob_threads[0].cpu_time - bob_mid_each[0]
        gain1 = bob_threads[1].cpu_time - bob_mid_each[1]
        assert gain0 / gain1 == pytest.approx(5.0, rel=0.3)
        # The server kept answering on transferred funding alone.
        assert len(completed) > 50
        # Alice's spin thread was not disturbed by bob's inflation.
        alice_second_half = spin_alice.cpu_time - alice_mid
        assert alice_second_half == pytest.approx(alice_mid, rel=0.2)

    def test_mutex_under_rpc_load(self):
        """Workers sharing a lottery mutex while serving RPCs: the lock
        serializes a critical section, clients still complete, and the
        mutex accounting is consistent."""
        kernel = make_lottery_kernel(seed=91)
        port = Port(kernel, "svc")
        mutex = LotteryMutex(kernel, "shared-state",
                             prng=ParkMillerPRNG(92))
        critical_overlaps = []
        inside = []

        def worker(ctx):
            while True:
                request = yield Receive(port)
                yield Compute(10.0)
                yield AcquireMutex(mutex)
                if inside:
                    critical_overlaps.append(ctx.now)
                inside.append(ctx.thread.name)
                yield Compute(15.0)
                inside.pop()
                yield ReleaseMutex(mutex)
                yield Reply(request, "done")

        for i in range(3):
            kernel.spawn(worker, f"w{i}", tickets=1)

        counts = {"a": 0, "b": 0}

        def client(name):
            def body(ctx):
                while True:
                    yield Compute(1.0)
                    yield Call(port, name)
                    counts[name] += 1

            return body

        kernel.spawn(client("a"), "a", tickets=300)
        kernel.spawn(client("b"), "b", tickets=100)
        kernel.run_until(120_000)
        assert critical_overlaps == []  # mutual exclusion held
        assert counts["a"] > 0 and counts["b"] > 0
        assert counts["a"] / counts["b"] == pytest.approx(3.0, rel=0.4)
        assert mutex.total_acquisitions() == counts["a"] + counts["b"]
