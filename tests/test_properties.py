"""Property-based tests (hypothesis) on the core invariants.

These pin down the algebraic laws the paper's mechanisms rest on:
value conservation through currency graphs, exact agreement between the
O(n) list lottery and the O(log n) Fenwick-tree lottery, event-queue
ordering, inverse-lottery normalization, PRNG range discipline, and
counter monotonicity.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.inverse import inverse_probabilities
from repro.core.lottery import ListLottery, TreeLottery
from repro.core.prng import MODULUS, ParkMillerPRNG, fastrand
from repro.core.tickets import Ledger, TicketHolder
from repro.metrics.counters import WindowedCounter
from repro.metrics.stats import win_proportion_cv
from repro.sim.events import EventQueue

amounts = st.floats(min_value=0.001, max_value=1e6, allow_nan=False,
                    allow_infinity=False)
seeds = st.integers(min_value=1, max_value=MODULUS - 1)


class TestPrngProperties:
    @given(seeds)
    def test_fastrand_stays_in_range(self, seed):
        value = fastrand(seed)
        assert 0 < value < MODULUS

    @given(seeds)
    def test_fastrand_is_multiplicative_congruence(self, seed):
        assert fastrand(seed) == (16807 * seed) % MODULUS

    @given(seeds, st.integers(min_value=1, max_value=10_000))
    def test_randrange_within_bound(self, seed, bound):
        prng = ParkMillerPRNG(seed)
        for _ in range(10):
            assert 0 <= prng.randrange(bound) < bound

    @given(seeds)
    def test_uniform_in_unit_interval(self, seed):
        prng = ParkMillerPRNG(seed)
        for _ in range(10):
            value = prng.uniform()
            assert 0.0 <= value < 1.0


class TestCurrencyConservation:
    @given(st.lists(amounts, min_size=1, max_size=8),
           st.lists(amounts, min_size=1, max_size=8))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_group_funding_equals_backing(self, backings, issues):
        """Sum of member funding == sum of backing ticket values, for
        any currency funded by any backing and issuing any tickets."""
        ledger = Ledger()
        group = ledger.create_currency("group")
        for amount in backings:
            ledger.create_ticket(amount, fund=group)
        holders = []
        for amount in issues:
            holder = TicketHolder("h")
            ledger.create_ticket(amount, currency=group, fund=holder)
            holder.start_competing()
            holders.append(holder)
        total_funding = sum(h.funding() for h in holders)
        assert math.isclose(total_funding, sum(backings), rel_tol=1e-9)

    @given(st.lists(amounts, min_size=2, max_size=6), st.data())
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_deactivation_redistributes_not_destroys(self, issues, data):
        """Deactivating one member hands its share to siblings: the
        currency's total delivered value is invariant while at least
        one member competes."""
        ledger = Ledger()
        group = ledger.create_currency("group")
        ledger.create_ticket(1000.0, fund=group)
        holders = []
        for amount in issues:
            holder = TicketHolder("h")
            ledger.create_ticket(amount, currency=group, fund=holder)
            holder.start_competing()
            holders.append(holder)
        victim = data.draw(st.integers(min_value=0,
                                       max_value=len(holders) - 1))
        holders[victim].stop_competing()
        remaining = [h for i, h in enumerate(holders) if i != victim]
        total = sum(h.funding() for h in remaining)
        # The active-amount bookkeeping is incremental, so subtractive
        # cancellation with extreme amount ratios (1e6 vs 1e-3) costs a
        # few ulps: conservation holds to ~1e-6 relative, not exactly.
        assert math.isclose(total, 1000.0, rel_tol=1e-6)

    @given(st.lists(amounts, min_size=1, max_size=5))
    @settings(deadline=None)
    def test_base_active_amount_equals_active_issue(self, values):
        ledger = Ledger()
        holders = []
        for amount in values:
            holder = TicketHolder("h")
            ledger.create_ticket(amount, fund=holder)
            holder.start_competing()
            holders.append(holder)
        assert math.isclose(
            ledger.total_active_base(), sum(values), rel_tol=1e-9
        )


class TestLotteryEquivalence:
    @given(
        st.lists(amounts, min_size=1, max_size=20),
        seeds,
    )
    @settings(deadline=None)
    def test_tree_and_list_pick_same_winner_for_same_randomness(
        self, values, seed
    ):
        """With identical PRNG streams and client order, the Fenwick
        tree and the plain list walk must select the same winner."""
        clients = {f"c{i}": v for i, v in enumerate(values)}
        tree = TreeLottery()
        plain = ListLottery(value_of=clients.__getitem__,
                            move_to_front=False)
        for name, value in clients.items():
            tree.add(name, value)
            plain.add(name)
        prng_a = ParkMillerPRNG(seed)
        prng_b = ParkMillerPRNG(seed)
        for _ in range(20):
            assert tree.draw(prng_a) == plain.draw(prng_b)

    @given(st.lists(amounts, min_size=1, max_size=15), seeds)
    @settings(deadline=None)
    def test_tree_total_matches_sum(self, values, seed):
        tree = TreeLottery()
        for index, value in enumerate(values):
            tree.add(index, value)
        assert math.isclose(tree.total(), sum(values), rel_tol=1e-9)

    @given(st.lists(amounts, min_size=2, max_size=15), st.data())
    @settings(deadline=None)
    def test_tree_total_after_removals(self, values, data):
        tree = TreeLottery()
        for index, value in enumerate(values):
            tree.add(index, value)
        removed = data.draw(
            st.sets(st.integers(0, len(values) - 1), max_size=len(values) - 1)
        )
        for index in removed:
            tree.remove(index)
        expected = sum(v for i, v in enumerate(values) if i not in removed)
        assert math.isclose(tree.total(), expected, rel_tol=1e-9, abs_tol=1e-9)


class TestInverseLotteryProperties:
    @given(st.lists(amounts, min_size=2, max_size=12))
    @settings(deadline=None)
    def test_probabilities_normalized(self, tickets):
        entries = [(i, t) for i, t in enumerate(tickets)]
        probabilities = inverse_probabilities(entries)
        assert math.isclose(sum(p for _, p in probabilities), 1.0,
                            rel_tol=1e-9)
        assert all(p >= 0 for _, p in probabilities)

    @given(st.lists(amounts, min_size=2, max_size=12))
    @settings(deadline=None)
    def test_more_tickets_never_increases_loss_probability(self, tickets):
        entries = sorted(
            ((i, t) for i, t in enumerate(tickets)), key=lambda e: e[1]
        )
        probabilities = [p for _, p in inverse_probabilities(entries)]
        # Entries sorted by ascending tickets: probabilities must be
        # non-increasing.
        for earlier, later in zip(probabilities, probabilities[1:]):
            assert later <= earlier + 1e-12


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(deadline=None)
    def test_pop_order_is_sorted_and_stable(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.push(time, lambda: None, label=str(index))
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append((event.time, int(event.label)))
        assert popped == sorted(
            popped, key=lambda pair: (pair[0], pair[1])
        )
        assert len(popped) == len(times)


class TestCounterProperties:
    @given(st.lists(st.tuples(st.floats(0, 1e5, allow_nan=False),
                              st.floats(0, 1e3, allow_nan=False)),
                    min_size=1, max_size=40))
    @settings(deadline=None)
    def test_cumulative_monotone(self, increments):
        counter = WindowedCounter()
        for delta_t, count in sorted(increments):
            counter.add(delta_t, count)
        series = counter.cumulative_series(sample_every=1000.0,
                                           horizon=1e5)
        values = [value for _, value in series]
        assert values == sorted(values)
        assert math.isclose(
            counter.total, sum(c for _, c in increments), rel_tol=1e-9,
            abs_tol=1e-9,
        )


class TestFairnessLaw:
    @given(st.floats(min_value=0.05, max_value=0.95), seeds)
    @settings(max_examples=20, deadline=None)
    def test_empirical_cv_tracks_formula(self, share, seed):
        """Section 2.2's CV law holds for the simulator's own lottery."""
        from repro.core.lottery import hold_lottery

        prng = ParkMillerPRNG(seed)
        lotteries = 400
        trials = 60
        proportions = []
        for _ in range(trials):
            wins = sum(
                1
                for _ in range(lotteries)
                if hold_lottery(
                    [("t", share), ("rest", 1.0 - share)], prng
                ) == "t"
            )
            proportions.append(wins / lotteries)
        mu = sum(proportions) / trials
        sigma = math.sqrt(
            sum((p - mu) ** 2 for p in proportions) / trials
        )
        observed_cv = sigma / mu
        predicted = win_proportion_cv(lotteries, share)
        # Loose envelope: the empirical CV lies within 2.5x of the law.
        assert observed_cv < predicted * 2.5
        assert observed_cv > predicted / 2.5
