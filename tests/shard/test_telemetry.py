"""Shard telemetry: epoch spans and barrier instants are themselves
deterministic -- a trace is a pure function of (plan, shards, epoch),
independent of the execution backend."""

from __future__ import annotations

import pytest

from repro.shard.engine import ShardedEngine
from repro.shard.plan import mix_plan
from repro.telemetry.spans import SpanTracer


def _traced_run(backend: str, shards: int, until: float = 2_000.0):
    tracer = SpanTracer()
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=shards,
                       backend=backend) as engine:
        engine.attach_telemetry(tracer)
        engine.advance(until)
    return tracer


def test_epoch_spans_cover_every_shard_and_barrier():
    tracer = _traced_run("inline", shards=2)
    # 2000ms / 500ms grid = 4 barriers; one epoch span per shard each.
    per_track = {}
    for span in tracer.spans:
        per_track[span.track] = per_track.get(span.track, 0) + 1
    assert per_track == {"shard0": 4, "shard1": 4, "barrier": 4}
    assert tracer.counts() == {("shard", "epoch"): 8,
                               ("shard", "shard.barrier"): 4}
    epochs = [s for s in tracer.spans if s.name == "epoch"]
    assert all(s.duration == pytest.approx(500.0) for s in epochs)


def test_barrier_events_carry_payload_counts():
    tracer = _traced_run("inline", shards=2)
    barriers = [s for s in tracer.spans if s.track == "barrier"]
    assert all(s.instant for s in barriers)
    # mix_plan has cross-core RPC traffic, so at least one barrier
    # must have carried payloads.
    assert any(s.attrs["payloads"] > 0 for s in barriers)


def test_trace_is_backend_independent():
    want = [s.to_dict() for s in _traced_run("inline", shards=2).spans]
    for backend in ("single", "mp"):
        got = [s.to_dict() for s in _traced_run(backend, shards=2).spans]
        assert got == want, f"{backend} trace diverged from inline"


def test_epoch_spans_carry_shard_core_ownership():
    tracer = _traced_run("inline", shards=2)
    epochs = [s for s in tracer.spans if s.name == "epoch"]
    owned = {s.track: tuple(s.attrs["cores"]) for s in epochs}
    assert owned == {"shard0": (0, 2), "shard1": (1, 3)}
