"""Mp backend shutdown robustness: wedged and dead workers must not
hang ``close()``, and worker failures must carry real tracebacks."""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.plan import mix_plan, spin_plan


def _mp_engine(supervise=False, **kwargs):
    return ShardedEngine(spin_plan(seed=3, cores=2), shards=2,
                         backend="mp", supervise=supervise, **kwargs)


def test_close_does_not_hang_on_a_wedged_worker():
    """A SIGSTOPped worker never acks the stop command; close() must
    escalate terminate -> kill within its timeout instead of blocking
    forever at conn.recv()."""
    engine = _mp_engine()
    engine.advance(200.0)
    backend = engine._backend
    backend.close_timeout_s = 1.0
    victim = backend._workers[0]
    os.kill(victim.pid, signal.SIGSTOP)
    engine.close()  # must return promptly, not hang
    assert not victim.is_alive()


def test_close_tolerates_an_already_dead_worker():
    """A SIGKILLed worker leaves a broken pipe behind; close() must
    swallow the EOF/broken-pipe instead of raising through __del__."""
    engine = _mp_engine()
    engine.advance(200.0)
    backend = engine._backend
    backend.close_timeout_s = 2.0
    workers = list(backend._workers)
    os.kill(workers[1].pid, signal.SIGKILL)
    workers[1].join(timeout=5.0)
    engine.close()
    assert all(not worker.is_alive() for worker in workers)


def test_supervised_close_does_not_hang_on_a_wedged_worker():
    engine = _mp_engine(supervise=True)
    engine.advance(200.0)
    backend = engine._backend
    backend.close_timeout_s = 1.0
    victim = backend._handles[0].process
    os.kill(victim.pid, signal.SIGSTOP)
    engine.close()
    assert not victim.is_alive()


def test_worker_failure_ships_type_and_traceback():
    """The worker's error reply must carry the exception type and the
    worker-side traceback text, so the parent-side ShardError names
    the real cause instead of a bare repr."""
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                       backend="mp") as engine:
        backend = engine._backend
        backend.barrier(0.0, [{"kind": "warp", "target": 1, "src": 0,
                               "seq": 1}])
        with pytest.raises(ShardError) as excinfo:
            backend.run_epoch(500.0)
    message = str(excinfo.value)
    assert "shard worker" in message
    assert "running 'barrier'" in message or "running 'epoch'" in message
    assert "Traceback (most recent call last)" in message
    assert "Error" in message  # the exception type name survives
