"""Host-fault plans and arming semantics (no processes involved)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ShardError
from repro.shard.hostfaults import (
    EVERY_EPOCH,
    HostFault,
    HostFaultPlan,
    HostFaultSchedule,
    PRESETS,
    chaos_plan,
    kill_every_epoch,
    load_host_faults,
)


# -- validation ----------------------------------------------------------------


def test_unknown_kind_is_rejected():
    with pytest.raises(ShardError, match="unknown host fault kind"):
        HostFault("meteor", shard=0, epoch=0)


def test_negative_shard_is_rejected():
    with pytest.raises(ShardError, match="shard must be >= 0"):
        HostFault("kill", shard=-1, epoch=0)


def test_bad_kill_point_is_rejected():
    with pytest.raises(ShardError, match="point"):
        HostFault("kill", shard=0, epoch=0, point="mid")


def test_slow_requires_positive_delay():
    with pytest.raises(ShardError, match="delay_s"):
        HostFault("slow", shard=0, epoch=0)


def test_plan_validate_for_rejects_out_of_range_shards():
    plan = HostFaultPlan([HostFault("kill", shard=3, epoch=0)])
    with pytest.raises(ShardError, match="only 2 shard"):
        plan.validate_for(2)
    plan.validate_for(4)  # fine at full width


# -- serialization -------------------------------------------------------------


def test_plan_json_round_trip(tmp_path):
    plan = chaos_plan(shards=4)
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
    loaded = HostFaultPlan.from_file(str(path))
    assert loaded.to_dict() == plan.to_dict()
    assert len(loaded) == len(plan)


def test_from_file_rejects_non_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ShardError, match="not JSON"):
        HostFaultPlan.from_file(str(path))


def test_load_host_faults_resolves_presets_and_paths(tmp_path):
    assert len(load_host_faults("kill-every-epoch", 4)) == 1
    assert len(load_host_faults("chaos", 4)) == 6
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(kill_every_epoch().to_dict()),
                    encoding="utf-8")
    assert len(load_host_faults(str(path), 1)) == 1


def test_load_host_faults_validates_against_width(tmp_path):
    path = tmp_path / "wide.json"
    path.write_text(json.dumps(
        HostFaultPlan([HostFault("kill", shard=5, epoch=0)]).to_dict()),
        encoding="utf-8")
    with pytest.raises(ShardError, match="only 2 shard"):
        load_host_faults(str(path), 2)


def test_presets_registry_matches_functions():
    assert set(PRESETS) == {"kill-every-epoch", "chaos"}


# -- arming --------------------------------------------------------------------


def test_each_entry_fires_once_per_epoch():
    schedule = HostFaultSchedule(
        HostFaultPlan([HostFault("kill", shard=0, epoch=2)]))
    assert schedule.arm(0, 1) == []          # wrong epoch
    assert schedule.arm(1, 2) == []          # wrong shard
    armed = schedule.arm(0, 2)
    assert [fault["kind"] for fault in armed] == ["kill"]
    assert schedule.arm(0, 2) == []          # retry runs clean
    assert schedule.armed == 1


def test_every_epoch_fires_once_per_epoch_index():
    schedule = HostFaultSchedule(kill_every_epoch())
    for epoch in range(3):
        assert schedule.arm(0, epoch)        # first attempt faults
        assert schedule.arm(0, epoch) == []  # the retry does not
    assert schedule.armed == 3


def test_double_fault_is_two_identical_entries():
    """A crash during recovery is encoded by duplicating the entry:
    the retried exchange arms the second copy."""
    fault = HostFault("kill", shard=0, epoch=0)
    schedule = HostFaultSchedule(HostFaultPlan([fault, fault]))
    assert schedule.arm(0, 0)                # first attempt
    assert schedule.arm(0, 0)                # crash during recovery
    assert schedule.arm(0, 0) == []          # third attempt runs clean


def test_at_most_one_fault_armed_per_exchange():
    plan = HostFaultPlan([HostFault("kill", shard=0, epoch=0),
                          HostFault("wedge", shard=0, epoch=0)])
    schedule = HostFaultSchedule(plan)
    assert [fault["kind"] for fault in schedule.arm(0, 0)] == ["kill"]
    assert [fault["kind"] for fault in schedule.arm(0, 0)] == ["wedge"]


def test_empty_schedule_arms_nothing():
    schedule = HostFaultSchedule(None)
    assert schedule.arm(0, 0) == []
    assert schedule.armed == 0


def test_every_epoch_sentinel_is_negative_one():
    assert EVERY_EPOCH == -1
