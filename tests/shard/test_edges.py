"""Edge cases at the seams: barrier-instant replies, mid-epoch
migration, crash with cross-shard evacuation, sharded checkpoints.

These are the scenarios ISSUE 7 calls out explicitly -- each one
exercises a place where a naive sharding implementation silently
diverges from the single-loop oracle (payloads applied a barrier early
or late, sequence numbers drifting across a stop/resume, evacuated
threads respawning under a different PRNG draw order).
"""

from __future__ import annotations

import pytest

from repro.checkpoint.capture import capture_tree
from repro.checkpoint.statetree import tree_checksum
from repro.shard.engine import ShardedEngine
from repro.shard.plan import ShardPlan, mix_plan

BACKENDS = ["single", "inline", "mp"]


def _shard_section(engine: ShardedEngine, core: int) -> dict:
    return engine.snapshot_state()["cores"][core]["shard"]


def _channel_section(engine: ShardedEngine, core: int, name: str) -> dict:
    return engine.snapshot_state()["cores"][core]["channels"][name]


# -- cross-shard RPC reply landing exactly on an epoch boundary ---------------
#
# Timeline (quantum=100, epoch=100): the client on core 1 computes
# 10ms, then calls the service homed on core 0.  The call payload
# crosses at the t=100 barrier; the server then computes for exactly
# 100ms, so its reply is *emitted at the t=200 barrier instant* -- the
# half-open epoch boundary itself.  The reply must travel with the
# t=200 barrier's canonical payload batch (never early, never dropped)
# and wake the client at t=300.


def _boundary_reply_plan() -> ShardPlan:
    plan = ShardPlan(seed=5, cores=2, quantum=100.0, epoch_ms=100.0)
    plan.add_channel("svc", home=0)
    plan.add_thread(0, "rpc_server", "server", tickets=100.0, channel="svc",
                    work_ms=100.0)
    plan.add_thread(1, "rpc_client", "client", tickets=100.0, channel="svc",
                    compute_ms=10.0, sleep_ms=10.0, count=1)
    # Low-ticket background load keeps both kernels busy; a kernel that
    # goes idle mid-quantum refuses to snapshot (incoherent window).
    plan.add_thread(1, "spin", "bg1", tickets=1.0, chunk_ms=10.0)
    plan.add_thread(0, "spin", "bg0", tickets=1.0, chunk_ms=10.0)
    return plan


@pytest.mark.parametrize("backend", BACKENDS)
def test_reply_emitted_on_epoch_boundary_is_delivered(backend):
    with ShardedEngine(_boundary_reply_plan(), shards=2,
                       backend=backend) as engine:
        engine.advance(500.0)
        server_side = _channel_section(engine, 0, "svc")
        client_side = _channel_section(engine, 1, "svc")
        assert server_side["calls_applied"] == 1
        assert client_side["replies_applied"] == 1
        assert client_side["dropped_replies"] == 0
        assert server_side["pending"] == []


def test_boundary_reply_is_backend_invariant():
    digests = set()
    for backend in BACKENDS:
        with ShardedEngine(_boundary_reply_plan(), shards=2,
                           backend=backend) as engine:
            engine.advance(500.0)
            digests.add((tree_checksum(engine.merged_stream()),
                         tree_checksum(engine.snapshot_state())))
    assert len(digests) == 1, "backends disagreed on the boundary reply"


# -- thread migration between shards mid-epoch --------------------------------
#
# mix_plan(with_ops=True) scripts a restart-migration of spin0a from
# core 0 to core 3 at t=1250 -- the middle of a 500ms epoch.  The kill
# happens locally at 1250; the respawn payload travels with the t=1500
# barrier and lands on a core owned by a *different* shard under
# shards=2 (core 0 -> shard 0, core 3 -> shard 1).


@pytest.mark.parametrize("backend", BACKENDS)
def test_mid_epoch_migration_between_shards(backend):
    plan = mix_plan(seed=11, cores=4, with_ops=True)
    with ShardedEngine(plan, shards=2, backend=backend) as engine:
        engine.advance(2_500.0)  # past the migration, before the crash
        src = _shard_section(engine, 0)
        dst = _shard_section(engine, 3)
        assert src["migrations_out"] == 1
        assert src["ops_skipped"] == 0
        assert "spin0a" not in src["specs"]
        assert "spin0a" in dst["specs"]
        assert dst["payloads_applied"] >= 1  # the spawn payload landed


# -- core crash with cross-shard evacuation -----------------------------------
#
# The same plan crashes core 3 at t=2750 with evacuate_to=1: every
# restartable thread still alive on core 3 (including the migrated
# spin0a) is killed and respawned on core 1 via spawn payloads at the
# t=3000 barrier.  Threads without a restart spec are casualties.


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_evacuates_restartable_threads_across_shards(backend):
    plan = mix_plan(seed=11, cores=4, with_ops=True)
    with ShardedEngine(plan, shards=2, backend=backend) as engine:
        engine.advance(4_000.0)
        crashed = _shard_section(engine, 3)
        refuge = _shard_section(engine, 1)
        assert crashed["crashed"] is True
        assert crashed["evacuations"] >= 1
        assert crashed["specs"] == []  # nothing left on the dead core
        # The migrated thread survived both hops: core 0 -> 3 -> 1.
        assert "spin0a" in refuge["specs"]
        assert _shard_section(engine, 0)["crashed"] is False


def test_ops_run_is_backend_and_placement_invariant():
    digests = set()
    for backend, shards in [("single", 1), ("inline", 2), ("inline", 4),
                            ("mp", 2)]:
        plan = mix_plan(seed=11, cores=4, with_ops=True)
        with ShardedEngine(plan, shards=shards, backend=backend) as engine:
            engine.advance(4_000.0)
            digests.add((tree_checksum(engine.merged_stream()),
                         tree_checksum(engine.snapshot_state())))
    assert len(digests) == 1, "ops run diverged across backends/shards"


# -- sharded checkpoint/restore ------------------------------------------------


def test_shard_mix_checkpoint_restores_bit_exact(tmp_path):
    """save at an epoch barrier -> restore -> advance: the resumed
    universe is bit-identical to one that never stopped."""
    from repro.checkpoint.registry import build_recipe
    from repro.checkpoint.capture import save
    from repro.checkpoint.restore import restore

    straight = build_recipe("shard-mix",
                            {"seed": 11, "cores": 4, "with_ops": True})
    straight.advance(4_000.0)
    want_state = tree_checksum(capture_tree(straight))
    want_stream = straight.components["sharded"].merged_stream()

    handle = build_recipe("shard-mix",
                          {"seed": 11, "cores": 4, "with_ops": True})
    handle.advance(2_000.0)
    path = tmp_path / "shard.ckpt"
    save(handle, path)
    resumed, _payload = restore(path)
    resumed.advance(4_000.0)
    assert tree_checksum(capture_tree(resumed)) == want_state
    assert resumed.components["sharded"].merged_stream() == want_stream


def test_checkpoint_is_identical_across_backends(tmp_path):
    """A checkpoint written by the mp backend at 4 shards equals one
    written by inline at 2 -- shard/backend identity never leaks into
    the state tree."""
    from repro.checkpoint.registry import build_recipe
    from repro.checkpoint.capture import save

    digests = set()
    for backend, shards in [("inline", 2), ("mp", 4)]:
        handle = build_recipe("shard-mix",
                              {"seed": 11, "cores": 4, "shards": shards,
                               "backend": backend, "with_ops": True})
        handle.advance(2_000.0)
        digests.add(tree_checksum(capture_tree(handle)))
        save(handle, tmp_path / f"{backend}-{shards}.ckpt")
    assert len(digests) == 1
