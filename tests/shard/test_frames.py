"""Checksummed pipe frames: round trips, damage detection."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import FrameCorruptError, ShardError
from repro.shard.frames import (
    FRAME_MAGIC,
    corrupt_frame,
    decode_frame,
    encode_frame,
)


def test_round_trip_is_identity():
    message = {"cmd": "epoch", "horizon": 500.0, "faults": []}
    assert decode_frame(encode_frame(message)) == message


def test_frames_are_deterministic():
    """Same message, same frame bytes -- replayed commands reframe
    byte-identically (key order must not leak into the body)."""
    left = encode_frame({"b": 2, "a": 1})
    right = encode_frame({"a": 1, "b": 2})
    assert left == right
    assert left.startswith(FRAME_MAGIC)


def test_corrupt_frame_is_rejected_by_checksum():
    frame = corrupt_frame(encode_frame({"cmd": "collect"}))
    with pytest.raises(FrameCorruptError, match="checksum mismatch"):
        decode_frame(frame)


def test_frame_corrupt_error_is_a_shard_error():
    """The supervisor catches ShardError subtypes uniformly."""
    assert issubclass(FrameCorruptError, ShardError)


@pytest.mark.parametrize("frame", [
    None,
    42,
    "not bytes",
    {"v": 1, "body": "{}"},
    b"",
    b"garbage without framing",
    b"XX9\n" + b"\x00" * 40,
    FRAME_MAGIC + b"short",
])
def test_malformed_frames_are_rejected(frame):
    with pytest.raises(FrameCorruptError):
        decode_frame(frame)


def _handmade(body: bytes) -> bytes:
    return FRAME_MAGIC + hashlib.sha256(body).digest() + body


def test_valid_checksum_over_non_json_body_is_still_corrupt():
    with pytest.raises(FrameCorruptError, match="not JSON"):
        decode_frame(_handmade(b"not json at all"))


def test_non_dict_json_body_is_rejected():
    with pytest.raises(FrameCorruptError, match="dict"):
        decode_frame(_handmade(json.dumps([1, 2, 3]).encode()))


def test_memoryview_frames_decode():
    """recv_bytes may surface buffers; any bytes-like frame decodes."""
    frame = encode_frame({"ok": True})
    assert decode_frame(memoryview(frame)) == {"ok": True}
