"""The determinism-race sanitizer versus the sharded engine.

Positive direction: a sanitized sharded run (tracker armed, invariant
sanitizer installed, mp workers self-sanitizing via REPRO_SANITIZE) is
clean and bit-identical to an unsanitized run.  Negative direction: a
thread that reaches across cores and mutates another core's thread
outside a declared barrier seam trips ``DeterminismRaceError`` at the
exact mutation site -- proving the seams are load-bearing, not
decorative.
"""

from __future__ import annotations

import pytest

from repro.analysis.races import tracker
from repro.analysis.sanitizer import (install_autosanitize,
                                      uninstall_autosanitize)
from repro.checkpoint.statetree import tree_checksum
from repro.errors import DeterminismRaceError
from repro.kernel.syscalls import Compute
from repro.kernel.thread import ThreadState
from repro.shard.builders import register_body
from repro.shard.engine import ShardedEngine
from repro.shard.plan import ShardPlan, mix_plan

# -- cross-core poke fixture bodies -------------------------------------------
#
# Registered at import time (the registry is write-once).  The victim
# body publishes its own Thread into a module-level mailbox; the evil
# body -- placed on a *different* core -- later mutates that thread's
# lifecycle state directly, which is exactly the bug class the shard
# refactor outlaws.  Real cross-core effects must travel as barrier
# payloads through the shard.barrier seam instead.

_VICTIMS: dict = {}


@register_body("test_race_victim")
def _victim_factory(core, args):
    def body(ctx):
        _VICTIMS["thread"] = ctx.thread
        while True:
            yield Compute(10.0)

    return body


@register_body("test_race_evil")
def _evil_factory(core, args):
    def body(ctx):
        while True:
            yield Compute(10.0)
            victim = _VICTIMS.get("thread")
            if (victim is not None and victim is not ctx.thread
                    and victim.state is not ThreadState.EXITED):
                # EXITED is a legal edge from every live state, so this
                # passes lifecycle validation and reaches the race trap.
                victim.transition(ThreadState.EXITED)

    return body


def _poke_plan() -> ShardPlan:
    plan = ShardPlan(seed=9, cores=2, quantum=50.0, epoch_ms=100.0)
    plan.add_thread(0, "test_race_victim", "victim", tickets=100.0)
    plan.add_thread(1, "test_race_evil", "evil", tickets=100.0)
    return plan


@pytest.fixture
def armed_tracker():
    """Activate the race tracker *before* any engine is built (threads
    are tagged to their owning kernel at construction time)."""
    tracker.activate()
    try:
        yield tracker
    finally:
        tracker.deactivate()


def test_cross_core_thread_mutation_trips_the_tracker(armed_tracker):
    with ShardedEngine(_poke_plan(), shards=2, backend="inline") as engine:
        with pytest.raises(DeterminismRaceError, match="cross-owner"):
            engine.advance(1_000.0)
    assert armed_tracker.violations >= 1


def test_same_core_mutation_is_not_a_race_violation(armed_tracker):
    """Both bodies on one core: the mutation comes from the owning
    kernel's own context, so the *race* tracker stays quiet.  The
    forced transition still corrupts the kernel's bookkeeping, and the
    kernel's own validation reports that deterministically -- a
    ThreadStateError (or, when REPRO_SANITIZE=1 has installed the
    invariant sanitizer, an InvariantViolation caught even earlier) --
    never a DeterminismRaceError."""
    from repro.errors import InvariantViolation, ThreadStateError

    plan = ShardPlan(seed=9, cores=1, quantum=50.0, epoch_ms=100.0)
    plan.add_thread(0, "test_race_victim", "victim2", tickets=100.0)
    plan.add_thread(0, "test_race_evil", "evil2", tickets=100.0)
    victims_before = dict(_VICTIMS)
    # The violation counter is cumulative across the process-wide
    # tracker's lifetime; assert on the delta, not the absolute value.
    violations_before = armed_tracker.violations
    try:
        with ShardedEngine(plan, shards=1, backend="inline") as engine:
            with pytest.raises((ThreadStateError, InvariantViolation)):
                engine.advance(1_000.0)
        assert armed_tracker.violations == violations_before
    finally:
        _VICTIMS.clear()
        _VICTIMS.update(victims_before)


def test_sanitized_sharded_run_is_clean_and_bit_identical():
    """Tracker + invariant sanitizer change nothing about a legal run."""
    plan_kwargs = {"seed": 11, "cores": 4, "with_ops": True}
    with ShardedEngine(mix_plan(**plan_kwargs), shards=2) as engine:
        engine.advance(3_000.0)
        want = (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()))

    tracker.activate()
    install_autosanitize()
    try:
        with ShardedEngine(mix_plan(**plan_kwargs), shards=2) as engine:
            engine.advance(3_000.0)
            got = (tree_checksum(engine.merged_stream()),
                   tree_checksum(engine.snapshot_state()))
    finally:
        uninstall_autosanitize()
        tracker.deactivate()
    assert got == want


def test_mp_workers_self_sanitize(monkeypatch):
    """REPRO_SANITIZE=1 at engine construction arms the tracker and the
    invariant sanitizer inside every worker process; a legal run stays
    clean and matches the unsanitized digests."""
    plan_kwargs = {"seed": 11, "cores": 4, "with_ops": True}
    with ShardedEngine(mix_plan(**plan_kwargs), shards=2) as engine:
        engine.advance(3_000.0)
        want = (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()))

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    with ShardedEngine(mix_plan(**plan_kwargs), shards=2,
                       backend="mp") as engine:
        engine.advance(3_000.0)
        got = (tree_checksum(engine.merged_stream()),
               tree_checksum(engine.snapshot_state()))
    assert got == want
