"""The ``python -m repro.shard`` CLI: run, verify, divergence reports."""

from __future__ import annotations

import pytest

from repro.shard.__main__ import _first_divergence, main


def test_run_prints_checksums(capsys):
    code = main(["run", "--plan", "mix", "--cores", "2", "--until", "1000",
                 "--backend", "inline", "--shards", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "plan=mix cores=2 backend=inline shards=2" in out
    assert "stream  " in out and "state   " in out


def test_run_is_deterministic_across_invocations(capsys):
    main(["run", "--plan", "mix-ops", "--until", "2000"])
    first = capsys.readouterr().out
    main(["run", "--plan", "mix-ops", "--until", "2000"])
    assert capsys.readouterr().out == first


def test_verify_passes_on_equivalent_backends(capsys, tmp_path):
    report = tmp_path / "divergence.txt"
    code = main(["verify", "--plan", "mix", "--cores", "4",
                 "--until", "2000", "--backends", "inline,mp",
                 "--shards", "1,2,4", "--report", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS: all combinations bit-identical" in out
    assert not report.exists()  # report only written on divergence


def test_verify_propagates_off_grid_horizon():
    """A horizon off the epoch grid fails loudly in the oracle run --
    no combination is silently skipped."""
    from repro.errors import ShardError

    with pytest.raises(ShardError, match="epoch grid"):
        main(["verify", "--until", "1234.5"])


def test_verify_records_backend_errors_and_fails(capsys, tmp_path):
    report = tmp_path / "divergence.txt"
    code = main(["verify", "--plan", "mix", "--cores", "2",
                 "--until", "1000", "--backends", "inline,warp",
                 "--shards", "1", "--report", str(report)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out
    text = report.read_text()
    assert "warp/s1: ERROR" in text
    assert "single-loop oracle" in text


def test_first_divergence_formats_index_and_length():
    a = [{"t": 1}, {"t": 2}]
    assert "index 1" in _first_divergence(a, [{"t": 1}, {"t": 9}])
    assert "length" in _first_divergence(a, [{"t": 1}])
    assert "identical" in _first_divergence(a, list(a))


def test_run_supervised_with_host_faults_matches_bare_run(capsys):
    """The supervised+faulted CLI run prints the same checksums as the
    unsupervised run of the same plan, plus a recovery line."""
    main(["run", "--plan", "mix", "--cores", "2", "--until", "1000",
          "--backend", "mp", "--shards", "2"])
    bare = capsys.readouterr().out
    code = main(["run", "--plan", "mix", "--cores", "2", "--until", "1000",
                 "--backend", "mp", "--shards", "2", "--supervise",
                 "--host-faults", "kill-every-epoch", "--deadline", "10"])
    supervised = capsys.readouterr().out
    assert code == 0
    bare_sums = [line for line in bare.splitlines()
                 if line.startswith(("stream", "state"))]
    sup_sums = [line for line in supervised.splitlines()
                if line.startswith(("stream", "state"))]
    assert bare_sums == sup_sums
    assert "recovery:" in supervised and "restarts=" in supervised


def test_host_faults_flag_requires_supervise(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--backend", "mp", "--host-faults", "chaos"])
    assert "requires --supervise" in capsys.readouterr().err


def test_verify_supervised_adds_fault_combinations(capsys):
    code = main(["verify", "--plan", "mix", "--cores", "2",
                 "--until", "1000", "--backends", "inline",
                 "--shards", "1,2", "--supervise", "--deadline", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "mp+supervise/s2" in out
    assert "mp+supervise+faults/s2" in out
    assert "PASS: all combinations bit-identical" in out


class TestObsFlags:
    """``run --obs``: observability outputs from the run CLI."""

    def test_obs_prints_trace_and_report_digests(self, capsys):
        code = main(["run", "--plan", "mix", "--until", "2000",
                     "--backend", "inline", "--shards", "2", "--obs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "obs     slices=4 slo=PASS breaches=0" in out
        assert "trace   " in out and "reportc " in out

    def test_obs_outputs_are_deterministic_and_checksummed(
            self, capsys, tmp_path):
        def run(tag):
            trace = tmp_path / f"trace-{tag}.json"
            report = tmp_path / f"report-{tag}.json"
            prom = tmp_path / f"metrics-{tag}.prom"
            assert main(["run", "--plan", "mix", "--until", "2000",
                         "--shards", "2", "--obs",
                         "--trace-out", str(trace),
                         "--report-out", str(report),
                         "--prom-out", str(prom)]) == 0
            capsys.readouterr()
            return (trace.read_bytes(), report.read_bytes(),
                    prom.read_bytes())

        first = run("a")
        assert first == run("b")  # byte-for-byte, like CI's cmp
        # every artifact carries its sidecar digest
        for name in ("trace-a.json", "report-a.json", "metrics-a.prom"):
            assert (tmp_path / (name + ".sha256")).exists()

    def test_output_flags_imply_obs(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code = main(["run", "--plan", "mix", "--until", "1000",
                     "--report-out", str(report)])
        assert code == 0 and report.exists()

    def test_obs_flags_rejected_under_verify(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--until", "1000", "--obs"])
