"""ShardedEngine protocol behaviour: grids, stop/resume, guards."""

from __future__ import annotations

import pytest

from repro.errors import KernelError, ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.plan import mix_plan, spin_plan


def test_advance_rejects_off_grid_horizons():
    with ShardedEngine(spin_plan(cores=2), shards=2) as engine:
        with pytest.raises(ShardError, match="epoch grid"):
            engine.advance(123.4)


def test_advance_rejects_going_backwards():
    with ShardedEngine(spin_plan(cores=2), shards=2) as engine:
        engine.advance(200.0)
        with pytest.raises(ShardError, match="backwards"):
            engine.advance(100.0)


def test_closed_engine_refuses_to_advance():
    engine = ShardedEngine(spin_plan(cores=2))
    engine.close()
    engine.close()  # idempotent
    with pytest.raises(ShardError, match="closed"):
        engine.advance(100.0)


def test_unknown_backend_is_an_error():
    with pytest.raises(ShardError, match="unknown shard backend"):
        ShardedEngine(spin_plan(cores=2), backend="gpu")


def test_kernel_run_until_is_barred_inside_a_sharded_run():
    """Driving one core's kernel directly would bypass the barrier
    protocol; the kernel must refuse while owned by a sharded run."""
    with ShardedEngine(spin_plan(cores=2), shards=1) as engine:
        kernel = engine.shard_kernels()[0]
        with pytest.raises(KernelError, match="ShardedEngine.advance"):
            kernel.run_until(1_000.0)


def test_stop_resume_is_bit_exact_against_a_straight_run():
    """Stopping at barriers (including several stops in a row) and
    resuming reproduces the uninterrupted run exactly."""
    plan = mix_plan(seed=11, cores=4, with_ops=True)
    with ShardedEngine(plan, shards=2) as straight:
        straight.advance(4_000.0)
        want_stream = straight.merged_stream()
        want_state = straight.snapshot_state()
    with ShardedEngine(mix_plan(seed=11, cores=4, with_ops=True),
                       shards=2) as stopping:
        for stop in (500.0, 1_000.0, 2_500.0, 4_000.0):
            stopping.advance(stop)
        assert stopping.merged_stream() == want_stream
        assert stopping.snapshot_state() == want_state


def test_snapshot_excludes_backend_and_shard_identity():
    plan_kwargs = {"seed": 11, "cores": 4}
    with ShardedEngine(mix_plan(**plan_kwargs), shards=1) as a, \
            ShardedEngine(mix_plan(**plan_kwargs), shards=4) as b:
        a.advance(1_500.0)
        b.advance(1_500.0)
        assert a.snapshot_state() == b.snapshot_state()


def test_merged_stream_is_time_then_core_ordered():
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=2) as engine:
        engine.advance(2_000.0)
        stream = engine.merged_stream()
        keys = [(entry["time"], entry["core"]) for entry in stream]
        assert keys == sorted(keys)
        assert {entry["core"] for entry in stream} == {0, 1, 2, 3}


def test_epoch_ms_override_changes_barrier_cadence():
    plan = mix_plan(seed=11, cores=4)  # plan grid: 500ms
    with ShardedEngine(plan, shards=2, epoch_ms=250.0) as engine:
        engine.advance(1_000.0)
        assert engine._barriers == 4
        with pytest.raises(ShardError, match="epoch grid"):
            engine.advance(1_125.0)


def test_cross_core_ipc_latency_depends_on_epoch_not_backend():
    """Payloads travel at barriers, so epoch length is part of the
    universe definition -- but for any given epoch the backends agree."""
    digests = {}
    for epoch_ms in (250.0, 500.0):
        per_backend = set()
        for backend in ("single", "inline"):
            plan = mix_plan(seed=11, cores=4, epoch_ms=epoch_ms)
            with ShardedEngine(plan, shards=2, backend=backend) as engine:
                engine.advance(2_000.0)
                from repro.checkpoint.statetree import tree_checksum

                per_backend.add(tree_checksum(engine.merged_stream()))
        assert len(per_backend) == 1, f"backends diverged at {epoch_ms}"
        digests[epoch_ms] = per_backend.pop()
    assert digests[250.0] != digests[500.0]


def test_mp_worker_failure_surfaces_as_shard_error():
    """A worker-side exception travels back as a ShardError naming the
    shard, not as a hang or a silent truncation."""
    plan = spin_plan(cores=2)
    engine = ShardedEngine(plan, shards=2, backend="mp")
    try:
        # Corrupt the protocol deliberately: barrier() with a payload
        # for an unknown kind makes the worker raise.
        engine._backend.barrier(0.0, [{
            "kind": "warp", "target": 1, "src": 0, "seq": 1}])
        with pytest.raises(ShardError, match="shard worker"):
            engine._backend.run_epoch(100.0)
    finally:
        engine.close()
