"""The cross-shard observability plane: one truth per plan, any backend.

The acceptance criterion for the observability plane is sha-level:
the aggregated metrics registry, the stitched Chrome trace, and the
canonical run report must be byte-identical for ``inline`` vs ``mp``
vs supervised-with-kill-every-epoch at N in {1, 2, 4} shards -- and a
forced worker crash must leave behind a checksum-valid flight bundle.
The canonical shas below are golden-pinned: a change to any of them is
a change to the scientific record and must be deliberate.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.checkpoint.statetree import tree_checksum
from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import HostFault, HostFaultPlan, kill_every_epoch
from repro.shard.plan import mix_plan
from repro.shard.supervisor import SupervisorPolicy
from repro.telemetry.flight import load_bundle, summarize_bundle

# Golden canonical digests for mix_plan(seed=11, cores=4) @ 2000ms.
GOLDEN_REPORT = ("e234a9fee8a7edbf24f3d8d2756292590e3e8b07"
                 "afb3dfa375197833a8d8f309")
GOLDEN_TRACE = ("266262cd9132f7a19c7bbdfae893808725fd0cea"
                "aa70019db63aa62e3db66a14")
#: sha256 of the canonical-JSON empty recovery annex (``[]``).
EMPTY_RECOVERY = ("4f53cda18c2baa0c0354bb5f9a3ecbe5ed12ab4d"
                  "8e11ba873c2f11161202b945")

UNTIL = 2_000.0

#: (backend, shards, supervised-with-kill-every-epoch).
COMBOS = ([("inline", n, False) for n in (1, 2, 4)]
          + [("mp", n, False) for n in (1, 2, 4)]
          + [("mp", n, True) for n in (1, 2, 4)])


def _obs_run(backend: str, shards: int, faulted: bool,
             flight_dir=None, policy=None):
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=shards,
                       backend=backend, supervise=faulted, policy=policy,
                       host_faults=kill_every_epoch(shards) if faulted
                       else None,
                       obs=True, flight_dir=flight_dir) as engine:
        engine.advance(UNTIL)
        trace = json.loads(engine.stitched_trace())
        report = engine.obs_report()
        metrics = engine.aggregated_metrics()
    return trace, report, metrics


@pytest.mark.parametrize("backend,shards,faulted", COMBOS,
                         ids=[f"{b}-s{n}{'-kill' if f else ''}"
                              for b, n, f in COMBOS])
def test_canonical_outputs_are_golden(backend, shards, faulted):
    trace, report, _ = _obs_run(backend, shards, faulted)
    assert trace["metadata"]["sha256"] == GOLDEN_TRACE
    assert report["canonical_sha256"] == GOLDEN_REPORT
    assert report["canonical"]["trace_sha256"] == GOLDEN_TRACE


def test_recovery_annex_isolated_from_canonical_record():
    """Supervisor restarts are reported, but only in the annex."""
    trace, report, _ = _obs_run("inline", 2, False)
    assert trace["metadata"]["recovery_sha256"] == EMPTY_RECOVERY

    killed_trace, killed_report, _ = _obs_run("mp", 2, True)
    assert killed_trace["metadata"]["recovery_sha256"] != EMPTY_RECOVERY
    assert killed_report["recovery"]["restarts"]
    # ...while the canonical halves stayed untouched.
    assert killed_trace["metadata"]["sha256"] == trace["metadata"]["sha256"]
    assert killed_report["canonical_sha256"] == report["canonical_sha256"]


def test_observation_does_not_perturb_the_simulation():
    """obs on/off must leave the dispatch stream and final state
    bit-identical -- observation is a read, never an actor."""
    def checksums(obs):
        with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                           backend="inline", obs=obs) as engine:
            engine.advance(UNTIL)
            return (tree_checksum(engine.merged_stream()),
                    tree_checksum(engine.snapshot_state()))

    assert checksums(obs=False) == checksums(obs=True)


def test_aggregated_registry_carries_derived_gauges():
    _, _, metrics = _obs_run("inline", 4, False)
    assert metrics["repro_obs_threads_alive"]["value"] > 0
    assert metrics["repro_obs_tickets_alive"]["value"] > 0
    assert metrics["repro_obs_cpu_ms"]["value"] > 0
    # mix_plan has cross-core RPC: payloads must have crossed barriers.
    assert metrics["repro_obs_shard_payloads_applied"]["value"] > 0


def test_slo_passes_on_the_healthy_workload():
    # 8000ms = 16 epoch slices: enough history for every watchdog
    # window (fairness 4, latency 4, starvation 6) to judge many
    # times, and long enough for lottery noise to average out.
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                       backend="inline", obs=True) as engine:
        engine.advance(8_000.0)
        slo = engine.slo_report()
    assert slo["ok"] and slo["breaches"] == []
    assert slo["checks"] > 0  # the watchdogs actually judged something


def test_obs_surface_requires_the_flag():
    with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                       backend="inline") as engine:
        engine.advance(UNTIL)
        with pytest.raises(ShardError, match="observability is off"):
            engine.metrics_view()


def test_forced_crash_writes_checksum_valid_flight_bundle(tmp_path):
    """Exhausting the retry budget must dump a verifiable bundle."""
    flight_dir = str(tmp_path / "flight")
    # Kill at epoch 2 (not 0) so earlier barriers populated the rings.
    fault = HostFaultPlan([HostFault("kill", shard=0, epoch=2)])
    with pytest.raises(ShardError) as excinfo:
        with ShardedEngine(mix_plan(seed=11, cores=4), shards=2,
                           backend="mp", supervise=True,
                           policy=SupervisorPolicy(max_retries=0,
                                                   degrade=False),
                           host_faults=fault, obs=True,
                           flight_dir=flight_dir) as engine:
            engine.advance(UNTIL)
    path = getattr(excinfo.value, "flight_bundle", None)
    assert path and os.path.exists(path)

    bundle = load_bundle(path)  # digest-verifies
    summary = summarize_bundle(bundle)
    assert summary["error"] == "ShardError"
    assert summary["cores"] == 4
    assert summary["ring_entries"] > 0
    assert bundle["plan"] == mix_plan(seed=11, cores=4).checksum()

    # Tampering must be detected.
    tampered = tmp_path / "tampered.json"
    corrupt = dict(bundle)
    corrupt["time"] = bundle["time"] + 1.0
    tampered.write_text(json.dumps(corrupt), encoding="utf-8")
    from repro.errors import ReproError
    with pytest.raises(ReproError, match="checksum mismatch"):
        load_bundle(str(tampered))


def test_flight_dir_implies_obs(tmp_path):
    engine = ShardedEngine(mix_plan(seed=11, cores=2), shards=1,
                           backend="single",
                           flight_dir=str(tmp_path / "flight"))
    try:
        assert engine.obs is not None
    finally:
        engine.close()
