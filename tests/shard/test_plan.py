"""ShardPlan validation, serialization, and topology placement."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.shard.plan import CORE_SEED_STRIDE, ShardPlan, mix_plan, spin_plan
from repro.shard.topology import ShardTopology


# -- construction and validation --------------------------------------------


def test_plan_rejects_bad_seed_cores_and_grid():
    with pytest.raises(ShardError, match="seed"):
        ShardPlan(seed=0)
    with pytest.raises(ShardError, match="core"):
        ShardPlan(cores=0)
    with pytest.raises(ShardError, match="positive"):
        ShardPlan(quantum=0.0)
    with pytest.raises(ShardError, match="positive"):
        ShardPlan(epoch_ms=-1.0)


def test_plan_rejects_unknown_body_and_core():
    # add_* appends before validating, so each invalid mutation gets a
    # fresh plan (the bad spec stays on the plan after the raise).
    with pytest.raises(ShardError, match="unregistered body"):
        ShardPlan(cores=2).add_thread(0, "no-such-body", "t", tickets=10.0)
    with pytest.raises(ShardError, match="unknown core"):
        ShardPlan(cores=2).add_thread(5, "spin", "t", tickets=10.0)


def test_plan_rejects_duplicate_names_and_nonpositive_tickets():
    with pytest.raises(ShardError, match="unique"):
        ShardPlan(cores=2).add_thread(0, "spin", "a", tickets=10.0) \
            .add_thread(1, "spin", "a", tickets=10.0)
    with pytest.raises(ShardError, match="positive tickets"):
        ShardPlan(cores=2).add_thread(1, "spin", "b", tickets=0.0)


def _seeded_plan() -> ShardPlan:
    return ShardPlan(cores=2).add_thread(0, "spin", "a", tickets=10.0)


def test_plan_rejects_bad_ops():
    with pytest.raises(ShardError, match="bad migrate"):
        _seeded_plan().migrate(at=100.0, thread="missing", src=0, dst=1)
    with pytest.raises(ShardError, match="bad crash"):
        _seeded_plan().crash(at=100.0, core=7)
    with pytest.raises(ShardError, match="non-negative"):
        _seeded_plan().migrate(at=-5.0, thread="a", src=0, dst=1)


def test_plan_rejects_bad_placement():
    with pytest.raises(ShardError, match="placement"):
        ShardPlan(cores=2, placement={5: 0})


# -- derived views -----------------------------------------------------------


def test_core_seeds_are_distinct_strided_streams():
    plan = ShardPlan(seed=7, cores=4)
    seeds = [plan.core_seed(core) for core in range(4)]
    assert seeds == [7 + CORE_SEED_STRIDE * core for core in range(4)]
    assert len(set(seeds)) == 4


def test_threads_on_and_ops_on_partition_by_source_core():
    plan = mix_plan(seed=11, cores=4, with_ops=True)
    names = {spec["name"] for core in range(4)
             for spec in plan.threads_on(core)}
    assert names == {spec["name"] for spec in plan.threads}
    # migrate is sourced on its src core, crash on the crashed core.
    assert [op["op"] for op in plan.ops_on(0)] == ["migrate"]
    assert [op["op"] for op in plan.ops_on(3)] == ["crash"]
    assert plan.ops_on(1) == [] and plan.ops_on(2) == []


# -- serialization ------------------------------------------------------------


def test_plan_round_trips_through_json_dict():
    import json

    plan = mix_plan(seed=11, cores=4, with_ops=True)
    plan.placement[3] = 0
    data = json.loads(json.dumps(plan.to_dict()))
    rebuilt = ShardPlan.from_dict(data)
    assert rebuilt.to_dict() == plan.to_dict()
    assert rebuilt.checksum() == plan.checksum()
    assert rebuilt.placement == {3: 0}


def test_checksum_is_sensitive_to_every_field():
    base = spin_plan(seed=97, cores=2, spinners=1).checksum()
    assert spin_plan(seed=98, cores=2, spinners=1).checksum() != base
    assert spin_plan(seed=97, cores=3, spinners=1).checksum() != base
    assert spin_plan(seed=97, cores=2, spinners=2).checksum() != base


# -- topology -----------------------------------------------------------------


def test_topology_default_is_modulo_hash():
    topo = ShardTopology(cores=5, shards=2)
    assert [topo.shard_of(c) for c in range(5)] == [0, 1, 0, 1, 0]
    assert topo.cores_of(0) == [0, 2, 4]
    assert topo.cores_of(1) == [1, 3]


def test_topology_placement_pins_cores():
    topo = ShardTopology(cores=4, shards=2, placement={3: 0})
    assert topo.shard_of(3) == 0
    assert topo.cores_of(0) == [0, 2, 3]
    assert topo.cores_of(1) == [1]


def test_topology_rejects_out_of_range():
    with pytest.raises(ShardError):
        ShardTopology(cores=0, shards=1)
    with pytest.raises(ShardError):
        ShardTopology(cores=2, shards=0)
    with pytest.raises(ShardError, match="placed on shard"):
        ShardTopology(cores=2, shards=2, placement={0: 5})
    topo = ShardTopology(cores=2, shards=2)
    with pytest.raises(ShardError):
        topo.shard_of(9)
    with pytest.raises(ShardError):
        topo.cores_of(9)


def test_placement_changes_execution_not_results():
    """Placement is pure configuration: pinning every core onto one
    shard must not move a single bit of the merged history."""
    from repro.shard.engine import ShardedEngine

    default = mix_plan(seed=11, cores=4)
    pinned = mix_plan(seed=11, cores=4)
    pinned.placement.update({0: 1, 1: 1, 2: 1, 3: 1})
    with ShardedEngine(default, shards=2) as a, \
            ShardedEngine(pinned, shards=2) as b:
        a.advance(2_000.0)
        b.advance(2_000.0)
        assert a.merged_stream() == b.merged_stream()
        # The state trees differ only in the plan checksum (placement
        # is part of plan identity), never in core state.
        assert a.snapshot_state()["cores"] == b.snapshot_state()["cores"]
