"""Supervised mp backend: recovery under every host-fault kind, with
bit-exact equivalence against the undisturbed single-loop run.

Every equivalence test follows the acceptance shape: run the universe
once undisturbed (single-loop oracle), once supervised with faults
injected, and require sha256-identical merged replay streams and final
state trees.  Host faults must never change a byte of the simulated
history -- that is the whole contract.
"""

from __future__ import annotations

import pytest

from repro.checkpoint.statetree import tree_checksum
from repro.errors import ShardError
from repro.shard.engine import ShardedEngine
from repro.shard.hostfaults import (
    HostFault,
    HostFaultPlan,
    kill_every_epoch,
)
from repro.shard.plan import mix_plan
from repro.shard.supervisor import SupervisorPolicy
from repro.telemetry import Telemetry

UNTIL = 1_500.0  # three 500ms epochs: enough for cross-core traffic

#: Fast recovery for tests: tight backoff, still-generous deadline.
FAST = SupervisorPolicy(max_retries=3, deadline_s=15.0,
                        backoff_base_s=0.01, backoff_max_s=0.05)

#: Short deadline for faults that must *expire* it (wedge, drop).
SHORT_DEADLINE = SupervisorPolicy(max_retries=3, deadline_s=1.5,
                                  backoff_base_s=0.01, backoff_max_s=0.05)


def _plan():
    return mix_plan(seed=11, cores=4)


def _oracle():
    with ShardedEngine(_plan(), shards=1, backend="single") as engine:
        engine.advance(UNTIL)
        return (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()))


def _supervised(host_faults=None, policy=FAST, shards=4, telemetry=None):
    engine = ShardedEngine(_plan(), shards=shards, backend="mp",
                           supervise=True, policy=policy,
                           host_faults=host_faults, telemetry=telemetry)
    with engine:
        engine.advance(UNTIL)
        return (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()),
                engine.recovery_summary())


# -- policy --------------------------------------------------------------------


def test_policy_validates_its_fields():
    with pytest.raises(ShardError, match="max_retries"):
        SupervisorPolicy(max_retries=-1)
    with pytest.raises(ShardError, match="deadline_s"):
        SupervisorPolicy(deadline_s=0.0)
    with pytest.raises(ShardError, match="backoff_factor"):
        SupervisorPolicy(backoff_factor=0.5)
    with pytest.raises(ShardError, match=">= 0"):
        SupervisorPolicy(backoff_base_s=-1.0)


def test_policy_backoff_is_exponential_and_capped():
    policy = SupervisorPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                              backoff_max_s=0.3)
    assert policy.backoff_for(1) == pytest.approx(0.1)
    assert policy.backoff_for(2) == pytest.approx(0.2)
    assert policy.backoff_for(3) == pytest.approx(0.3)  # capped
    assert policy.backoff_for(9) == pytest.approx(0.3)
    with pytest.raises(ShardError, match="1-based"):
        policy.backoff_for(0)


# -- engine wiring guards ------------------------------------------------------


def test_supervise_requires_the_mp_backend():
    with pytest.raises(ShardError, match="requires backend='mp'"):
        ShardedEngine(_plan(), shards=2, backend="inline", supervise=True)


def test_host_faults_require_supervision():
    with pytest.raises(ShardError, match="require supervise"):
        ShardedEngine(_plan(), shards=2, backend="mp",
                      host_faults=kill_every_epoch())


def test_out_of_range_fault_plan_is_rejected_at_construction():
    with pytest.raises(ShardError, match="only 2 shard"):
        ShardedEngine(_plan(), shards=2, backend="mp", supervise=True,
                      host_faults=HostFaultPlan(
                          [HostFault("kill", shard=3, epoch=0)]))


def test_unsupervised_recovery_summary_is_empty():
    with ShardedEngine(_plan(), shards=2) as engine:
        summary = engine.recovery_summary()
    assert summary["degraded"] is False
    assert summary["events"] == []


# -- no-fault equivalence and the acceptance plan ------------------------------


def test_supervised_run_without_faults_matches_oracle():
    want_stream, want_state = _oracle()
    stream, state, recovery = _supervised()
    assert (stream, state) == (want_stream, want_state)
    assert sum(recovery["restarts"]) == 0
    assert recovery["degraded"] is False


def test_worker_killed_at_every_epoch_barrier_is_bit_exact():
    """The acceptance bar: a 4-shard supervised run with a worker
    SIGKILLed at every epoch barrier completes with merged stream and
    final state sha256-identical to the undisturbed single-loop run."""
    want_stream, want_state = _oracle()
    stream, state, recovery = _supervised(host_faults=kill_every_epoch(4))
    assert (stream, state) == (want_stream, want_state)
    assert sum(recovery["restarts"]) >= 3  # one per epoch slice at least
    assert recovery["degraded"] is False
    kinds = {event["kind"] for event in recovery["events"]}
    assert {"fault.armed", "fault.detected", "worker.restart",
            "epoch.retry"} <= kinds


# -- one test per fault kind ---------------------------------------------------


def _single_fault(kind, **kwargs):
    return HostFaultPlan([HostFault(kind, shard=1, epoch=1, **kwargs)])


def test_crash_mid_epoch_recovers_bit_exact():
    """point='post' kills after the epoch's work, before the reply --
    the classic crash mid-epoch with committed work lost."""
    want = _oracle()
    stream, state, recovery = _supervised(host_faults=_single_fault("kill"))
    assert (stream, state) == want
    assert recovery["restarts"][1] == 1


def test_crash_before_epoch_work_recovers_bit_exact():
    want = _oracle()
    stream, state, recovery = _supervised(
        host_faults=_single_fault("kill", point="pre"))
    assert (stream, state) == want
    assert recovery["restarts"][1] == 1


def test_hung_worker_trips_the_deadline_and_recovers():
    want = _oracle()
    stream, state, recovery = _supervised(
        host_faults=_single_fault("wedge"), policy=SHORT_DEADLINE)
    assert (stream, state) == want
    assert recovery["restarts"][1] == 1
    hangs = [event for event in recovery["events"]
             if event["kind"] == "fault.detected"]
    assert hangs and hangs[0]["failure"] == "hang"


def test_corrupt_frame_is_rejected_and_recovered():
    want = _oracle()
    stream, state, recovery = _supervised(host_faults=_single_fault("corrupt"))
    assert (stream, state) == want
    detected = [event for event in recovery["events"]
                if event["kind"] == "fault.detected"]
    assert detected and detected[0]["failure"] == "corrupt"


def test_dropped_reply_expires_the_deadline_and_recovers():
    want = _oracle()
    stream, state, recovery = _supervised(
        host_faults=_single_fault("drop"), policy=SHORT_DEADLINE)
    assert (stream, state) == want
    assert recovery["restarts"][1] == 1


def test_slow_reply_within_deadline_needs_no_recovery():
    want = _oracle()
    stream, state, recovery = _supervised(
        host_faults=_single_fault("slow", delay_s=0.05))
    assert (stream, state) == want
    assert sum(recovery["restarts"]) == 0
    assert recovery["faults_armed"] == 1


def test_double_fault_crash_during_recovery_still_recovers():
    """Two identical kill entries: the retried exchange crashes too;
    the third attempt completes.  Budget (3) is not exhausted."""
    want = _oracle()
    fault = HostFault("kill", shard=0, epoch=1)
    stream, state, recovery = _supervised(
        host_faults=HostFaultPlan([fault, fault]))
    assert (stream, state) == want
    assert recovery["restarts"][0] == 2
    assert recovery["degraded"] is False


# -- budget exhaustion and degradation -----------------------------------------


def test_budget_exhaustion_degrades_to_inline_bit_exact():
    """max_retries=0 means the first kill exhausts the budget: the
    run must migrate to the inline backend mid-run and still finish
    sha256-identical to the oracle."""
    want_stream, want_state = _oracle()
    policy = SupervisorPolicy(max_retries=0, deadline_s=15.0,
                              backoff_base_s=0.01)
    stream, state, recovery = _supervised(
        host_faults=kill_every_epoch(4), policy=policy)
    assert (stream, state) == (want_stream, want_state)
    assert recovery["degraded"] is True
    assert "retry budget" in recovery["degrade_reason"]
    kinds = [event["kind"] for event in recovery["events"]]
    assert "backend.degrade" in kinds


def test_budget_exhaustion_without_degradation_raises():
    policy = SupervisorPolicy(max_retries=0, deadline_s=15.0,
                              backoff_base_s=0.01, degrade=False)
    with ShardedEngine(_plan(), shards=4, backend="mp", supervise=True,
                       policy=policy,
                       host_faults=kill_every_epoch(4)) as engine:
        with pytest.raises(ShardError, match="retry budget"):
            engine.advance(UNTIL)


def test_degraded_engine_keeps_serving_and_closes_cleanly():
    policy = SupervisorPolicy(max_retries=0, deadline_s=15.0,
                              backoff_base_s=0.01)
    with ShardedEngine(_plan(), shards=4, backend="mp", supervise=True,
                       policy=policy,
                       host_faults=kill_every_epoch(4)) as engine:
        engine.advance(500.0)
        assert engine.recovery_summary()["degraded"] is True
        engine.advance(UNTIL)  # inline mode keeps advancing
        assert engine.merged_stream()
        assert engine.shard_kernels() == []  # stays mp-shaped


# -- deterministic errors are not host faults ----------------------------------


def test_deterministic_worker_error_is_not_retried():
    """A worker *exception* (bad barrier payload) would recur on every
    retry; it must surface immediately with the real traceback, and
    the recovery machinery must not have burned any restarts."""
    with ShardedEngine(_plan(), shards=2, backend="mp",
                       supervise=True, policy=FAST) as engine:
        backend = engine._backend
        backend.barrier(0.0, [{"kind": "warp", "target": 1, "src": 0,
                               "seq": 1}])
        with pytest.raises(ShardError, match="shard worker"):
            backend.run_epoch(500.0)
        assert sum(backend.restarts) == 0


# -- telemetry -----------------------------------------------------------------


def test_recovery_events_flow_through_telemetry():
    telemetry = Telemetry()
    stream, state, recovery = _supervised(
        host_faults=_single_fault("kill"), telemetry=telemetry)
    restarts = telemetry.registry.counter("shard.worker.restart",
                                          {"shard": "1"})
    retries = telemetry.registry.counter("shard.epoch.retry",
                                         {"shard": "1"})
    assert restarts.value == 1.0
    assert retries.value == 1.0
    names = {span.name for span in telemetry.tracer.spans}
    assert "shard.worker.restart" in names
    assert "shard.fault.detected" in names
