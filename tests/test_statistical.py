"""Statistical validation with scipy: formal goodness-of-fit tests.

The distribution tests elsewhere use generous tolerance bands; these
use proper hypothesis tests (chi-square, Kolmogorov-Smirnov) at a very
conservative significance level so they are simultaneously meaningful
and non-flaky: all randomness comes from fixed Park-Miller seeds, so a
pass today is a pass forever.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.lottery import TreeLottery, hold_lottery
from repro.core.inverse import inverse_lottery, inverse_probabilities
from repro.core.prng import ParkMillerPRNG

ALPHA = 1e-4  # reject only on overwhelming evidence


class TestPrngQuality:
    def test_uniform_ks(self):
        prng = ParkMillerPRNG(123)
        sample = np.array([prng.uniform() for _ in range(50_000)])
        _, p_value = scipy_stats.kstest(sample, "uniform")
        assert p_value > ALPHA

    def test_randrange_chi_square(self):
        prng = ParkMillerPRNG(456)
        bins = 16
        counts = np.zeros(bins)
        n = 64_000
        for _ in range(n):
            counts[prng.randrange(bins)] += 1
        _, p_value = scipy_stats.chisquare(counts)
        assert p_value > ALPHA

    def test_expovariate_ks(self):
        prng = ParkMillerPRNG(789)
        rate = 0.5
        sample = np.array([prng.expovariate(rate) for _ in range(30_000)])
        _, p_value = scipy_stats.kstest(sample, "expon",
                                        args=(0, 1.0 / rate))
        assert p_value > ALPHA

    def test_lagged_correlation_negligible(self):
        prng = ParkMillerPRNG(321)
        sample = np.array([prng.uniform() for _ in range(50_000)])
        for lag in (1, 2, 7):
            corr = np.corrcoef(sample[:-lag], sample[lag:])[0, 1]
            assert abs(corr) < 0.02


class TestLotteryDistributions:
    def test_win_counts_chi_square(self):
        """Lottery wins over unequal tickets pass a chi-square test
        against the exact multinomial expectation (section 2.2)."""
        tickets = {"a": 10.0, "b": 7.0, "c": 2.0, "d": 1.0}
        entries = list(tickets.items())
        prng = ParkMillerPRNG(2718)
        n = 60_000
        wins = {name: 0 for name in tickets}
        for _ in range(n):
            wins[hold_lottery(entries, prng)] += 1
        total = sum(tickets.values())
        observed = np.array([wins[name] for name in tickets])
        expected = np.array(
            [n * tickets[name] / total for name in tickets]
        )
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA

    def test_tree_lottery_chi_square(self):
        tickets = {f"c{i}": float(i + 1) for i in range(8)}
        tree = TreeLottery()
        for name, value in tickets.items():
            tree.add(name, value)
        prng = ParkMillerPRNG(1618)
        n = 72_000
        wins = {name: 0 for name in tickets}
        for _ in range(n):
            wins[tree.draw(prng)] += 1
        total = sum(tickets.values())
        observed = np.array([wins[name] for name in tickets])
        expected = np.array(
            [n * tickets[name] / total for name in tickets]
        )
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA

    def test_first_win_wait_is_geometric(self):
        """Lotteries until first win ~ Geometric(p) (section 2.2)."""
        p = 0.2
        prng = ParkMillerPRNG(555)
        entries = [("target", p), ("rest", 1 - p)]
        waits = []
        for _ in range(20_000):
            count = 1
            while hold_lottery(entries, prng) != "target":
                count += 1
            waits.append(count)
        waits = np.array(waits)
        # Mean and variance against the law...
        assert waits.mean() == pytest.approx(1 / p, rel=0.03)
        assert waits.var() == pytest.approx((1 - p) / p**2, rel=0.06)
        # ...and a chi-square over the head of the distribution.
        max_k = 25
        observed = np.array(
            [(waits == k).sum() for k in range(1, max_k)]
            + [(waits >= max_k).sum()]
        )
        probabilities = np.array(
            [(1 - p) ** (k - 1) * p for k in range(1, max_k)]
            + [(1 - p) ** (max_k - 1)]
        )
        _, p_value = scipy_stats.chisquare(
            observed, probabilities * len(waits)
        )
        assert p_value > ALPHA

    def test_win_counts_binomial_variance(self):
        """Across many independent blocks, the win count's variance
        matches np(1-p), not just its mean."""
        p = 0.3
        prng = ParkMillerPRNG(9090)
        entries = [("t", p), ("rest", 1 - p)]
        block = 200
        blocks = 600
        counts = []
        for _ in range(blocks):
            wins = sum(
                1 for _ in range(block)
                if hold_lottery(entries, prng) == "t"
            )
            counts.append(wins)
        counts = np.array(counts)
        assert counts.mean() == pytest.approx(block * p, rel=0.02)
        assert counts.var() == pytest.approx(
            block * p * (1 - p), rel=0.15
        )


class TestInverseLotteryDistribution:
    def test_loss_counts_chi_square(self):
        entries = [("a", 6.0), ("b", 3.0), ("c", 1.0)]
        expected_probabilities = dict(inverse_probabilities(entries))
        prng = ParkMillerPRNG(777)
        n = 45_000
        losses = {name: 0 for name, _ in entries}
        for _ in range(n):
            losses[inverse_lottery(entries, prng)] += 1
        observed = np.array([losses[name] for name, _ in entries])
        expected = np.array(
            [n * expected_probabilities[name] for name, _ in entries]
        )
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA


class TestSchedulerDistribution:
    def test_kernel_dispatches_are_binomial(self):
        """End-to-end: a thread's dispatch count over N quanta passes a
        binomial z-test at its ticket share."""
        from tests.conftest import make_lottery_kernel, spin_body

        kernel = make_lottery_kernel(seed=31415)
        a = kernel.spawn(spin_body(100.0), "a", tickets=300)
        kernel.spawn(spin_body(100.0), "b", tickets=100)
        lotteries = 4000
        kernel.run_until(lotteries * 100.0)
        p = 0.75
        wins = a.dispatches
        z = (wins - lotteries * p) / np.sqrt(lotteries * p * (1 - p))
        assert abs(z) < 4.0
