"""Property-based tests over randomly generated currency graphs.

Hypothesis builds random acyclic funding graphs (layered DAGs of
currencies with random ticket amounts and random active/inactive
leaves) and checks the global valuation laws: conservation from base to
leaves, cycle rejection for every back edge, and insulation (mutating
one subtree never changes a disjoint subtree's value).
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.core.tickets import Ledger, TicketHolder
from repro.errors import CurrencyCycleError

amounts = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)

# A layered DAG spec: layer sizes plus per-edge amounts chosen by data.
layer_sizes = st.lists(st.integers(min_value=1, max_value=3),
                       min_size=1, max_size=3)


def build_layered_graph(ledger, sizes, data):
    """Base -> layer0 -> layer1 -> ... -> holders; returns (layers, holders)."""
    layers = []
    previous = [None]  # None denotes base
    for depth, width in enumerate(sizes):
        layer = []
        for index in range(width):
            currency = ledger.create_currency(f"L{depth}C{index}")
            # Fund from 1..len(previous) random parents.
            parent_count = data.draw(
                st.integers(min_value=1, max_value=len(previous))
            )
            for p in range(parent_count):
                parent = previous[(index + p) % len(previous)]
                amount = data.draw(amounts)
                if parent is None:
                    ledger.create_ticket(amount, fund=currency)
                else:
                    ledger.create_ticket(amount, currency=parent,
                                         fund=currency)
            layer.append(currency)
        layers.append(layer)
        previous = layer
    holders = []
    for index, currency in enumerate(layers[-1]):
        for h in range(data.draw(st.integers(min_value=1, max_value=2))):
            holder = TicketHolder(f"h{index}.{h}")
            ledger.create_ticket(data.draw(amounts), currency=currency,
                                 fund=holder)
            holders.append(holder)
    return layers, holders


class TestRandomGraphs:
    @given(layer_sizes, st.data())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_base_to_leaves(self, sizes, data):
        """With every holder active, total holder funding equals the
        total base issue that is transitively consumed."""
        ledger = Ledger()
        _, holders = build_layered_graph(ledger, sizes, data)
        for holder in holders:
            holder.start_competing()
        total_funding = sum(h.funding() for h in holders)
        # Every base ticket funds a currency that (transitively) has
        # active consumers, so all base issue is active and delivered.
        assert math.isclose(total_funding, ledger.base.active_amount,
                            rel_tol=1e-6)
        assert ledger.base.active_amount > 0

    @given(layer_sizes, st.data())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_back_edge_rejected(self, sizes, data):
        """Funding any ancestor with a descendant's tickets must raise."""
        ledger = Ledger()
        layers, holders = build_layered_graph(ledger, sizes, data)
        for holder in holders:
            holder.start_competing()
        if len(layers) < 2:
            return
        descendant = layers[-1][0]
        ancestor = layers[0][0]
        back_edge = ledger.create_ticket(10.0, currency=descendant)
        with pytest.raises(CurrencyCycleError):
            back_edge.fund(ancestor)

    @given(st.data())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_disjoint_subtree_insulation(self, data):
        """Arbitrary inflation inside subtree B never changes subtree
        A's delivered value (the Figure 9 property, generalized)."""
        ledger = Ledger()
        values = {}
        holders = {}
        for side in ("A", "B"):
            currency = ledger.create_currency(side)
            ledger.create_ticket(data.draw(amounts), fund=currency)
            side_holders = []
            for index in range(data.draw(st.integers(1, 3))):
                holder = TicketHolder(f"{side}{index}")
                ledger.create_ticket(data.draw(amounts),
                                     currency=currency, fund=holder)
                holder.start_competing()
                side_holders.append(holder)
            holders[side] = side_holders
            values[side] = sum(h.funding() for h in side_holders)
        # Random mutations inside B only.
        b_currency = ledger.currency("B")
        for _ in range(data.draw(st.integers(1, 4))):
            action = data.draw(st.sampled_from(["inflate", "join", "leave"]))
            if action == "inflate":
                target = holders["B"][
                    data.draw(st.integers(0, len(holders["B"]) - 1))
                ]
                target.tickets[0].set_amount(data.draw(amounts))
            elif action == "join":
                newcomer = TicketHolder("Bnew")
                ledger.create_ticket(data.draw(amounts),
                                     currency=b_currency, fund=newcomer)
                newcomer.start_competing()
                holders["B"].append(newcomer)
            else:
                victim = holders["B"][
                    data.draw(st.integers(0, len(holders["B"]) - 1))
                ]
                victim.stop_competing()
        # A's delivered value is untouched if anyone in B still competes;
        # in every case each individual A holder's value follows only A.
        a_total = sum(h.funding() for h in holders["A"])
        assert math.isclose(a_total, values["A"], rel_tol=1e-6)
