"""Unit tests for the repro.perf harness, baselines, and CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.perf.baseline import (compare_reports, format_comparison_table,
                                 load_report, write_report)
from repro.perf.harness import (CALIBRATION_NAME, BenchmarkResult, PerfReport,
                                environment_fingerprint, percentile,
                                run_benchmarks)


def _result(name: str, ops_per_sec: float,
            normalized: float = None) -> BenchmarkResult:
    return BenchmarkResult(
        name=name, params={}, reps=3, ops=100, ops_per_sec=ops_per_sec,
        normalized=normalized, p50_ms=1.0, p95_ms=2.0, samples_ms=[1.0],
    )


def _report(calibration, *results) -> PerfReport:
    return PerfReport(fingerprint=environment_fingerprint(),
                      calibration_ops_per_sec=calibration,
                      results=list(results))


# -- percentile -------------------------------------------------------------


def test_percentile_nearest_rank():
    samples = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 0.5) == 3.0
    assert percentile(samples, 1.0) == 5.0


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ReproError):
        percentile([], 0.5)
    with pytest.raises(ReproError):
        percentile([1.0], 1.5)


# -- run_benchmarks ---------------------------------------------------------


def test_run_benchmarks_times_and_normalizes():
    calls = []

    def setup():
        def fn():
            calls.append(1)
        return fn, 10

    report = run_benchmarks([("toy.noop", {"n": 10}, setup)], reps=3)
    assert len(calls) == 3  # fresh setup per repetition
    assert report.calibration_ops_per_sec > 0
    entry = report.result("toy.noop")
    assert entry is not None
    assert entry.ops == 10
    assert entry.reps == 3
    assert entry.ops_per_sec > 0
    assert entry.normalized == pytest.approx(
        entry.ops_per_sec / report.calibration_ops_per_sec)
    assert len(entry.samples_ms) == 3
    assert report.result(CALIBRATION_NAME) is not None


def test_run_benchmarks_filter_keeps_calibration():
    def setup():
        return (lambda: None), 1

    report = run_benchmarks(
        [("keep.me", {}, setup), ("drop.me", {}, setup)],
        reps=1, name_filter="keep")
    names = [entry.name for entry in report.results]
    assert CALIBRATION_NAME in names
    assert "keep.me" in names
    assert "drop.me" not in names


def test_run_benchmarks_rejects_nonpositive_reps():
    with pytest.raises(ReproError):
        run_benchmarks([], reps=0)


# -- report round-trip ------------------------------------------------------


def test_report_round_trips_through_json(tmp_path):
    report = _report(1000.0, _result("a.b", 50.0, normalized=0.05))
    path = tmp_path / "BENCH_perf.json"
    write_report(str(path), report)
    loaded = load_report(str(path))
    assert loaded.calibration_ops_per_sec == 1000.0
    assert loaded.result("a.b").ops_per_sec == 50.0
    assert loaded.result("a.b").normalized == 0.05
    # Schema markers are present in the file itself.
    data = json.loads(path.read_text())
    assert data["format"] == "repro-perf"
    assert data["schema_version"] == 1


def test_load_report_rejects_wrong_format_and_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "other", "schema_version": 1}))
    with pytest.raises(ReproError, match="not a repro-perf report"):
        load_report(str(path))
    path.write_text(json.dumps({"format": "repro-perf",
                                "schema_version": 999}))
    with pytest.raises(ReproError, match="schema"):
        load_report(str(path))
    path.write_text("not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        load_report(str(path))
    with pytest.raises(ReproError, match="cannot read"):
        load_report(str(tmp_path / "missing.json"))


# -- comparison -------------------------------------------------------------


def test_compare_flags_regression_beyond_tolerance():
    baseline = _report(1000.0, _result("x", 100.0, normalized=0.1))
    current = _report(1000.0, _result("x", 70.0, normalized=0.07))
    comparison = compare_reports(current, baseline, tolerance=0.25)
    assert comparison.normalized is True
    (delta,) = comparison.deltas
    assert delta.status == "regression"
    assert delta.ratio == pytest.approx(0.7)
    assert not comparison.passed


def test_compare_within_tolerance_passes():
    baseline = _report(1000.0, _result("x", 100.0, normalized=0.1))
    current = _report(1000.0, _result("x", 80.0, normalized=0.08))
    comparison = compare_reports(current, baseline, tolerance=0.25)
    assert comparison.deltas[0].status == "ok"
    assert comparison.passed


def test_compare_normalization_absorbs_host_speed():
    # Baseline host is 2x faster in raw terms; normalized scores are
    # identical, so a half-speed host must still pass.
    baseline = _report(2000.0, _result("x", 200.0, normalized=0.1))
    current = _report(1000.0, _result("x", 100.0, normalized=0.1))
    comparison = compare_reports(current, baseline, tolerance=0.1)
    assert comparison.deltas[0].status == "ok"
    assert comparison.passed


def test_compare_improvement_new_and_missing_never_fail():
    baseline = _report(None, _result("fast", 100.0), _result("gone", 10.0))
    current = _report(None, _result("fast", 300.0), _result("fresh", 5.0))
    comparison = compare_reports(current, baseline, tolerance=0.25)
    assert comparison.normalized is False  # no calibration on either side
    statuses = {d.name: d.status for d in comparison.deltas}
    assert statuses == {"fast": "improvement", "gone": "missing",
                        "fresh": "new"}
    assert comparison.passed


def test_compare_rejects_bad_tolerance():
    report = _report(None)
    with pytest.raises(ReproError):
        compare_reports(report, report, tolerance=1.0)


def test_format_comparison_table_plain_and_markdown():
    baseline = _report(1000.0, _result("x", 100.0, normalized=0.1))
    current = _report(1000.0, _result("x", 50.0, normalized=0.05))
    comparison = compare_reports(current, baseline, tolerance=0.25)
    plain = format_comparison_table(comparison)
    assert "FAIL" in plain and "x" in plain
    markdown = format_comparison_table(comparison, markdown=True)
    assert markdown.startswith("### Perf gate: FAIL")
    assert "| x |" in markdown


# -- suite shape ------------------------------------------------------------


def test_benchmark_suite_names_are_unique_and_parameterized():
    from repro.perf.benchmarks import benchmark_suite

    suite = benchmark_suite(quick=False)
    names = [name for name, _, _ in suite]
    assert len(names) == len(set(names))
    assert "dispatch.tree.10000" in names  # the acceptance benchmark
    for name, params, setup in suite:
        assert isinstance(params, dict)
        assert callable(setup)


def test_quick_suite_keeps_names_but_shrinks_loops():
    from repro.perf.benchmarks import benchmark_suite

    full = {name: params for name, params, _ in benchmark_suite(quick=False)}
    quick = {name: params for name, params, _ in benchmark_suite(quick=True)}
    # Same coverage, smaller loops -- except the mp-backend shard
    # benchmarks, which are full-mode only (worker startup and pipe
    # costs dominate a 5-epoch run, making quick scores meaningless
    # against the full-mode baseline).
    assert set(quick) == {name for name in full if ".mp." not in name}
    assert quick["draw.list.1000"]["draws"] < full["draw.list.1000"]["draws"]
    assert (quick["dispatch.tree.10000"]["quanta"]
            < full["dispatch.tree.10000"]["quanta"])


def test_dispatch_benchmark_is_deterministic():
    """Two setups of the same benchmark run identical simulations."""
    from repro.perf.benchmarks import benchmark_suite

    suite = {name: setup for name, _, setup in benchmark_suite(quick=True)}
    setup = suite["dispatch.list.100"]
    fn_a, ops_a = setup()
    fn_b, ops_b = setup()
    assert ops_a == ops_b
    fn_a()
    fn_b()  # byte-identical virtual runs; must simply not diverge/crash


# -- CLI --------------------------------------------------------------------


def _run_cli(args):
    from repro.perf.__main__ import main

    return main(args)


def test_cli_quick_run_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    code = _run_cli(["--quick", "--reps", "1", "--filter", "draw.list",
                     "--output", str(out)])
    assert code == 0
    report = load_report(str(out))
    assert report.result(CALIBRATION_NAME) is not None


def test_cli_compare_gates_on_regression(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    baseline_path = tmp_path / "baseline.json"
    code = _run_cli(["--quick", "--reps", "1", "--filter", "draw.list",
                     "--output", str(out),
                     "--write-baseline", str(baseline_path)])
    assert code == 0

    # Same machine, same suite: comparing against the just-written
    # baseline must pass at any sane tolerance.
    code = _run_cli(["--quick", "--reps", "1", "--filter", "draw.list",
                     "--output", str(out),
                     "--compare", str(baseline_path),
                     "--tolerance", "0.9"])
    assert code == 0

    # Forge an impossible baseline: the gate must fail.
    forged = load_report(str(baseline_path))
    for entry in forged.results:
        if entry.name != CALIBRATION_NAME:
            entry.normalized = (entry.normalized or 1.0) * 1e6
            entry.ops_per_sec *= 1e6
    write_report(str(baseline_path), forged)
    code = _run_cli(["--quick", "--reps", "1", "--filter", "draw.list",
                     "--output", str(out),
                     "--compare", str(baseline_path),
                     "--tolerance", "0.25"])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_list_prints_suite(capsys):
    code = _run_cli(["--list"])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispatch.tree.10000" in out
