"""Same-seed equivalence: the hot-path optimizations change nothing.

Every optimization this package carries -- the funding cache in
``repro.core.tickets``, dirty-member Fenwick refresh in
``repro.schedulers.lottery_policy``, the args-based event queue --
claims to be *bit-exact*: same seed, same dispatch stream, same
checkpoint state tree.  These tests prove it two ways:

1. **Golden checksums.** The replay-stream and state-tree sha256 of
   four reference runs are pinned to the values the pre-optimization
   code produced.  Any behavioural drift in the dispatch loop, however
   subtle, changes these digests.

2. **Mode cross-check.** The optimizations keep escape hatches
   (``set_funding_cache_enabled``, ``set_full_refresh``) that force the
   historical recompute-everything behaviour.  Each reference run is
   executed in optimized and unoptimized mode and the digests compared;
   the pair must be identical, not merely "both plausible".
"""

from __future__ import annotations

import pytest

import repro.core.tickets as tickets_mod
import repro.schedulers.lottery_policy as policy_mod
from repro.checkpoint.capture import capture_tree
from repro.checkpoint.registry import build_recipe
from repro.checkpoint.replay import ReplayRecorder
from repro.checkpoint.statetree import tree_checksum

#: (recipe, args, horizon, stream sha256, state-tree sha256) captured
#: from the pre-optimization implementation (linear funding recompute,
#: full Fenwick refresh per draw, tuple-heap event queue).
GOLDEN = [
    ("lottery-mix", {"seed": 1}, 30_000.0,
     "f9bec250fd208e5f77038c91e36f6ee4ef861498a780684eb275608f2323d65e",
     "53ce052ace9d065f9956e1f575eab25b021856e88ba276dc9ff5dabc58e0aa46"),
    ("lottery-mix", {"seed": 42, "use_tree": True}, 30_000.0,
     "fd67e659a70bba30fffb444d18d7d2a4ebed2a0d320a9f51bad84aea938f42f2",
     "f8618ed4c3e28bbb4eb2b8106ad88bdd0e1abdb86511f5bef04b58ece6aa8225"),
    ("lottery-mix",
     {"seed": 7, "fundings": [300.0, 150.0, 75.0, 25.0], "quantum": 50.0},
     20_000.0,
     "5c956b33db05d9d07737fca69f6f8dfd2310c512cb8424fcfef8e36509915cbc",
     "8401ab54ec1ccd35099825c5dce1978d7bcedbe2541d48f3622969aa77564176"),
    ("chaos-fairness", {"seed": 2718}, 60_000.0,
     "844843bb106e4983cc6287d5a5ff3d6b13a8ac52973a436c99e2bc61f0838c12",
     "121382c3080e424d4cd7b7f6aaf2f7cd10d1e728f1b6c0cfe0fdbb81741eadda"),
]

_IDS = [f"{recipe}-{args.get('seed')}" for recipe, args, *_ in GOLDEN]


def _run(recipe: str, args: dict, until: float) -> tuple:
    """(stream checksum, state-tree checksum) of one reference run."""
    handle = build_recipe(recipe, args)
    recorder = ReplayRecorder()
    for kernel in handle.kernels():
        kernel.attach_recorder(recorder)
    handle.advance(until)
    stream = tree_checksum(recorder.entries)
    for kernel in handle.kernels():
        kernel.detach_recorder(recorder)
    state = tree_checksum(capture_tree(handle))
    return stream, state


@pytest.fixture
def unoptimized_mode():
    """Force the historical slow paths for the duration of a test."""
    was_cache = tickets_mod.set_funding_cache_enabled(False)
    was_refresh = policy_mod.set_full_refresh(True)
    try:
        yield
    finally:
        tickets_mod.set_funding_cache_enabled(was_cache)
        policy_mod.set_full_refresh(was_refresh)


@pytest.mark.parametrize("recipe, args, until, stream, state", GOLDEN,
                         ids=_IDS)
def test_optimized_run_matches_golden_checksums(recipe, args, until,
                                                stream, state):
    """The optimized hot paths reproduce the pre-optimization digests."""
    got_stream, got_state = _run(recipe, args, until)
    assert got_stream == stream, "dispatch stream diverged"
    assert got_state == state, "checkpoint state tree diverged"


@pytest.mark.parametrize("recipe, args, until, stream, state", GOLDEN,
                         ids=_IDS)
def test_unoptimized_run_matches_golden_checksums(recipe, args, until,
                                                  stream, state,
                                                  unoptimized_mode):
    """The escape hatches reproduce the same digests (cross-check).

    If this fails while the optimized variant passes, the *escape
    hatch* regressed; if both fail identically, the goldens themselves
    need re-pinning after a deliberate behavioural change.
    """
    got_stream, got_state = _run(recipe, args, until)
    assert got_stream == stream, "dispatch stream diverged"
    assert got_state == state, "checkpoint state tree diverged"


def test_mode_toggles_return_previous_value_and_restore():
    assert tickets_mod.funding_cache_enabled() is True
    previous = tickets_mod.set_funding_cache_enabled(False)
    assert previous is True
    assert tickets_mod.funding_cache_enabled() is False
    assert tickets_mod.set_funding_cache_enabled(previous) is False
    assert tickets_mod.funding_cache_enabled() is True

    previous = policy_mod.set_full_refresh(True)
    assert previous is False
    assert policy_mod.set_full_refresh(previous) is True


def test_funding_cache_invalidates_on_ticket_mutation():
    """The cached funding answers exactly like a fresh recompute."""
    from repro.core.tickets import Ledger, TicketHolder

    ledger = Ledger()
    holder = TicketHolder("h")
    ticket = ledger.create_ticket(100.0, fund=holder)
    holder.start_competing()
    assert holder.funding() == pytest.approx(100.0)

    ticket.set_amount(250.0)
    assert holder.funding() == pytest.approx(250.0)

    ticket.deactivate()
    assert holder.funding() == 0
    ticket.activate()
    assert holder.funding() == pytest.approx(250.0)

    holder.stop_competing()
    assert holder.funding() == 0


def test_funding_cache_invalidates_through_currency_inflation():
    """Inflating a backing currency devalues downstream cached fundings."""
    from repro.core.tickets import Ledger, TicketHolder

    ledger = Ledger()
    task = ledger.create_currency("task")
    ledger.create_ticket(100.0, fund=task)  # base backing for "task"
    a = TicketHolder("a")
    b = TicketHolder("b")
    ledger.create_ticket(100.0, currency=task, fund=a)
    a.start_competing()
    assert a.funding() == pytest.approx(100.0)

    # Inflation: issuing more task tickets halves the per-unit value.
    ledger.create_ticket(100.0, currency=task, fund=b)
    b.start_competing()
    assert a.funding() == pytest.approx(50.0)
    assert b.funding() == pytest.approx(50.0)


# -- sharded-engine equivalence ----------------------------------------------
#
# The acceptance gate of the repro.shard subsystem: for N in {1, 2, 4}
# on both in-process backends (and the mp backend where it can run),
# the merged replay stream and the canonical state tree are sha256-
# identical to the single-loop oracle.  The goldens are pinned from the
# ``single`` backend, which is observationally the classic one-event-
# loop engine.

#: (plan kwargs, horizon, stream sha256, state-tree sha256).
SHARD_GOLDEN = [
    ({"seed": 11, "cores": 4, "with_ops": False}, 5_000.0,
     "1ad4542e8b23429e8543210742da0f60a81f8d4bd7ad5450d03ea64cd54fc628",
     "ad0639f9d2194e6d88541adf8ae1df5068d70c26761daa867285829911e1e96a"),
    ({"seed": 11, "cores": 4, "with_ops": True}, 5_000.0,
     "0e9079418ef1061de15edc826758958a4fba86d03470efa6007560516da49ebd",
     "a30a3c21d3741446b4115004483361887da4ff80400cb1c0b4dd6ff054201dab"),
]

_SHARD_IDS = ["mix", "mix-ops"]


def _run_sharded(plan_kwargs: dict, until: float, backend: str,
                 shards: int) -> tuple:
    from repro.shard.engine import ShardedEngine
    from repro.shard.plan import mix_plan

    plan = mix_plan(**plan_kwargs)
    with ShardedEngine(plan, shards=shards, backend=backend) as engine:
        engine.advance(until)
        return (tree_checksum(engine.merged_stream()),
                tree_checksum(engine.snapshot_state()))


@pytest.mark.parametrize("plan_kwargs, until, stream, state", SHARD_GOLDEN,
                         ids=_SHARD_IDS)
def test_single_loop_oracle_matches_shard_goldens(plan_kwargs, until,
                                                  stream, state):
    """The oracle itself reproduces the pinned digests (anchor)."""
    got_stream, got_state = _run_sharded(plan_kwargs, until, "single", 1)
    assert got_stream == stream, "single-loop stream diverged from golden"
    assert got_state == state, "single-loop state tree diverged from golden"


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("backend", ["inline", "mp"])
@pytest.mark.parametrize("plan_kwargs, until, stream, state", SHARD_GOLDEN,
                         ids=_SHARD_IDS)
def test_sharded_run_is_bit_identical_to_single_loop(plan_kwargs, until,
                                                     stream, state,
                                                     backend, shards):
    """sharded(N) == single-loop, bit for bit, on every backend."""
    got_stream, got_state = _run_sharded(plan_kwargs, until, backend, shards)
    assert got_stream == stream, (
        f"{backend}/shards={shards}: merged stream diverged")
    assert got_state == state, (
        f"{backend}/shards={shards}: state tree diverged")


@pytest.mark.skipif((__import__("os").cpu_count() or 1) < 2,
                    reason="mp speedup needs at least 2 host CPUs")
def test_mp_backend_beats_inline_at_four_shards():
    """Acceptance: the mp backend shows real wall-clock speedup over
    inline at shards=4 on the dispatch-heavy workload (multi-core
    hosts only; single-CPU machines cannot parallelize anything)."""
    import time

    from repro.shard.engine import ShardedEngine
    from repro.shard.plan import spin_plan

    plan = spin_plan(seed=97, cores=4, spinners=2_500, quantum=10.0,
                     epoch_ms=100.0, use_tree=True)
    horizon = 4_000.0

    def timed(backend: str) -> float:
        with ShardedEngine(plan, shards=4, backend=backend) as engine:
            start = time.perf_counter()
            engine.advance(horizon)
            return time.perf_counter() - start

    inline_s = timed("inline")
    mp_s = timed("mp")
    assert mp_s < inline_s, (
        f"mp backend ({mp_s:.2f}s) not faster than inline "
        f"({inline_s:.2f}s) at shards=4 on a multi-core host")
