"""Same-seed equivalence: the hot-path optimizations change nothing.

Every optimization this package carries -- the funding cache in
``repro.core.tickets``, dirty-member Fenwick refresh in
``repro.schedulers.lottery_policy``, the args-based event queue --
claims to be *bit-exact*: same seed, same dispatch stream, same
checkpoint state tree.  These tests prove it two ways:

1. **Golden checksums.** The replay-stream and state-tree sha256 of
   four reference runs are pinned to the values the pre-optimization
   code produced.  Any behavioural drift in the dispatch loop, however
   subtle, changes these digests.

2. **Mode cross-check.** The optimizations keep escape hatches
   (``set_funding_cache_enabled``, ``set_full_refresh``) that force the
   historical recompute-everything behaviour.  Each reference run is
   executed in optimized and unoptimized mode and the digests compared;
   the pair must be identical, not merely "both plausible".
"""

from __future__ import annotations

import pytest

import repro.core.tickets as tickets_mod
import repro.schedulers.lottery_policy as policy_mod
from repro.checkpoint.capture import capture_tree
from repro.checkpoint.registry import build_recipe
from repro.checkpoint.replay import ReplayRecorder
from repro.checkpoint.statetree import tree_checksum

#: (recipe, args, horizon, stream sha256, state-tree sha256) captured
#: from the pre-optimization implementation (linear funding recompute,
#: full Fenwick refresh per draw, tuple-heap event queue).
GOLDEN = [
    ("lottery-mix", {"seed": 1}, 30_000.0,
     "f9bec250fd208e5f77038c91e36f6ee4ef861498a780684eb275608f2323d65e",
     "53ce052ace9d065f9956e1f575eab25b021856e88ba276dc9ff5dabc58e0aa46"),
    ("lottery-mix", {"seed": 42, "use_tree": True}, 30_000.0,
     "fd67e659a70bba30fffb444d18d7d2a4ebed2a0d320a9f51bad84aea938f42f2",
     "f8618ed4c3e28bbb4eb2b8106ad88bdd0e1abdb86511f5bef04b58ece6aa8225"),
    ("lottery-mix",
     {"seed": 7, "fundings": [300.0, 150.0, 75.0, 25.0], "quantum": 50.0},
     20_000.0,
     "5c956b33db05d9d07737fca69f6f8dfd2310c512cb8424fcfef8e36509915cbc",
     "8401ab54ec1ccd35099825c5dce1978d7bcedbe2541d48f3622969aa77564176"),
    ("chaos-fairness", {"seed": 2718}, 60_000.0,
     "844843bb106e4983cc6287d5a5ff3d6b13a8ac52973a436c99e2bc61f0838c12",
     "121382c3080e424d4cd7b7f6aaf2f7cd10d1e728f1b6c0cfe0fdbb81741eadda"),
]

_IDS = [f"{recipe}-{args.get('seed')}" for recipe, args, *_ in GOLDEN]


def _run(recipe: str, args: dict, until: float) -> tuple:
    """(stream checksum, state-tree checksum) of one reference run."""
    handle = build_recipe(recipe, args)
    recorder = ReplayRecorder()
    for kernel in handle.kernels():
        kernel.attach_recorder(recorder)
    handle.advance(until)
    stream = tree_checksum(recorder.entries)
    for kernel in handle.kernels():
        kernel.detach_recorder(recorder)
    state = tree_checksum(capture_tree(handle))
    return stream, state


@pytest.fixture
def unoptimized_mode():
    """Force the historical slow paths for the duration of a test."""
    was_cache = tickets_mod.set_funding_cache_enabled(False)
    was_refresh = policy_mod.set_full_refresh(True)
    try:
        yield
    finally:
        tickets_mod.set_funding_cache_enabled(was_cache)
        policy_mod.set_full_refresh(was_refresh)


@pytest.mark.parametrize("recipe, args, until, stream, state", GOLDEN,
                         ids=_IDS)
def test_optimized_run_matches_golden_checksums(recipe, args, until,
                                                stream, state):
    """The optimized hot paths reproduce the pre-optimization digests."""
    got_stream, got_state = _run(recipe, args, until)
    assert got_stream == stream, "dispatch stream diverged"
    assert got_state == state, "checkpoint state tree diverged"


@pytest.mark.parametrize("recipe, args, until, stream, state", GOLDEN,
                         ids=_IDS)
def test_unoptimized_run_matches_golden_checksums(recipe, args, until,
                                                  stream, state,
                                                  unoptimized_mode):
    """The escape hatches reproduce the same digests (cross-check).

    If this fails while the optimized variant passes, the *escape
    hatch* regressed; if both fail identically, the goldens themselves
    need re-pinning after a deliberate behavioural change.
    """
    got_stream, got_state = _run(recipe, args, until)
    assert got_stream == stream, "dispatch stream diverged"
    assert got_state == state, "checkpoint state tree diverged"


def test_mode_toggles_return_previous_value_and_restore():
    assert tickets_mod.funding_cache_enabled() is True
    previous = tickets_mod.set_funding_cache_enabled(False)
    assert previous is True
    assert tickets_mod.funding_cache_enabled() is False
    assert tickets_mod.set_funding_cache_enabled(previous) is False
    assert tickets_mod.funding_cache_enabled() is True

    previous = policy_mod.set_full_refresh(True)
    assert previous is False
    assert policy_mod.set_full_refresh(previous) is True


def test_funding_cache_invalidates_on_ticket_mutation():
    """The cached funding answers exactly like a fresh recompute."""
    from repro.core.tickets import Ledger, TicketHolder

    ledger = Ledger()
    holder = TicketHolder("h")
    ticket = ledger.create_ticket(100.0, fund=holder)
    holder.start_competing()
    assert holder.funding() == pytest.approx(100.0)

    ticket.set_amount(250.0)
    assert holder.funding() == pytest.approx(250.0)

    ticket.deactivate()
    assert holder.funding() == 0
    ticket.activate()
    assert holder.funding() == pytest.approx(250.0)

    holder.stop_competing()
    assert holder.funding() == 0


def test_funding_cache_invalidates_through_currency_inflation():
    """Inflating a backing currency devalues downstream cached fundings."""
    from repro.core.tickets import Ledger, TicketHolder

    ledger = Ledger()
    task = ledger.create_currency("task")
    ledger.create_ticket(100.0, fund=task)  # base backing for "task"
    a = TicketHolder("a")
    b = TicketHolder("b")
    ledger.create_ticket(100.0, currency=task, fund=a)
    a.start_competing()
    assert a.funding() == pytest.approx(100.0)

    # Inflation: issuing more task tickets halves the per-unit value.
    ledger.create_ticket(100.0, currency=task, fund=b)
    b.start_competing()
    assert a.funding() == pytest.approx(50.0)
    assert b.funding() == pytest.approx(50.0)
