"""Property-based tests on synchronization invariants.

Random contender populations and timings; the invariants: mutual
exclusion always holds, acquisitions balance releases, waiting times
are non-negative, and the mutex currency drains when uncontended.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.prng import ParkMillerPRNG
from repro.kernel.syscalls import AcquireMutex, Compute, ReleaseMutex
from repro.sync.mutex import LotteryMutex, Mutex
from tests.conftest import make_lottery_kernel

contender_configs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),  # tickets
        st.floats(min_value=5.0, max_value=80.0),  # hold ms
        st.floats(min_value=0.0, max_value=80.0),  # gap ms
    ),
    min_size=2,
    max_size=6,
)


def build_contenders(kernel, mutex, configs, monitor):
    for index, (tickets, hold_ms, gap_ms) in enumerate(configs):
        def body(ctx, hold=hold_ms, gap=gap_ms, name=f"c{index}"):
            while True:
                yield AcquireMutex(mutex)
                monitor["active"] += 1
                assert monitor["active"] == 1, "mutual exclusion violated"
                yield Compute(hold)
                monitor["active"] -= 1
                yield ReleaseMutex(mutex)
                if gap > 0:
                    yield Compute(gap)

        kernel.spawn(body, f"c{index}", tickets=float(tickets))


class TestMutexInvariants:
    @given(contender_configs, st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lottery_mutex_safety(self, configs, seed):
        kernel = make_lottery_kernel(seed=seed)
        mutex = LotteryMutex(kernel, "m", prng=ParkMillerPRNG(seed + 1))
        monitor = {"active": 0}
        build_contenders(kernel, mutex, configs, monitor)
        kernel.run_until(30_000)
        # Safety held throughout (asserted inside bodies); accounting:
        assert monitor["active"] in (0, 1)
        total = mutex.total_acquisitions()
        assert total > 0
        for waits in mutex.waiting_times.values():
            assert all(w >= 0 for w in waits)
        # Inheritance ticket either parked or funding the current owner.
        target = mutex.inheritance_ticket.target
        assert target is None or target is mutex.owner

    @given(contender_configs, st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_standard_mutex_safety(self, configs, seed):
        kernel = make_lottery_kernel(seed=seed)
        mutex = Mutex(kernel, "m")
        monitor = {"active": 0}
        build_contenders(kernel, mutex, configs, monitor)
        kernel.run_until(30_000)
        assert monitor["active"] in (0, 1)
        assert mutex.total_acquisitions() > 0

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_mutex_currency_drains_when_uncontended(self, seed):
        kernel = make_lottery_kernel(seed=seed)
        mutex = LotteryMutex(kernel, "m", prng=ParkMillerPRNG(seed + 1))
        done = []

        def solo(ctx):
            for _ in range(5):
                yield AcquireMutex(mutex)
                yield Compute(10.0)
                yield ReleaseMutex(mutex)
            done.append(ctx.now)

        kernel.spawn(solo, "solo", tickets=100)
        kernel.run_until(10_000)
        assert done
        # No waiters ever: the mutex currency holds no backing transfers.
        assert mutex.currency.backing == []
        assert mutex.owner is None
