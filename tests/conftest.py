"""Shared pytest fixtures and helpers for the lottery-scheduling tests.

When ``REPRO_SANITIZE=1`` (defaulted on under CI), every kernel any
test constructs is instrumented with the runtime invariant sanitizer
(:mod:`repro.analysis.sanitizer`): ticket conservation, currency-graph
consistency, run-queue membership, and compensation-ticket lifetime are
re-checked after every scheduling quantum, so the property/statistical
suites double as end-to-end invariant proofs.  Set ``REPRO_SANITIZE=0``
to force it off; ``REPRO_SANITIZE_STRIDE=N`` checks every Nth quantum.
"""

from __future__ import annotations

import os

import pytest


def _sanitize_enabled() -> bool:
    value = os.environ.get("REPRO_SANITIZE")
    if value is None:
        # On by default in CI so the full suites run instrumented.
        return bool(os.environ.get("CI"))
    return value.strip().lower() not in ("", "0", "false", "no", "off")


if _sanitize_enabled():
    from repro.analysis.sanitizer import install_autosanitize

    install_autosanitize(
        stride=int(os.environ.get("REPRO_SANITIZE_STRIDE", "1")))

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.kernel.kernel import Kernel
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine


@pytest.fixture
def ledger():
    """A fresh ticket/currency ledger."""
    return Ledger()


@pytest.fixture
def prng():
    """A deterministic Park-Miller stream."""
    return ParkMillerPRNG(12345)


@pytest.fixture
def engine():
    """A fresh discrete-event engine at t=0."""
    return Engine()


def make_lottery_kernel(seed: int = 1, quantum: float = 100.0,
                        **policy_kwargs):
    """Engine + ledger + lottery kernel, wired together."""
    engine = Engine()
    ledger = Ledger()
    policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed), **policy_kwargs)
    kernel = Kernel(engine, policy, ledger=ledger, quantum=quantum)
    return kernel


@pytest.fixture
def lottery_kernel():
    """A ready-to-use kernel with the lottery policy."""
    return make_lottery_kernel()


def spin_body(chunk_ms: float = 10.0):
    """A compute-forever thread body factory."""

    def body(ctx):
        from repro.kernel.syscalls import Compute

        while True:
            yield Compute(chunk_ms)

    return body
