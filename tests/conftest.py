"""Shared pytest fixtures and helpers for the lottery-scheduling tests."""

from __future__ import annotations

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.core.tickets import Ledger
from repro.kernel.kernel import Kernel
from repro.schedulers.lottery_policy import LotteryPolicy
from repro.sim.engine import Engine


@pytest.fixture
def ledger():
    """A fresh ticket/currency ledger."""
    return Ledger()


@pytest.fixture
def prng():
    """A deterministic Park-Miller stream."""
    return ParkMillerPRNG(12345)


@pytest.fixture
def engine():
    """A fresh discrete-event engine at t=0."""
    return Engine()


def make_lottery_kernel(seed: int = 1, quantum: float = 100.0,
                        **policy_kwargs):
    """Engine + ledger + lottery kernel, wired together."""
    engine = Engine()
    ledger = Ledger()
    policy = LotteryPolicy(ledger, prng=ParkMillerPRNG(seed), **policy_kwargs)
    kernel = Kernel(engine, policy, ledger=ledger, quantum=quantum)
    return kernel


@pytest.fixture
def lottery_kernel():
    """A ready-to-use kernel with the lottery policy."""
    return make_lottery_kernel()


def spin_body(chunk_ms: float = 10.0):
    """A compute-forever thread body factory."""

    def body(ctx):
        from repro.kernel.syscalls import Compute

        while True:
            yield Compute(chunk_ms)

    return body
