"""Edge-case and documented-behaviour tests for the kernel."""

import pytest

from repro.errors import KernelError
from repro.kernel.ipc import Port
from repro.kernel.syscalls import (
    AcquireMutex,
    Call,
    Compute,
    Exit,
    Receive,
    ReleaseMutex,
    Send,
    Sleep,
)
from repro.kernel.thread import ThreadState
from repro.sync.mutex import LotteryMutex, Mutex
from tests.conftest import make_lottery_kernel, spin_body


class TestSpawnDynamics:
    def test_spawn_while_running(self):
        """Threads created mid-simulation join the very next lottery."""
        kernel = make_lottery_kernel(seed=3)
        first = kernel.spawn(spin_body(), "first", tickets=100)
        late_holder = {}

        def spawn_late():
            late_holder["thread"] = kernel.spawn(
                spin_body(), "late", tickets=100
            )

        kernel.engine.call_at(5_000.0, spawn_late)
        kernel.run_until(60_000)
        late = late_holder["thread"]
        # The late thread got roughly half the CPU after its arrival.
        assert late.cpu_time == pytest.approx((60_000 - 5_000) / 2,
                                              rel=0.15)
        assert first.cpu_time == pytest.approx(
            5_000 + (60_000 - 5_000) / 2, rel=0.15
        )

    def test_task_grouping_optional(self):
        kernel = make_lottery_kernel()
        task = kernel.create_task("shared")
        a = kernel.spawn(spin_body(), "a", task=task, tickets=10)
        b = kernel.spawn(spin_body(), "b", task=task, tickets=10)
        assert a.task is b.task
        assert task.threads == [a, b]

    def test_create_task_currency_modes(self):
        kernel = make_lottery_kernel()
        plain = kernel.create_task("plain")
        assert plain.currency is None
        minted = kernel.create_task("minted", create_currency=True)
        assert minted.currency is kernel.ledger.currency("minted")
        with pytest.raises(KernelError):
            kernel.create_task("bad", currency=minted.currency,
                               create_currency=True)


class TestExitPaths:
    def test_exit_while_holding_mutex_leaks_lock(self):
        """Documented behaviour: like a real kernel, exiting while
        holding a lock leaves it held; later waiters block forever."""
        kernel = make_lottery_kernel(seed=5)
        mutex = Mutex(kernel, "m")

        def holder_then_exit(ctx):
            yield AcquireMutex(mutex)
            yield Compute(10.0)
            yield Exit()

        def victim(ctx):
            yield Compute(50.0)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        owner = kernel.spawn(holder_then_exit, "owner", tickets=100)
        blocked = kernel.spawn(victim, "victim", tickets=100)
        kernel.run_until(10_000)
        assert owner.state is ThreadState.EXITED
        assert mutex.owner is owner  # lock leaked with the corpse
        assert blocked.state is ThreadState.BLOCKED

    def test_exit_deactivates_tickets(self):
        kernel = make_lottery_kernel()

        def short(ctx):
            yield Compute(30.0)

        thread = kernel.spawn(short, "short", tickets=500)
        survivor = kernel.spawn(spin_body(), "survivor", tickets=100)
        kernel.run_until(10_000)
        assert thread.state is ThreadState.EXITED
        # The corpse's tickets are deactivated forever...
        assert thread.funding() == 0.0
        assert not any(t.active for t in thread.tickets)
        # ...(the survivor's own ticket is also inactive *right now*
        # because it is running, per the Mach run-queue rule)...
        assert kernel.ledger.total_active_base() <= 100
        # ...and the survivor owns the machine after the exit.
        assert survivor.cpu_time > 9_000

    def test_all_threads_exit_idles_cpu(self):
        kernel = make_lottery_kernel()

        def short(ctx):
            yield Compute(100.0)

        kernel.spawn(short, "a", tickets=10)
        kernel.spawn(short, "b", tickets=10)
        kernel.run_until(10_000)
        assert kernel.running is None
        assert kernel.cpu_utilization() == pytest.approx(0.02, abs=0.005)


class TestIpcEdges:
    def test_exited_client_request_still_serviceable(self):
        """A Send-origin message outlives its sender."""
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        got = []

        def sender(ctx):
            yield Send(port, "parting gift")

        def receiver(ctx):
            yield Compute(200.0)
            request = yield Receive(port)
            got.append(request.message)

        kernel.spawn(sender, "tx", tickets=10)
        kernel.spawn(receiver, "rx", tickets=10)
        kernel.run_until(5_000)
        assert got == ["parting gift"]

    def test_fractional_call_transfer(self):
        """Call with transfer_fraction moves only part of the rights."""
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        seen = []

        def server(ctx):
            from repro.kernel.syscalls import Reply

            request = yield Receive(port)
            seen.append(request.transfer.amount)
            yield Reply(request, "ok")

        def client(ctx):
            yield Compute(1.0)
            yield Call(port, "q", transfer_fraction=0.25)

        kernel.spawn(server, "server", tickets=1)
        kernel.spawn(client, "client", tickets=400)
        kernel.run_until(5_000)
        assert seen and seen[0] == pytest.approx(100.0)

    def test_two_ports_independent(self):
        kernel = make_lottery_kernel()
        port_a = Port(kernel, "a")
        port_b = Port(kernel, "b")
        got = []

        def receiver(port, tag):
            def body(ctx):
                request = yield Receive(port)
                got.append((tag, request.message))

            return body

        def sender(ctx):
            yield Send(port_b, "to-b")
            yield Send(port_a, "to-a")
            yield Compute(1.0)

        kernel.spawn(receiver(port_a, "A"), "ra", tickets=10)
        kernel.spawn(receiver(port_b, "B"), "rb", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        kernel.run_until(5_000)
        assert sorted(got) == [("A", "to-a"), ("B", "to-b")]


class TestLotteryMutexEdges:
    def test_reacquire_after_release_by_same_thread(self):
        kernel = make_lottery_kernel(seed=17)
        mutex = LotteryMutex(kernel, "m")
        count = []

        def body(ctx):
            for _ in range(3):
                yield AcquireMutex(mutex)
                yield Compute(5.0)
                yield ReleaseMutex(mutex)
                count.append(ctx.now)

        kernel.spawn(body, "solo", tickets=10)
        kernel.run_until(1_000)
        assert len(count) == 3
        assert mutex.owner is None
        assert mutex.inheritance_ticket.target is None

    def test_sleeping_never_blocks_lottery(self):
        """A sleeping (not waiting) thread contributes nothing to the
        mutex currency, so the owner's funding stays its own."""
        kernel = make_lottery_kernel(seed=19)
        mutex = LotteryMutex(kernel, "m")
        observed = []

        def owner(ctx):
            yield AcquireMutex(mutex)
            yield Compute(100.0)
            observed.append(mutex.waiter_funding())
            yield ReleaseMutex(mutex)

        def sleeper(ctx):
            yield Sleep(10_000.0)

        kernel.spawn(owner, "owner", tickets=10)
        kernel.spawn(sleeper, "sleeper", tickets=990)
        kernel.run_until(5_000)
        assert observed == [0.0]
