"""Tests for the scheduler trace recorder and timeline renderer."""

import pytest

from repro.errors import ReproError
from repro.kernel.syscalls import Compute, Sleep
from repro.kernel.trace import SchedulerTrace, TraceEvent
from tests.conftest import make_lottery_kernel, spin_body


def traced_kernel(seed=3):
    kernel = make_lottery_kernel(seed=seed)
    trace = SchedulerTrace()
    kernel.recorder = trace
    return kernel, trace


class TestEventCollection:
    def test_dispatch_events_carry_funding(self):
        kernel, trace = traced_kernel()
        kernel.spawn(spin_body(), "t", tickets=250)
        kernel.run_until(1000)
        dispatches = trace.of_kind("dispatch")
        assert dispatches
        assert all(e.value == pytest.approx(250) for e in dispatches)

    def test_cpu_events_sum_to_thread_time(self):
        kernel, trace = traced_kernel()
        thread = kernel.spawn(spin_body(25.0), "t", tickets=10)
        kernel.run_until(5000)
        total = sum(e.value for e in trace.for_thread(thread.tid)
                    if e.kind == "cpu")
        assert total == pytest.approx(thread.cpu_time)

    def test_block_wake_exit_recorded(self):
        kernel, trace = traced_kernel()

        def napper(ctx):
            yield Compute(10.0)
            yield Sleep(100.0)
            yield Compute(10.0)

        kernel.spawn(napper, "n", tickets=10)
        kernel.run_until(1000)
        kinds = {e.kind for e in trace.events}
        assert {"dispatch", "cpu", "block", "wake", "exit"} <= kinds

    def test_dispatch_counts(self):
        kernel, trace = traced_kernel()
        kernel.spawn(spin_body(), "a", tickets=100)
        kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(2000)
        counts = trace.dispatch_counts()
        assert counts["a"] + counts["b"] >= 20

    def test_cpu_by_thread_windows(self):
        kernel, trace = traced_kernel()
        kernel.spawn(spin_body(), "only", tickets=10)
        kernel.run_until(4000)
        first = trace.cpu_by_thread(0, 2000)["only"]
        second = trace.cpu_by_thread(2000, 4000)["only"]
        assert first == pytest.approx(2000)
        assert second == pytest.approx(2000)

    def test_strict_cap_enforced(self):
        trace = SchedulerTrace(max_events=3, strict=True)
        kernel = make_lottery_kernel()
        kernel.recorder = trace
        kernel.spawn(spin_body(1.0), "t", tickets=10)
        with pytest.raises(ReproError):
            kernel.run_until(1000)

    def test_ring_buffer_drops_oldest_by_default(self):
        trace = SchedulerTrace(max_events=3)
        for i in range(5):
            trace._append(TraceEvent(float(i), "cpu", 1, "t", 1.0))
        assert trace.dropped_events == 2
        assert [e.time for e in trace.events] == [2.0, 3.0, 4.0]

    def test_ring_buffer_survives_long_run(self):
        trace = SchedulerTrace(max_events=8)
        kernel = make_lottery_kernel()
        kernel.recorder = trace
        kernel.spawn(spin_body(1.0), "t", tickets=10)
        kernel.run_until(1000)  # would raise under strict=True
        assert trace.dropped_events > 0
        assert len(trace.events) == 8

    def test_invalid_cap_rejected(self):
        with pytest.raises(ReproError):
            SchedulerTrace(max_events=0)


class TestTimeline:
    def test_alternating_threads_render(self):
        kernel, trace = traced_kernel(seed=9)
        kernel.spawn(spin_body(100.0), "aa", tickets=100)
        kernel.spawn(spin_body(100.0), "bb", tickets=100)
        kernel.run_until(2000)
        timeline = trace.render_timeline(0, 2000, bucket_ms=100)
        lines = timeline.splitlines()
        assert len(lines) == 3  # header + two threads
        assert "aa" in timeline and "bb" in timeline
        # Exactly one thread occupies each full bucket.
        for col in range(20):
            cells = [line.split("|")[1][col] for line in lines[1:]]
            assert sorted(cells) == ["#", "."]  # '#' sorts before '.'

    def test_empty_interval_renders_placeholder(self):
        trace = SchedulerTrace()
        assert "no CPU activity" in trace.render_timeline(0, 100)

    def test_invalid_intervals_rejected(self):
        trace = SchedulerTrace()
        with pytest.raises(ReproError):
            trace.render_timeline(100, 100)
        with pytest.raises(ReproError):
            trace.render_timeline(0, 10, bucket_ms=0)
        trace._append(TraceEvent(0.0, "cpu", 1, "t", 5.0))
        with pytest.raises(ReproError):
            trace.render_timeline(0, 1_000_000, bucket_ms=1)

    def test_partial_buckets_marked(self):
        trace = SchedulerTrace()
        trace._append(TraceEvent(0.0, "cpu", 1, "t", 30.0))  # 30 of 100
        timeline = trace.render_timeline(0, 200, bucket_ms=100)
        row = timeline.splitlines()[1].split("|")[1]
        assert row == "+."
