"""Tests for Thread/Task state machines and generator stepping."""

import pytest

from repro.errors import ThreadStateError
from repro.kernel.syscalls import Compute
from repro.kernel.thread import Task, Thread, ThreadState
from tests.conftest import make_lottery_kernel


def make_thread(kernel, body=None, name="t"):
    task = kernel.create_task(f"task-{name}")
    if body is None:
        def body(ctx):
            yield Compute(1.0)
    return Thread(name, task, body, kernel)


class TestLifecycle:
    def test_created_state(self):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        assert thread.state is ThreadState.CREATED
        assert thread.alive

    def test_valid_transitions(self):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        thread.transition(ThreadState.RUNNABLE)
        thread.transition(ThreadState.RUNNING)
        thread.transition(ThreadState.BLOCKED)
        thread.transition(ThreadState.RUNNABLE)
        thread.transition(ThreadState.RUNNING)
        thread.transition(ThreadState.EXITED)
        assert not thread.alive

    @pytest.mark.parametrize(
        "sequence",
        [
            [ThreadState.RUNNING],  # created -> running skips runnable
            [ThreadState.BLOCKED],
            [ThreadState.RUNNABLE, ThreadState.BLOCKED],
        ],
    )
    def test_invalid_transitions_rejected(self, sequence):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        with pytest.raises(ThreadStateError):
            for state in sequence:
                thread.transition(state)

    def test_exited_is_terminal(self):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        thread.transition(ThreadState.EXITED)
        with pytest.raises(ThreadStateError):
            thread.transition(ThreadState.RUNNABLE)

    def test_unique_tids(self):
        kernel = make_lottery_kernel()
        a = make_thread(kernel, name="a")
        b = make_thread(kernel, name="b")
        assert a.tid != b.tid


class TestGeneratorStepping:
    def test_advance_yields_syscalls_then_none(self):
        kernel = make_lottery_kernel()

        def body(ctx):
            yield Compute(1.0)
            yield Compute(2.0)

        thread = make_thread(kernel, body)
        first = thread.advance()
        assert isinstance(first, Compute) and first.duration == 1.0
        second = thread.advance()
        assert second.duration == 2.0
        assert thread.advance() is None

    def test_deliver_feeds_send_value(self):
        kernel = make_lottery_kernel()
        received = []

        def body(ctx):
            value = yield Compute(1.0)
            received.append(value)

        thread = make_thread(kernel, body)
        thread.advance()
        thread.deliver("reply!")
        thread.advance()
        assert received == ["reply!"]

    def test_advance_after_exit_rejected(self):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        thread.transition(ThreadState.EXITED)
        with pytest.raises(ThreadStateError):
            thread.advance()

    def test_context_exposes_clock_and_identity(self):
        kernel = make_lottery_kernel()
        seen = {}

        def body(ctx):
            seen["thread"] = ctx.thread
            seen["now"] = ctx.now
            yield Compute(1.0)

        thread = make_thread(kernel, body)
        thread.advance()
        assert seen["thread"] is thread
        assert seen["now"] == 0.0


class TestFunding:
    def test_fund_from_base_without_task_currency(self):
        kernel = make_lottery_kernel()
        thread = make_thread(kernel)
        ticket = thread.fund_from(kernel.ledger, 250)
        assert ticket.currency is kernel.ledger.base
        assert thread.funding_currency is kernel.ledger.base

    def test_fund_from_task_currency(self):
        kernel = make_lottery_kernel()
        currency = kernel.ledger.create_currency("group")
        task = Task("grouped", currency)

        def body(ctx):
            yield Compute(1.0)

        thread = Thread("t", task, body, kernel)
        ticket = thread.fund_from(kernel.ledger, 100)
        assert ticket.currency is currency
        assert thread.funding_currency is currency

    def test_task_tracks_threads(self):
        kernel = make_lottery_kernel()
        task = kernel.create_task("t")

        def body(ctx):
            yield Compute(1.0)

        threads = [Thread(f"t{i}", task, body, kernel) for i in range(3)]
        assert task.threads == threads
