"""Tests for ports, RPC, and ticket transfers (paper section 4.6)."""

import pytest

from repro.errors import IpcError
from repro.kernel.ipc import Port
from repro.kernel.syscalls import Call, Compute, Receive, Reply, Send
from repro.kernel.thread import ThreadState
from tests.conftest import make_lottery_kernel


def echo_server_body(port, records=None):
    def body(ctx):
        while True:
            request = yield Receive(port)
            if records is not None:
                records.append(request.message)
            yield Compute(10.0)
            yield Reply(request, f"echo:{request.message}")

    return body


class TestSendReceive:
    def test_send_then_receive(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        got = []

        def receiver(ctx):
            request = yield Receive(port)
            got.append(request.message)

        def sender(ctx):
            yield Compute(1.0)
            yield Send(port, "hello")

        kernel.spawn(receiver, "rx", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        kernel.run_until(1000)
        assert got == ["hello"]

    def test_receive_blocks_until_message(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        times = []

        def receiver(ctx):
            request = yield Receive(port)
            times.append((ctx.now, request.message))

        def sender(ctx):
            yield Compute(300.0)
            yield Send(port, "late")

        kernel.spawn(receiver, "rx", tickets=10)
        kernel.spawn(sender, "tx", tickets=10)
        kernel.run_until(1000)
        assert times and times[0][0] >= 300.0

    def test_queued_messages_fifo(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        got = []

        def sender(ctx):
            yield Send(port, 1)
            yield Send(port, 2)
            yield Send(port, 3)
            yield Compute(1.0)

        def receiver(ctx):
            for _ in range(3):
                request = yield Receive(port)
                got.append(request.message)

        kernel.spawn(sender, "tx", tickets=10)
        kernel.spawn(receiver, "rx", tickets=10)
        kernel.run_until(1000)
        assert got == [1, 2, 3]

    def test_queue_depth(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")

        def sender(ctx):
            yield Send(port, "a")
            yield Send(port, "b")
            yield Compute(1.0)

        kernel.spawn(sender, "tx", tickets=10)
        kernel.run_until(100)
        assert port.queue_depth() == 2


class TestCallReply:
    def test_roundtrip_value(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        replies = []

        def client(ctx):
            reply = yield Call(port, "ping")
            replies.append(reply)

        kernel.spawn(echo_server_body(port), "server", tickets=1)
        kernel.spawn(client, "client", tickets=100)
        kernel.run_until(5000)
        assert replies == ["echo:ping"]

    def test_client_blocked_during_call(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")

        def client(ctx):
            yield Call(port, "q")

        client_thread = kernel.spawn(client, "client", tickets=100)
        kernel.run_until(100)
        # No server: the client stays blocked forever.
        assert client_thread.state is ThreadState.BLOCKED

    def test_transfer_funds_server_during_call(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        measured = []

        def server(ctx):
            request = yield Receive(port)
            measured.append(ctx.thread.nominal_funding())
            yield Compute(10.0)
            yield Reply(request, "ok")
            measured.append(ctx.thread.nominal_funding())

        def client(ctx):
            yield Compute(1.0)
            yield Call(port, "q")

        server_thread = kernel.spawn(server, "server", tickets=1)
        kernel.spawn(client, "client", tickets=500)
        kernel.run_until(5000)
        # While serving: own 1 + transferred 500; after reply: 1.
        # (nominal view: a running thread's tickets are deactivated
        # because Mach removes it from the run queue, section 4.4.)
        assert measured[0] == pytest.approx(501)
        assert measured[1] == pytest.approx(1)
        assert server_thread.state is ThreadState.EXITED  # one-shot body

    def test_pending_transfer_claimed_at_receive(self):
        # Call arrives before any server is waiting: the transfer rides
        # on the queued request and is claimed at receive time.
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        funding_seen = []

        def client(ctx):
            yield Call(port, "early")

        def late_server(ctx):
            yield Compute(50.0)
            request = yield Receive(port)
            funding_seen.append(ctx.thread.nominal_funding())
            yield Reply(request, "done")

        kernel.spawn(client, "client", tickets=400)
        kernel.spawn(late_server, "server", tickets=2)
        kernel.run_until(5000)
        assert funding_seen and funding_seen[0] == pytest.approx(402)

    def test_response_times_recorded(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")

        def client(ctx):
            for _ in range(3):
                yield Call(port, "q")

        kernel.spawn(echo_server_body(port), "server", tickets=1)
        kernel.spawn(client, "client", tickets=100)
        kernel.run_until(10_000)
        assert port.replies_sent == 3
        assert port.mean_response_time() > 0

    def test_double_reply_rejected(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        errors = []

        def server(ctx):
            request = yield Receive(port)
            yield Reply(request, "one")
            try:
                request.reply("two")
            except IpcError as exc:
                errors.append(exc)

        def client(ctx):
            yield Call(port, "q")

        kernel.spawn(server, "server", tickets=1)
        kernel.spawn(client, "client", tickets=10)
        kernel.run_until(1000)
        assert errors

    def test_reply_to_send_rejected(self):
        kernel = make_lottery_kernel()
        port = Port(kernel, "p")
        errors = []

        def server(ctx):
            request = yield Receive(port)
            try:
                request.reply("nope")
            except IpcError as exc:
                errors.append(exc)

        def sender(ctx):
            yield Send(port, "oneway")
            yield Compute(1.0)

        kernel.spawn(server, "server", tickets=1)
        kernel.spawn(sender, "tx", tickets=10)
        kernel.run_until(1000)
        assert errors


class TestServerCurrencyMode:
    def test_transfers_fund_the_currency(self):
        kernel = make_lottery_kernel()
        server_currency = kernel.ledger.create_currency("server")
        port = Port(kernel, "p", currency=server_currency)
        during = []

        def worker(ctx):
            while True:
                request = yield Receive(port)
                during.append(server_currency.nominal_base_value())
                yield Compute(10.0)
                yield Reply(request, "ok")

        def client(ctx):
            yield Compute(1.0)
            yield Call(port, "q")

        worker_thread = kernel.spawn(worker, "w", tickets=None)
        worker_thread.fund_from(kernel.ledger, 10, currency=server_currency)
        kernel.spawn(client, "c", tickets=600)
        kernel.run_until(5000)
        # The client's 600 base flowed into the server currency.
        assert during and during[0] == pytest.approx(600)
        assert server_currency.nominal_base_value() == pytest.approx(0.0, abs=1e-6)

    def test_throughput_follows_transfer_ratio(self):
        # End-to-end: two clients with 3:1 tickets calling a shared
        # ticketless server complete queries ~3:1.
        kernel = make_lottery_kernel(seed=77)
        port = Port(kernel, "p")
        counts = {"rich": 0, "poor": 0}

        def worker(ctx):
            while True:
                request = yield Receive(port)
                yield Compute(50.0)
                yield Reply(request, "ok")

        def client(name):
            def body(ctx):
                while True:
                    yield Compute(1.0)
                    yield Call(port, name)
                    counts[name] += 1

            return body

        for i in range(2):
            kernel.spawn(worker, f"w{i}", tickets=1)
        kernel.spawn(client("rich"), "rich", tickets=300)
        kernel.spawn(client("poor"), "poor", tickets=100)
        kernel.run_until(120_000)
        assert counts["poor"] > 0
        assert counts["rich"] / counts["poor"] == pytest.approx(3.0, rel=0.25)
