"""Integration tests for the simulated microkernel dispatch loop."""

import pytest

from repro.errors import KernelError, SimulationError
from repro.kernel.syscalls import Compute, Exit, Send, Sleep, YieldCPU
from repro.kernel.thread import ThreadState
from repro.metrics.recorder import KernelRecorder
from tests.conftest import make_lottery_kernel, spin_body


class TestBasicDispatch:
    def test_single_thread_consumes_all_cpu(self):
        kernel = make_lottery_kernel()
        thread = kernel.spawn(spin_body(), "solo", tickets=100)
        kernel.run_until(10_000)
        assert thread.cpu_time == pytest.approx(10_000)

    def test_two_threads_split_by_tickets(self):
        kernel = make_lottery_kernel(seed=5)
        a = kernel.spawn(spin_body(), "a", tickets=300)
        b = kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(100_000)
        total = a.cpu_time + b.cpu_time
        assert total == pytest.approx(100_000)
        assert a.cpu_time / total == pytest.approx(0.75, abs=0.05)

    def test_compute_spans_quanta(self):
        kernel = make_lottery_kernel()
        done = []

        def body(ctx):
            yield Compute(250.0)  # 2.5 quanta
            done.append(ctx.now)

        kernel.spawn(body, "long", tickets=10)
        kernel.run_until(1000)
        assert done == [250.0]

    def test_zero_length_compute_is_fine(self):
        kernel = make_lottery_kernel()
        done = []

        def body(ctx):
            yield Compute(0.0)
            yield Compute(5.0)
            done.append(ctx.now)

        kernel.spawn(body, "z", tickets=10)
        kernel.run_until(100)
        assert done == [5.0]

    def test_exit_via_return_and_via_syscall(self):
        kernel = make_lottery_kernel()

        def returns(ctx):
            yield Compute(10.0)

        def exits(ctx):
            yield Compute(10.0)
            yield Exit()
            yield Compute(999.0)  # unreachable

        a = kernel.spawn(returns, "r", tickets=10)
        b = kernel.spawn(exits, "e", tickets=10)
        kernel.run_until(1000)
        assert a.state is ThreadState.EXITED
        assert b.state is ThreadState.EXITED
        assert b.cpu_time == pytest.approx(10.0)
        assert a.exited_at is not None

    def test_spawn_requires_positive_quantum(self):
        with pytest.raises(KernelError):
            make_lottery_kernel(quantum=0)


class TestYieldAndSleep:
    def test_yield_keeps_thread_runnable(self):
        kernel = make_lottery_kernel()

        def yielder(ctx):
            while True:
                yield Compute(10.0)
                yield YieldCPU()

        thread = kernel.spawn(yielder, "y", tickets=10)
        kernel.run_until(1000)
        assert thread.voluntary_yields > 0
        assert thread.cpu_time > 0

    def test_sleep_blocks_without_cpu(self):
        kernel = make_lottery_kernel()
        wake_times = []

        def sleeper(ctx):
            yield Compute(10.0)
            yield Sleep(500.0)
            wake_times.append(ctx.now)
            yield Compute(10.0)

        thread = kernel.spawn(sleeper, "s", tickets=10)
        kernel.run_until(2000)
        assert wake_times == [510.0]
        assert thread.cpu_time == pytest.approx(20.0)

    def test_sleeping_thread_frees_cpu_for_others(self):
        kernel = make_lottery_kernel()

        def sleeper(ctx):
            yield Sleep(1000.0)

        spinner = kernel.spawn(spin_body(), "spin", tickets=1)
        kernel.spawn(sleeper, "sleep", tickets=1000)
        kernel.run_until(1000)
        # The richly funded sleeper is off the run queue: the poor
        # spinner gets the whole CPU.
        assert spinner.cpu_time == pytest.approx(1000.0, abs=1.0)


class TestIdleAccounting:
    def test_idle_when_no_threads(self):
        kernel = make_lottery_kernel()
        kernel.run_until(1000)
        assert kernel.cpu_utilization() == pytest.approx(0.0)

    def test_idle_then_busy(self):
        kernel = make_lottery_kernel()

        def late_start():
            kernel.spawn(spin_body(), "late", tickets=10)

        kernel.engine.call_at(500.0, late_start)
        kernel.run_until(1000)
        assert kernel.cpu_utilization() == pytest.approx(0.5, abs=0.01)

    def test_busy_utilization(self):
        kernel = make_lottery_kernel()
        kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(1000)
        assert kernel.cpu_utilization() == pytest.approx(1.0)


class TestZeroFundingFallback:
    def test_unfunded_threads_progress_via_fallback(self):
        kernel = make_lottery_kernel()
        thread = kernel.spawn(spin_body(), "poor")  # no tickets at all
        kernel.run_until(1000)
        assert thread.cpu_time == pytest.approx(1000.0)
        assert kernel.policy.fallback_selections > 0

    def test_strict_mode_starves_unfunded(self):
        kernel = make_lottery_kernel(zero_funding_fallback=False)
        rich = kernel.spawn(spin_body(), "rich", tickets=10)
        poor = kernel.spawn(spin_body(), "poor")
        kernel.run_until(1000)
        assert poor.cpu_time == 0.0
        assert rich.cpu_time == pytest.approx(1000.0)


class TestRunaways:
    def test_instant_syscall_livelock_detected(self):
        kernel = make_lottery_kernel()
        port_kernel = kernel  # for closure clarity
        from repro.kernel.ipc import Port

        port = Port(port_kernel, "p")

        def spammer(ctx):
            while True:
                yield Send(port, "x")  # never computes

        kernel.spawn(spammer, "spam", tickets=10)
        with pytest.raises(SimulationError):
            kernel.run_until(100)


class TestContextSwitchCost:
    def test_cost_consumes_virtual_time(self):
        kernel_free = make_lottery_kernel(seed=3)
        kernel_costly = make_lottery_kernel(seed=3)
        kernel_costly.context_switch_cost = 1.0
        a1 = kernel_free.spawn(spin_body(), "a", tickets=10)
        a2 = kernel_costly.spawn(spin_body(), "a", tickets=10)
        kernel_free.run_until(10_000)
        kernel_costly.run_until(10_000)
        # ~1 ms lost per 100 ms dispatch: ~1% less CPU delivered.
        assert a2.cpu_time < a1.cpu_time
        assert a2.cpu_time == pytest.approx(10_000 * 100 / 101, rel=0.01)


class TestRecorderIntegration:
    def test_recorder_receives_events(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        kernel.recorder = recorder

        def napper(ctx):
            yield Compute(50.0)
            yield Sleep(100.0)
            yield Compute(50.0)

        thread = kernel.spawn(napper, "n", tickets=10)
        kernel.run_until(1000)
        assert recorder.cpu_time(thread) == pytest.approx(100.0)
        assert recorder.dispatches[thread.tid] >= 2
        assert recorder.blocks[thread.tid] == 1
        assert recorder.wakes[thread.tid] == 1
        assert thread.tid in recorder.exits

    def test_cpu_share_windows(self):
        kernel = make_lottery_kernel(seed=9)
        recorder = KernelRecorder()
        kernel.recorder = recorder
        a = kernel.spawn(spin_body(), "a", tickets=100)
        kernel.spawn(spin_body(), "b", tickets=100)
        kernel.run_until(50_000)
        share = recorder.cpu_share(a, 0, 50_000)
        assert share == pytest.approx(0.5, abs=0.1)


class TestWakeValidation:
    def test_waking_non_blocked_thread_rejected(self):
        kernel = make_lottery_kernel()
        thread = kernel.spawn(spin_body(), "t", tickets=10)
        with pytest.raises(KernelError):
            kernel.wake(thread)

    def test_double_start_rejected(self):
        kernel = make_lottery_kernel()
        thread = kernel.spawn(spin_body(), "t", tickets=10)
        with pytest.raises(KernelError):
            kernel.start_thread(thread)

    def test_deferred_start(self):
        kernel = make_lottery_kernel()
        thread = kernel.spawn(spin_body(), "t", tickets=10, start=False)
        assert thread.state is ThreadState.CREATED
        kernel.start_thread(thread)
        kernel.run_until(100)
        assert thread.cpu_time > 0
