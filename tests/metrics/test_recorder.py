"""Direct tests for the kernel recorders."""

import pytest

from repro.kernel.syscalls import Compute, Sleep
from repro.errors import ReproError
from repro.metrics.recorder import (KernelEventSink, KernelRecorder,
                                    NullRecorder, RecorderMux)
from tests.conftest import make_lottery_kernel, spin_body


class TestNullRecorder:
    def test_accepts_all_hooks_silently(self):
        kernel = make_lottery_kernel()
        kernel.recorder = NullRecorder()
        kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(1000)  # must simply not crash


class TestKernelRecorder:
    def test_dispatch_log_ordered(self):
        kernel = make_lottery_kernel(seed=3)
        recorder = KernelRecorder()
        kernel.recorder = recorder
        kernel.spawn(spin_body(), "a", tickets=10)
        kernel.spawn(spin_body(), "b", tickets=10)
        kernel.run_until(3000)
        times = [t for t, _ in recorder.dispatch_log]
        assert times == sorted(times)
        assert len(times) >= 30

    def test_mean_latency_for_sleeper(self):
        kernel = make_lottery_kernel(seed=5)
        recorder = KernelRecorder()
        kernel.recorder = recorder

        def napper(ctx):
            while True:
                yield Sleep(100.0)
                yield Compute(10.0)

        thread = kernel.spawn(napper, "n", tickets=100)
        kernel.spawn(spin_body(), "hog", tickets=100)
        kernel.run_until(30_000)
        latency = recorder.mean_latency(thread)
        assert latency > 0
        # With equal funding vs one hog, the wake-up wait is around one
        # quantum on average (compensation accelerates re-dispatch).
        assert latency < 300

    def test_mean_latency_unknown_thread_zero(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        thread = kernel.spawn(spin_body(), "t", tickets=1)
        assert recorder.mean_latency(thread) == 0.0

    def test_cpu_time_until(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        kernel.recorder = recorder
        thread = kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(2000)
        assert recorder.cpu_time(thread, until=1000) == pytest.approx(1000)
        assert recorder.cpu_time(thread) == pytest.approx(2000)

    def test_cpu_time_unrecorded_thread(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        thread = kernel.spawn(spin_body(), "t", tickets=10, start=False)
        assert recorder.cpu_time(thread) == 0.0
        assert recorder.cpu_share(thread, 0, 100) == 0.0


class TestRecorderMux:
    def _events(self, tag, log):
        class Sink:
            def on_dispatch(self, thread, time):
                log.append((tag, "dispatch"))

            def on_cpu(self, thread, start, duration):
                log.append((tag, "cpu"))

            def on_block(self, thread, time):
                log.append((tag, "block"))

            def on_wake(self, thread, time):
                log.append((tag, "wake"))

            def on_exit(self, thread, time):
                log.append((tag, "exit"))

        return Sink()

    def test_fan_out_in_attach_order(self):
        log = []
        mux = RecorderMux(self._events("a", log), self._events("b", log))
        mux.on_dispatch(None, 0.0)
        mux.on_exit(None, 1.0)
        assert log == [("a", "dispatch"), ("b", "dispatch"),
                       ("a", "exit"), ("b", "exit")]

    def test_add_rejects_partial_sinks_listing_missing_methods(self):
        class Deaf:
            def on_dispatch(self, thread, time):
                pass

        with pytest.raises(ReproError) as excinfo:
            RecorderMux(Deaf())
        message = str(excinfo.value)
        for name in ("on_cpu", "on_block", "on_wake", "on_exit"):
            assert name in message

    def test_mux_cannot_contain_itself(self):
        mux = RecorderMux()
        with pytest.raises(ReproError, match="cannot contain itself"):
            mux.add(mux)

    def test_remove_is_order_preserving_and_forgiving(self):
        log = []
        a, b = self._events("a", log), self._events("b", log)
        mux = RecorderMux(a, b)
        mux.remove(a)
        mux.remove(a)  # absent: no-op
        mux.on_block(None, 0.0)
        assert log == [("b", "block")]
        assert len(mux) == 1

    def test_empty_mux_short_circuits_without_touching_sink_list(self):
        # Regression: an attached-but-empty mux used to iterate its
        # empty sink list once per kernel event.  The `active` flag
        # must gate every on_* method before the list is touched.
        class Exploding(list):
            def __iter__(self):
                raise AssertionError("sink list iterated while inactive")

        mux = RecorderMux()
        assert mux.active is False
        mux._sinks = Exploding()
        mux.on_dispatch(None, 0.0)
        mux.on_cpu(None, 0.0, 1.0)
        mux.on_block(None, 0.0)
        mux.on_wake(None, 0.0)
        mux.on_exit(None, 0.0)  # none of these may iterate

    def test_active_tracks_add_and_remove(self):
        log = []
        sink = self._events("a", log)
        mux = RecorderMux()
        assert mux.active is False
        mux.add(sink)
        assert mux.active is True
        mux.on_wake(None, 0.0)
        assert log == [("a", "wake")]
        mux.remove(sink)
        assert mux.active is False
        mux.on_wake(None, 1.0)
        assert log == [("a", "wake")]  # inactive mux delivers nothing

    def test_known_sinks_satisfy_the_protocol(self):
        from repro.checkpoint.replay import ReplayRecorder
        from repro.kernel.trace import SchedulerTrace

        for sink in (KernelRecorder(), NullRecorder(), RecorderMux(),
                     SchedulerTrace(), ReplayRecorder()):
            assert isinstance(sink, KernelEventSink)


class TestAttachRecorder:
    def test_slot_upgrades_to_mux_and_back(self):
        kernel = make_lottery_kernel()
        first = NullRecorder()
        second = KernelRecorder()
        kernel.attach_recorder(first)
        assert kernel.recorder is first  # single sink: no mux yet
        kernel.attach_recorder(second)
        assert isinstance(kernel.recorder, RecorderMux)
        assert kernel.recorder.sinks == [first, second]
        kernel.detach_recorder(first)
        kernel.detach_recorder(second)
        assert (kernel.recorder is None
                or len(kernel.recorder) == 0)

    def test_detach_single_sink_clears_slot(self):
        kernel = make_lottery_kernel()
        sink = NullRecorder()
        kernel.attach_recorder(sink)
        kernel.detach_recorder(sink)
        assert kernel.recorder is None

    def test_all_muxed_sinks_observe_the_run(self):
        kernel = make_lottery_kernel(seed=9)
        accounting = KernelRecorder()
        from repro.checkpoint.replay import ReplayRecorder

        replay = ReplayRecorder()
        kernel.attach_recorder(accounting)
        kernel.attach_recorder(replay)
        kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(1000)
        assert replay.entries and accounting.dispatch_log
        assert len(replay.entries) == len(accounting.dispatch_log)
