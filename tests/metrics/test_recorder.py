"""Direct tests for the kernel recorders."""

import pytest

from repro.kernel.syscalls import Compute, Sleep
from repro.metrics.recorder import KernelRecorder, NullRecorder
from tests.conftest import make_lottery_kernel, spin_body


class TestNullRecorder:
    def test_accepts_all_hooks_silently(self):
        kernel = make_lottery_kernel()
        kernel.recorder = NullRecorder()
        kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(1000)  # must simply not crash


class TestKernelRecorder:
    def test_dispatch_log_ordered(self):
        kernel = make_lottery_kernel(seed=3)
        recorder = KernelRecorder()
        kernel.recorder = recorder
        kernel.spawn(spin_body(), "a", tickets=10)
        kernel.spawn(spin_body(), "b", tickets=10)
        kernel.run_until(3000)
        times = [t for t, _ in recorder.dispatch_log]
        assert times == sorted(times)
        assert len(times) >= 30

    def test_mean_latency_for_sleeper(self):
        kernel = make_lottery_kernel(seed=5)
        recorder = KernelRecorder()
        kernel.recorder = recorder

        def napper(ctx):
            while True:
                yield Sleep(100.0)
                yield Compute(10.0)

        thread = kernel.spawn(napper, "n", tickets=100)
        kernel.spawn(spin_body(), "hog", tickets=100)
        kernel.run_until(30_000)
        latency = recorder.mean_latency(thread)
        assert latency > 0
        # With equal funding vs one hog, the wake-up wait is around one
        # quantum on average (compensation accelerates re-dispatch).
        assert latency < 300

    def test_mean_latency_unknown_thread_zero(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        thread = kernel.spawn(spin_body(), "t", tickets=1)
        assert recorder.mean_latency(thread) == 0.0

    def test_cpu_time_until(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        kernel.recorder = recorder
        thread = kernel.spawn(spin_body(), "t", tickets=10)
        kernel.run_until(2000)
        assert recorder.cpu_time(thread, until=1000) == pytest.approx(1000)
        assert recorder.cpu_time(thread) == pytest.approx(2000)

    def test_cpu_time_unrecorded_thread(self):
        kernel = make_lottery_kernel()
        recorder = KernelRecorder()
        thread = kernel.spawn(spin_body(), "t", tickets=10, start=False)
        assert recorder.cpu_time(thread) == 0.0
        assert recorder.cpu_share(thread, 0, 100) == 0.0
