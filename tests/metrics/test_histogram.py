"""Tests for fixed-bin histograms."""

import pytest

from repro.errors import ReproError
from repro.metrics.histogram import Histogram


class TestHistogram:
    def test_binning(self):
        histogram = Histogram(10.0)
        histogram.extend([0.0, 5.0, 9.9, 10.0, 25.0])
        bins = histogram.bins()
        assert bins == [(0.0, 10.0, 3), (10.0, 20.0, 1), (20.0, 30.0, 1)]

    def test_mean_and_stdev(self):
        histogram = Histogram(1.0)
        histogram.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert histogram.mean() == pytest.approx(5.0)
        assert histogram.stdev() == pytest.approx(2.0)

    def test_empty_statistics(self):
        histogram = Histogram(1.0)
        assert histogram.mean() == 0.0
        assert histogram.stdev() == 0.0
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0

    def test_percentiles(self):
        histogram = Histogram(1.0)
        histogram.extend(float(v) for v in range(1, 101))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(90) == 90.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            Histogram(0.0)
        histogram = Histogram(1.0)
        with pytest.raises(ReproError):
            histogram.add(-1.0)
        with pytest.raises(ReproError):
            histogram.percentile(101)

    def test_render_produces_rows(self):
        histogram = Histogram(10.0)
        histogram.extend([5.0, 15.0, 15.0])
        rendered = histogram.render()
        assert len(rendered.splitlines()) == 2
        assert "#" in rendered


class TestEmptyHistogram:
    def test_percentiles_on_empty_histogram_are_zero(self):
        histogram = Histogram(10.0)
        for q in (0, 50, 95, 100):
            assert histogram.percentile(q) == 0.0

    def test_empty_histogram_summary_stats(self):
        histogram = Histogram(10.0)
        assert histogram.count == 0
        assert histogram.mean() == 0.0
        assert histogram.stdev() == 0.0
        assert histogram.bins() == []

    def test_percentile_bounds_still_enforced_when_empty(self):
        histogram = Histogram(10.0)
        with pytest.raises(ReproError):
            histogram.percentile(-0.1)
        with pytest.raises(ReproError):
            histogram.percentile(100.1)


class TestBinBoundaries:
    def test_value_on_exact_bin_boundary_opens_the_next_bin(self):
        histogram = Histogram(10.0)
        histogram.add(10.0)
        assert histogram.bins() == [(10.0, 20.0, 1)]

    def test_zero_lands_in_first_bin(self):
        histogram = Histogram(10.0)
        histogram.add(0.0)
        assert histogram.bins() == [(0.0, 10.0, 1)]
