"""Tests for the terminal chart renderer."""

import pytest

from repro.errors import ReproError
from repro.metrics.ascii_chart import bar_chart, line_chart, scatter_chart


class TestLineChart:
    def test_renders_series_and_legend(self):
        chart = line_chart(
            {"A": [(0, 0), (10, 100)], "B": [(0, 0), (10, 50)]},
            width=32, height=8, title="progress",
        )
        assert "progress" in chart
        assert "* A" in chart
        assert "o B" in chart
        assert "*" in chart and "o" in chart

    def test_y_extremes_labelled(self):
        chart = line_chart({"A": [(0, 0), (5, 200)]}, width=16, height=6)
        assert "200" in chart
        assert "0" in chart

    def test_monotone_series_rises_left_to_right(self):
        chart = line_chart({"A": [(0, 0), (1, 1), (2, 2), (3, 3)]},
                           width=20, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_hit = {}
        for row_index, row in enumerate(rows):
            body = row.split("|", 1)[1]
            for col, ch in enumerate(body):
                if ch == "*" and col not in first_hit:
                    first_hit[col] = row_index
        columns = sorted(first_hit)
        # Higher x (later column) -> higher y (smaller row index).
        assert first_hit[columns[0]] > first_hit[columns[-1]]

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            line_chart({})
        with pytest.raises(ReproError):
            line_chart({"A": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ReproError):
            line_chart({"A": [(0, 1)]}, width=4, height=2)

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"A": [(0, 5), (10, 5)]}, width=16, height=5)
        assert "*" in chart


class TestScatterChart:
    def test_diagonal_reference(self):
        chart = scatter_chart([(1, 1.1), (5, 4.9), (10, 10.4)],
                              diagonal=True, title="fig4")
        assert "observed" in chart
        assert "ideal" in chart

    def test_without_diagonal(self):
        chart = scatter_chart([(1, 2), (2, 4)])
        assert "ideal" not in chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"A": 100.0, "B": 50.0}, width=20)
        rows = chart.splitlines()
        bar_a = rows[0].count("#")
        bar_b = rows[1].count("#")
        assert bar_a == 20
        assert bar_b == 10

    def test_labels_and_units(self):
        chart = bar_chart({"tasks": 3.0}, unit=" q/s", title="rates")
        assert "rates" in chart
        assert "3 q/s" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({})

    def test_zero_values_do_not_crash(self):
        chart = bar_chart({"A": 0.0, "B": 0.0})
        assert "A" in chart
