"""Tests for the section 2.2 statistical laws and summary helpers."""

import math

import pytest

from repro.errors import ReproError
from repro.metrics.stats import (
    binomial_expected_wins,
    binomial_variance,
    geometric_mean_wait,
    geometric_variance,
    mean,
    observed_ratio,
    ratio_error,
    stdev,
    win_proportion_cv,
)


class TestPaperLaws:
    def test_expected_wins(self):
        assert binomial_expected_wins(100, 0.25) == 25.0

    def test_variance(self):
        assert binomial_variance(100, 0.25) == pytest.approx(18.75)

    def test_cv_formula(self):
        # sigma/mu = sqrt((1-p)/(n p)).
        assert win_proportion_cv(100, 0.25) == pytest.approx(
            math.sqrt(0.75 / 25)
        )

    def test_cv_improves_with_sqrt_n(self):
        cv_100 = win_proportion_cv(100, 0.2)
        cv_400 = win_proportion_cv(400, 0.2)
        assert cv_100 / cv_400 == pytest.approx(2.0)

    def test_geometric_laws(self):
        assert geometric_mean_wait(0.1) == pytest.approx(10.0)
        assert geometric_variance(0.1) == pytest.approx(0.9 / 0.01)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.1])
    def test_invalid_probability_rejected(self, p):
        with pytest.raises(ReproError):
            binomial_expected_wins(10, p)
        with pytest.raises(ReproError):
            geometric_mean_wait(p)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ReproError):
            binomial_expected_wins(-1, 0.5)
        with pytest.raises(ReproError):
            win_proportion_cv(0, 0.5)

    def test_empirical_agreement(self, prng):
        # The simulator's own lottery must obey the binomial law.
        from repro.core.lottery import hold_lottery

        p = 0.3
        n = 5000
        wins = sum(
            1
            for _ in range(n)
            if hold_lottery([("t", p), ("rest", 1 - p)], prng) == "t"
        )
        expected = binomial_expected_wins(n, p)
        sigma = math.sqrt(binomial_variance(n, p))
        assert abs(wins - expected) < 4 * sigma


class TestSummaryHelpers:
    def test_mean_and_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert stdev([2.0, 4.0]) == 1.0
        assert stdev([5.0]) == 0.0

    def test_observed_ratio(self):
        assert observed_ratio([400, 100, 200]) == (4.0, 1.0, 2.0)
        assert observed_ratio([0, 0]) == (0.0, 0.0)

    def test_ratio_error_zero_when_exact(self):
        assert ratio_error([2, 1], [2, 1]) == 0.0

    def test_ratio_error_positive_when_off(self):
        assert ratio_error([3, 1], [2, 2]) > 0

    def test_ratio_error_validation(self):
        with pytest.raises(ReproError):
            ratio_error([1], [1, 2])
        with pytest.raises(ReproError):
            ratio_error([0, 0], [1, 1])
