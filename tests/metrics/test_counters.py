"""Tests for windowed counters."""

import pytest

from repro.errors import ReproError
from repro.metrics.counters import WindowedCounter


class TestWindowedCounter:
    def test_totals(self):
        counter = WindowedCounter()
        counter.add(1.0, 5)
        counter.add(2.0, 3)
        assert counter.total == 8
        assert len(counter) == 2

    def test_total_until(self):
        counter = WindowedCounter()
        counter.add(10.0, 1)
        counter.add(20.0, 2)
        counter.add(30.0, 3)
        assert counter.total_until(5.0) == 0
        assert counter.total_until(20.0) == 3
        assert counter.total_until(1000.0) == 6

    def test_count_between(self):
        counter = WindowedCounter()
        for t in range(10):
            counter.add(float(t), 1)
        assert counter.count_between(2.0, 5.0) == 3

    def test_window_rates(self):
        counter = WindowedCounter()
        for t in range(100):
            counter.add(float(t * 10), 1)  # 1 event per 10 ms
        rates = counter.window_rates(window=100.0, horizon=1000.0)
        assert len(rates) == 10
        for _, rate in rates:
            assert rate == pytest.approx(100.0, rel=0.11)  # events/sec

    def test_window_rates_partial_last_window(self):
        counter = WindowedCounter()
        counter.add(140.0, 7)
        rates = counter.window_rates(window=100.0, horizon=150.0)
        assert len(rates) == 2
        start, rate = rates[1]
        assert start == 100.0
        assert rate == pytest.approx(7 / 50.0 * 1000.0)

    def test_cumulative_series(self):
        counter = WindowedCounter()
        counter.add(5.0, 1)
        counter.add(15.0, 1)
        series = counter.cumulative_series(sample_every=10.0, horizon=20.0)
        assert series == [(0.0, 0.0), (10.0, 1.0), (20.0, 2.0)]

    def test_time_monotonicity_enforced(self):
        counter = WindowedCounter()
        counter.add(5.0, 1)
        with pytest.raises(ReproError):
            counter.add(4.0, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            WindowedCounter().add(0.0, -1)

    def test_invalid_window_parameters(self):
        counter = WindowedCounter()
        with pytest.raises(ReproError):
            counter.window_rates(window=0, horizon=10)
        with pytest.raises(ReproError):
            counter.cumulative_series(sample_every=0, horizon=10)


class TestWindowBoundaries:
    def test_event_on_exact_window_boundary_counts_in_earlier_window(self):
        counter = WindowedCounter()
        counter.add(10.0, 1)  # exactly at the first window's closing edge
        rates = counter.window_rates(window=10.0, horizon=20.0, unit=10.0)
        # (start, end] windows: the event at t=10 belongs to (0, 10].
        assert rates == [(0.0, 1.0), (10.0, 0.0)]

    def test_rollover_preserves_totals_across_windows(self):
        counter = WindowedCounter()
        for time in (1.0, 10.0, 10.0, 20.0, 29.0):
            counter.add(time, 1)
        rates = counter.window_rates(window=10.0, horizon=30.0, unit=10.0)
        assert [r for _, r in rates] == [3.0, 1.0, 1.0]
        assert counter.total == 5

    def test_partial_trailing_window_rate_normalized_by_span(self):
        counter = WindowedCounter()
        counter.add(24.0, 2)
        rates = counter.window_rates(window=10.0, horizon=25.0, unit=10.0)
        # Final window spans (20, 25]: 2 events over 5ms at unit=10.
        assert rates[-1] == (20.0, 4.0)

    def test_count_between_is_half_open(self):
        counter = WindowedCounter()
        counter.add(10.0, 1)
        assert counter.count_between(0.0, 10.0) == 1.0
        assert counter.count_between(10.0, 20.0) == 0.0
