"""Tests for multi-resource budgets and manager threads (§6.3)."""

import pytest

from repro.core.multiresource import (
    BottleneckManager,
    ResourceBudget,
    proportional_decide,
)
from repro.errors import ReproError
from repro.kernel.syscalls import Compute
from tests.conftest import make_lottery_kernel


class TestResourceBudget:
    def test_allocations_follow_weights(self):
        budget = ResourceBudget(1000.0, manager_share=0.0)
        applied = {}
        budget.attach("cpu", lambda v: applied.__setitem__("cpu", v),
                      weight=3.0)
        budget.attach("disk", lambda v: applied.__setitem__("disk", v),
                      weight=1.0)
        assert budget.allocation("cpu") == pytest.approx(750.0)
        assert budget.allocation("disk") == pytest.approx(250.0)

    def test_manager_share_reserved(self):
        budget = ResourceBudget(1000.0, manager_share=0.02)
        budget.attach("cpu", lambda v: None)
        assert budget.manager_funding == pytest.approx(20.0)
        assert budget.spendable == pytest.approx(980.0)
        assert budget.allocation("cpu") == pytest.approx(980.0)

    def test_rebalance_applies_amounts(self):
        budget = ResourceBudget(100.0, manager_share=0.0)
        applied = {}
        budget.attach("a", lambda v: applied.__setitem__("a", v))
        budget.attach("b", lambda v: applied.__setitem__("b", v))
        amounts = budget.rebalance({"a": 1.0, "b": 4.0}, now=5.0)
        assert applied == amounts
        assert applied["a"] == pytest.approx(20.0)
        assert applied["b"] == pytest.approx(80.0)
        assert budget.history == [(5.0, amounts)]

    def test_missing_resource_defunded(self):
        budget = ResourceBudget(100.0, manager_share=0.0)
        applied = {}
        budget.attach("a", lambda v: applied.__setitem__("a", v))
        budget.attach("b", lambda v: applied.__setitem__("b", v))
        budget.rebalance({"a": 1.0})
        assert applied["b"] == 0.0
        assert applied["a"] == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            ResourceBudget(0.0)
        with pytest.raises(ReproError):
            ResourceBudget(100.0, manager_share=1.0)
        budget = ResourceBudget(100.0)
        budget.attach("a", lambda v: None)
        with pytest.raises(ReproError):
            budget.attach("a", lambda v: None)
        with pytest.raises(ReproError):
            budget.attach("neg", lambda v: None, weight=-1.0)
        with pytest.raises(ReproError):
            budget.rebalance({"ghost": 1.0})
        with pytest.raises(ReproError):
            budget.rebalance({"a": 0.0})
        with pytest.raises(ReproError):
            budget.allocation("ghost")


class TestProportionalDecide:
    def test_tracks_pressures(self):
        weights = proportional_decide({"cpu": 9.0, "disk": 1.0})
        assert weights["cpu"] > weights["disk"]

    def test_floor_keeps_idle_resource_funded(self):
        weights = proportional_decide({"cpu": 100.0, "disk": 0.0})
        assert weights["disk"] > 0.0


class TestBottleneckManager:
    def test_sensor_validation(self):
        budget = ResourceBudget(100.0)
        budget.attach("cpu", lambda v: None)
        with pytest.raises(ReproError):
            BottleneckManager(budget, sensors={"ghost": lambda: 0.0})
        with pytest.raises(ReproError):
            BottleneckManager(budget, sensors={}, period_ms=0.0)

    def test_manager_rebalances_toward_pressure(self):
        kernel = make_lottery_kernel(seed=3)
        budget = ResourceBudget(1000.0, manager_share=0.01)
        applied = {}
        budget.attach("cpu", lambda v: applied.__setitem__("cpu", v))
        budget.attach("disk", lambda v: applied.__setitem__("disk", v))
        pressure = {"cpu": 1.0, "disk": 9.0}
        manager = BottleneckManager(
            budget,
            sensors={"cpu": lambda: pressure["cpu"],
                     "disk": lambda: pressure["disk"]},
            period_ms=500.0,
        )
        kernel.spawn(manager.body, "manager",
                     tickets=budget.manager_funding)
        kernel.run_until(2_000.0)
        assert manager.decisions >= 2
        assert applied["disk"] > applied["cpu"]
        # Pressure flips: the split must follow.
        pressure["cpu"], pressure["disk"] = 9.0, 1.0
        kernel.run_until(4_000.0)
        assert applied["cpu"] > applied["disk"]

    def test_all_zero_pressure_holds_allocation(self):
        kernel = make_lottery_kernel(seed=4)
        budget = ResourceBudget(100.0, manager_share=0.05)
        budget.attach("cpu", lambda v: None)
        manager = BottleneckManager(budget, sensors={"cpu": lambda: 0.0},
                                    period_ms=200.0)
        kernel.spawn(manager.body, "manager",
                     tickets=budget.manager_funding)
        kernel.run_until(2_000.0)
        assert manager.decisions == 0
        assert budget.history == []

    def test_manager_runs_on_its_reserved_share(self):
        # Even with heavily funded competition, the manager's carved-out
        # funding keeps it deciding periodically.
        kernel = make_lottery_kernel(seed=5)
        budget = ResourceBudget(1000.0, manager_share=0.01)
        budget.attach("cpu", lambda v: None)
        manager = BottleneckManager(budget, sensors={"cpu": lambda: 1.0},
                                    period_ms=500.0)

        def hog(ctx):
            while True:
                yield Compute(100.0)

        kernel.spawn(hog, "hog", tickets=1000)
        kernel.spawn(manager.body, "manager",
                     tickets=budget.manager_funding)
        kernel.run_until(60_000.0)
        assert manager.decisions >= 20
