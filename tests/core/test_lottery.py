"""Tests for the lottery draw structures (paper section 4.2, Figure 1)."""

from collections import Counter

import pytest

from repro.core.lottery import ListLottery, TreeLottery, hold_lottery
from repro.errors import EmptyLotteryError, SchedulerError


def draw_distribution(draw, n):
    return Counter(draw() for _ in range(n))


class TestHoldLottery:
    def test_single_client_always_wins(self, prng):
        assert hold_lottery([("only", 5.0)], prng) == "only"

    def test_zero_value_client_never_wins(self, prng):
        wins = draw_distribution(
            lambda: hold_lottery([("a", 10.0), ("b", 0.0)], prng), 2000
        )
        assert wins["b"] == 0

    def test_empty_total_raises(self, prng):
        with pytest.raises(EmptyLotteryError):
            hold_lottery([("a", 0.0), ("b", 0.0)], prng)

    def test_negative_value_raises(self, prng):
        with pytest.raises(SchedulerError):
            hold_lottery([("a", -1.0)], prng)

    def test_proportions_match_figure1_example(self, prng):
        # Figure 1's five clients with 10/2/5/1/2 of 20 total tickets.
        entries = [("c1", 10.0), ("c2", 2.0), ("c3", 5.0), ("c4", 1.0),
                   ("c5", 2.0)]
        n = 40_000
        wins = draw_distribution(lambda: hold_lottery(entries, prng), n)
        for client, tickets in entries:
            expected = tickets / 20.0
            assert wins[client] / n == pytest.approx(expected, abs=0.02)


class TestListLottery:
    def make(self, values, **kwargs):
        if kwargs.get("keep_sorted"):
            kwargs.setdefault("move_to_front", False)
        lottery = ListLottery(value_of=values.__getitem__, **kwargs)
        for client in values:
            lottery.add(client)
        return lottery

    def test_membership_protocol(self):
        values = {"a": 1.0}
        lottery = self.make(values)
        assert "a" in lottery
        assert len(lottery) == 1
        lottery.remove("a")
        assert "a" not in lottery
        with pytest.raises(SchedulerError):
            lottery.remove("a")

    def test_double_add_rejected(self):
        lottery = self.make({"a": 1.0})
        with pytest.raises(SchedulerError):
            lottery.add("a")

    def test_draw_empty_raises(self, prng):
        lottery = ListLottery(value_of=lambda c: 1.0)
        with pytest.raises(EmptyLotteryError):
            lottery.draw(prng)

    def test_draw_zero_funding_raises(self, prng):
        lottery = self.make({"a": 0.0, "b": 0.0})
        with pytest.raises(EmptyLotteryError):
            lottery.draw(prng)

    def test_proportional_wins(self, prng):
        values = {"a": 3.0, "b": 1.0}
        lottery = self.make(values)
        n = 20_000
        wins = draw_distribution(lambda: lottery.draw(prng), n)
        assert wins["a"] / n == pytest.approx(0.75, abs=0.02)

    def test_values_reread_every_draw(self, prng):
        values = {"a": 1.0, "b": 0.0}
        lottery = self.make(values)
        assert lottery.draw(prng) == "a"
        values["a"], values["b"] = 0.0, 1.0
        assert lottery.draw(prng) == "b"

    def test_move_to_front_promotes_winner(self, prng):
        values = {"a": 1.0, "b": 1000.0, "c": 1.0}
        lottery = self.make(values, move_to_front=True)
        for _ in range(20):
            lottery.draw(prng)
        assert lottery.clients()[0] == "b"

    def test_move_to_front_shortens_search(self, prng):
        # A heavily skewed population: with move-to-front the dominant
        # client migrates to the head, so average search length drops
        # well below the no-heuristic baseline.
        values = {f"c{i}": 1.0 for i in range(20)}
        values["hog"] = 1000.0
        plain = self.make(values, move_to_front=False)
        mtf = self.make(dict(values), move_to_front=True)
        for _ in range(2000):
            plain.draw(prng)
            mtf.draw(prng)
        assert (
            mtf.stats.average_search_length()
            < plain.stats.average_search_length() / 2
        )

    def test_keep_sorted_orders_by_value(self, prng):
        values = {"small": 1.0, "big": 50.0, "mid": 10.0}
        lottery = self.make(values, keep_sorted=True)
        lottery.draw(prng)
        assert lottery.clients() == ["big", "mid", "small"]

    def test_sorted_and_mtf_mutually_exclusive(self):
        with pytest.raises(SchedulerError):
            ListLottery(value_of=lambda c: 1.0, move_to_front=True,
                        keep_sorted=True)

    def test_total(self):
        lottery = self.make({"a": 2.5, "b": 4.5})
        assert lottery.total() == pytest.approx(7.0)

    def test_stats_reset(self, prng):
        lottery = self.make({"a": 1.0})
        lottery.draw(prng)
        assert lottery.stats.draws == 1
        lottery.stats.reset()
        assert lottery.stats.draws == 0
        assert lottery.stats.average_search_length() == 0.0


class TestTreeLottery:
    def make(self, values):
        lottery = TreeLottery()
        for client, value in values.items():
            lottery.add(client, value)
        return lottery

    def test_membership_protocol(self):
        lottery = self.make({"a": 1.0})
        assert "a" in lottery
        assert len(lottery) == 1
        lottery.remove("a")
        assert "a" not in lottery
        with pytest.raises(SchedulerError):
            lottery.remove("a")

    def test_double_add_rejected(self):
        lottery = self.make({"a": 1.0})
        with pytest.raises(SchedulerError):
            lottery.add("a", 2.0)

    def test_negative_value_rejected(self):
        lottery = TreeLottery()
        with pytest.raises(SchedulerError):
            lottery.add("a", -1.0)
        lottery.add("a", 1.0)
        with pytest.raises(SchedulerError):
            lottery.set_value("a", -2.0)

    def test_total_tracks_updates(self):
        lottery = self.make({"a": 5.0, "b": 3.0})
        assert lottery.total() == pytest.approx(8.0)
        lottery.set_value("a", 1.0)
        assert lottery.total() == pytest.approx(4.0)
        lottery.remove("b")
        assert lottery.total() == pytest.approx(1.0)

    def test_proportional_wins(self, prng):
        values = {"a": 1.0, "b": 2.0, "c": 7.0}
        lottery = self.make(values)
        n = 30_000
        wins = draw_distribution(lambda: lottery.draw(prng), n)
        for client, value in values.items():
            assert wins[client] / n == pytest.approx(value / 10.0, abs=0.02)

    def test_zero_valued_client_never_wins(self, prng):
        lottery = self.make({"a": 0.0, "b": 5.0})
        wins = draw_distribution(lambda: lottery.draw(prng), 2000)
        assert wins["a"] == 0

    def test_empty_raises(self, prng):
        lottery = TreeLottery()
        with pytest.raises(EmptyLotteryError):
            lottery.draw(prng)

    def test_slot_recycling(self, prng):
        lottery = self.make({"a": 1.0, "b": 1.0})
        lottery.remove("a")
        lottery.add("c", 3.0)  # reuses a's slot
        assert lottery.value_of("c") == 3.0
        wins = draw_distribution(lambda: lottery.draw(prng), 8000)
        assert wins["c"] / 8000 == pytest.approx(0.75, abs=0.03)

    def test_matches_list_lottery_distribution(self, prng):
        values = {f"c{i}": float(i + 1) for i in range(12)}
        tree = self.make(values)
        list_lottery = ListLottery(value_of=values.__getitem__,
                                   move_to_front=False)
        for client in values:
            list_lottery.add(client)
        n = 30_000
        tree_wins = draw_distribution(lambda: tree.draw(prng), n)
        list_wins = draw_distribution(lambda: list_lottery.draw(prng), n)
        total = sum(values.values())
        for client, value in values.items():
            expected = value / total
            assert tree_wins[client] / n == pytest.approx(expected, abs=0.02)
            assert list_wins[client] / n == pytest.approx(expected, abs=0.02)

    def test_logarithmic_search_depth(self, prng):
        lottery = TreeLottery()
        count = 1024
        for i in range(count):
            lottery.add(f"c{i}", 1.0)
        for _ in range(200):
            lottery.draw(prng)
        # lg(1024) = 10 levels, far below the list lottery's ~n/2.
        assert lottery.stats.average_search_length() <= 12
