"""Tests for compensation tickets (paper sections 3.4 / 4.5)."""

import pytest

from repro.core.compensation import CompensationManager, MIN_FRACTION
from repro.core.tickets import TicketHolder
from repro.errors import SchedulerError


@pytest.fixture
def manager(ledger):
    return CompensationManager(ledger)


def competing_holder(ledger, amount=400.0):
    holder = TicketHolder("h")
    ledger.create_ticket(amount, fund=holder)
    holder.start_competing()
    return holder


class TestGrants:
    def test_paper_worked_example(self, ledger, manager):
        # Section 4.5: 400-unit thread using 1/5 of its quantum gets a
        # compensation ticket worth 1600 base units -> total 2000.
        holder = competing_holder(ledger, 400)
        manager.on_quantum_end(holder, used=20.0, quantum=100.0)
        assert manager.compensation_value(holder) == pytest.approx(1600)
        assert holder.funding() == pytest.approx(2000)

    def test_full_quantum_grants_nothing(self, ledger, manager):
        holder = competing_holder(ledger)
        manager.on_quantum_end(holder, used=100.0, quantum=100.0)
        assert manager.compensation_value(holder) == 0.0

    def test_overshoot_grants_nothing(self, ledger, manager):
        holder = competing_holder(ledger)
        manager.on_quantum_end(holder, used=120.0, quantum=100.0)
        assert manager.compensation_value(holder) == 0.0

    def test_zero_use_grants_nothing(self, ledger, manager):
        # Below clock granularity: no compensation is defined.
        holder = competing_holder(ledger)
        manager.on_quantum_end(holder, used=0.0, quantum=100.0)
        assert manager.compensation_value(holder) == 0.0

    def test_tiny_use_clamped(self, ledger, manager):
        holder = competing_holder(ledger, 100)
        manager.on_quantum_end(holder, used=1e-5, quantum=100.0)
        # Clamped at MIN_FRACTION: bonus = 100 * (1/MIN_FRACTION - 1).
        expected = 100 * (1.0 / MIN_FRACTION - 1.0)
        assert manager.compensation_value(holder) == pytest.approx(expected)

    def test_unfunded_holder_gets_nothing(self, ledger, manager):
        holder = TicketHolder("poor")
        holder.start_competing()
        manager.on_quantum_end(holder, used=10.0, quantum=100.0)
        assert manager.compensation_value(holder) == 0.0

    def test_grant_counts(self, ledger, manager):
        holder = competing_holder(ledger)
        manager.on_quantum_end(holder, used=50.0, quantum=100.0)
        manager.on_quantum_end(holder, used=50.0, quantum=100.0)
        assert manager.grants_issued == 2
        assert manager.outstanding() == 1


class TestRevocation:
    def test_quantum_start_revokes(self, ledger, manager):
        holder = competing_holder(ledger, 400)
        manager.on_quantum_end(holder, used=20.0, quantum=100.0)
        manager.on_quantum_start(holder)
        assert manager.compensation_value(holder) == 0.0
        assert holder.funding() == pytest.approx(400)

    def test_regrant_replaces_not_stacks(self, ledger, manager):
        holder = competing_holder(ledger, 400)
        manager.on_quantum_end(holder, used=20.0, quantum=100.0)
        manager.on_quantum_end(holder, used=50.0, quantum=100.0)
        # Second grant computed from base funding 400, not 2000.
        assert manager.compensation_value(holder) == pytest.approx(400)
        assert manager.outstanding() == 1

    def test_holder_removal_cleans_up(self, ledger, manager):
        holder = competing_holder(ledger)
        manager.on_quantum_end(holder, used=20.0, quantum=100.0)
        manager.on_holder_removed(holder)
        assert manager.outstanding() == 0
        assert holder.funding() == pytest.approx(400)


class TestValidation:
    def test_bad_quantum_rejected(self, ledger, manager):
        holder = competing_holder(ledger)
        with pytest.raises(SchedulerError):
            manager.on_quantum_end(holder, used=10.0, quantum=0.0)

    def test_negative_usage_rejected(self, ledger, manager):
        holder = competing_holder(ledger)
        with pytest.raises(SchedulerError):
            manager.on_quantum_end(holder, used=-1.0, quantum=100.0)


class TestShareRestoration:
    def test_compensation_restores_proportional_share(self, ledger, manager,
                                                      prng):
        """The section 4.5 equilibrium: B (1/5 quantum user) wins five
        times as often as equally funded A once compensated."""
        from repro.core.lottery import hold_lottery

        a = competing_holder(ledger, 400)
        b = competing_holder(ledger, 400)
        manager.on_quantum_end(b, used=20.0, quantum=100.0)
        wins_b = 0
        n = 20_000
        for _ in range(n):
            entries = [(1, a.funding()), (2, b.funding())]
            if hold_lottery(entries, prng) == 2:
                wins_b += 1
        assert wins_b / n == pytest.approx(2000 / 2400, abs=0.02)
