"""Tests for the Park-Miller PRNG (paper Appendix A)."""

import math

import pytest

from repro.core.prng import (
    MODULUS,
    MULTIPLIER,
    ParkMillerPRNG,
    fastrand,
    fastrand_reference,
)
from repro.errors import ReproError


class TestFastrand:
    def test_matches_reference_for_many_seeds(self):
        seed = 1
        for _ in range(5000):
            expected = fastrand_reference(seed)
            assert fastrand(seed) == expected
            seed = expected

    def test_known_park_miller_checkpoint(self):
        # The canonical Park-Miller validation: starting from seed 1,
        # the 10,000th value is 1043618065 [Par88].
        seed = 1
        for _ in range(10_000):
            seed = fastrand(seed)
        assert seed == 1043618065

    def test_first_values_from_seed_one(self):
        assert fastrand(1) == MULTIPLIER
        assert fastrand(MULTIPLIER) == (MULTIPLIER * MULTIPLIER) % MODULUS

    def test_output_stays_in_range(self):
        seed = 987654321
        for _ in range(1000):
            seed = fastrand(seed)
            assert 0 < seed < MODULUS

    @pytest.mark.parametrize("bad", [0, -5, MODULUS, MODULUS + 1])
    def test_rejects_out_of_range_seeds(self, bad):
        with pytest.raises(ReproError):
            fastrand(bad)

    @pytest.mark.parametrize("seed", [20443707, 30282241, 40120775])
    def test_overflow_branch_exercised(self, seed):
        # These seeds make the Carta sum P + Q overflow bit 31 (found
        # by exhaustive search), forcing the fold-back branch of the
        # assembly listing; the reference must still agree there.
        product = 2 * MULTIPLIER * seed
        assert ((product >> 32) + ((product & 0xFFFFFFFF) >> 1)) & 0x80000000
        assert fastrand(seed) == fastrand_reference(seed)


class TestParkMillerPRNG:
    def test_reproducible_streams(self):
        a = ParkMillerPRNG(42)
        b = ParkMillerPRNG(42)
        assert [a.next_uint() for _ in range(100)] == [
            b.next_uint() for _ in range(100)
        ]

    def test_seed_folding_accepts_any_int(self):
        assert ParkMillerPRNG(0).state > 0
        assert ParkMillerPRNG(-17).state > 0
        assert ParkMillerPRNG(MODULUS).state > 0
        assert ParkMillerPRNG(MODULUS * 5 + 3).state > 0

    def test_randrange_bounds(self):
        prng = ParkMillerPRNG(7)
        values = [prng.randrange(10) for _ in range(2000)]
        assert min(values) == 0
        assert max(values) == 9

    def test_randrange_roughly_uniform(self):
        prng = ParkMillerPRNG(11)
        n = 30_000
        counts = [0] * 5
        for _ in range(n):
            counts[prng.randrange(5)] += 1
        for count in counts:
            assert abs(count - n / 5) < 5 * math.sqrt(n)

    def test_randrange_rejects_bad_bounds(self):
        prng = ParkMillerPRNG(1)
        with pytest.raises(ReproError):
            prng.randrange(0)
        with pytest.raises(ReproError):
            prng.randrange(-3)
        with pytest.raises(ReproError):
            prng.randrange(MODULUS)

    def test_uniform_in_unit_interval(self):
        prng = ParkMillerPRNG(13)
        values = [prng.uniform() for _ in range(5000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.02

    def test_expovariate_mean(self):
        prng = ParkMillerPRNG(17)
        rate = 0.25
        values = [prng.expovariate(rate) for _ in range(20_000)]
        assert abs(sum(values) / len(values) - 1 / rate) < 0.15

    def test_expovariate_rejects_nonpositive_rate(self):
        with pytest.raises(ReproError):
            ParkMillerPRNG(1).expovariate(0)

    def test_choice_and_shuffle(self):
        prng = ParkMillerPRNG(19)
        items = list(range(10))
        picked = {prng.choice(items) for _ in range(500)}
        assert picked == set(items)
        shuffled = list(items)
        prng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_choice_rejects_empty(self):
        with pytest.raises(ReproError):
            ParkMillerPRNG(1).choice([])

    def test_spawn_produces_distinct_stream(self):
        parent = ParkMillerPRNG(23)
        child = parent.spawn()
        assert child.initial_seed != parent.initial_seed
        parent_values = [parent.next_uint() for _ in range(50)]
        child_values = [child.next_uint() for _ in range(50)]
        assert parent_values != child_values

    def test_reseed_restarts_stream(self):
        prng = ParkMillerPRNG(29)
        first = [prng.next_uint() for _ in range(10)]
        prng.reseed(29)
        assert [prng.next_uint() for _ in range(10)] == first

    def test_iter_uints(self):
        prng = ParkMillerPRNG(31)
        values = list(prng.iter_uints(5))
        assert len(values) == 5
        assert all(0 < v < MODULUS for v in values)
