"""Tests for inverse lotteries (paper section 6.2)."""

from collections import Counter

import pytest

from repro.core.inverse import (
    inverse_lottery,
    inverse_probabilities,
    weighted_inverse_lottery,
)
from repro.errors import EmptyLotteryError, SchedulerError


class TestInverseProbabilities:
    def test_formula(self):
        entries = [("a", 3.0), ("b", 1.0)]
        probs = dict(inverse_probabilities(entries))
        # P[i] = (1/(n-1)) * (1 - t_i/T), n=2, T=4.
        assert probs["a"] == pytest.approx(1.0 * (1 - 3 / 4))
        assert probs["b"] == pytest.approx(1.0 * (1 - 1 / 4))

    def test_probabilities_sum_to_one(self):
        entries = [("a", 5.0), ("b", 3.0), ("c", 2.0), ("d", 0.0)]
        probs = inverse_probabilities(entries)
        assert sum(p for _, p in probs) == pytest.approx(1.0)

    def test_monotone_in_tickets(self):
        entries = [("rich", 70.0), ("mid", 20.0), ("poor", 10.0)]
        probs = dict(inverse_probabilities(entries))
        assert probs["rich"] < probs["mid"] < probs["poor"]

    def test_requires_two_clients(self):
        with pytest.raises(SchedulerError):
            inverse_probabilities([("only", 1.0)])

    def test_zero_total_rejected(self):
        with pytest.raises(EmptyLotteryError):
            inverse_probabilities([("a", 0.0), ("b", 0.0)])

    def test_negative_tickets_rejected(self):
        with pytest.raises(SchedulerError):
            inverse_probabilities([("a", -1.0), ("b", 2.0)])


class TestInverseLottery:
    def test_distribution_matches_formula(self, prng):
        entries = [("a", 6.0), ("b", 3.0), ("c", 1.0)]
        expected = dict(inverse_probabilities(entries))
        n = 30_000
        losses = Counter(inverse_lottery(entries, prng) for _ in range(n))
        for client, probability in expected.items():
            assert losses[client] / n == pytest.approx(probability, abs=0.02)

    def test_sole_ticket_holder_never_loses_among_two(self, prng):
        entries = [("rich", 10.0), ("poor", 0.0)]
        losses = Counter(inverse_lottery(entries, prng) for _ in range(2000))
        assert losses["rich"] == 0


class TestWeightedInverseLottery:
    def test_usage_weighting(self, prng):
        # Equal tickets: loss probability proportional to usage.
        entries = [("a", 1.0, 0.9), ("b", 1.0, 0.1)]
        n = 20_000
        losses = Counter(
            weighted_inverse_lottery(entries, prng) for _ in range(n)
        )
        assert losses["a"] / n == pytest.approx(0.9, abs=0.02)

    def test_zero_usage_client_never_loses(self, prng):
        entries = [("user", 1.0, 0.5), ("idle", 1.0, 0.0)]
        losses = Counter(
            weighted_inverse_lottery(entries, prng) for _ in range(2000)
        )
        assert losses["idle"] == 0

    def test_degenerate_monopoly_falls_back_to_usage(self, prng):
        # One client holds ALL tickets and all usage: someone must still
        # be chosen, so selection falls back to usage-proportional.
        entries = [("hog", 10.0, 1.0), ("idle", 0.0, 0.0)]
        losses = Counter(
            weighted_inverse_lottery(entries, prng) for _ in range(500)
        )
        assert losses["hog"] == 500

    def test_requires_two_clients(self, prng):
        with pytest.raises(SchedulerError):
            weighted_inverse_lottery([("only", 1.0, 1.0)], prng)

    def test_negative_inputs_rejected(self, prng):
        with pytest.raises(SchedulerError):
            weighted_inverse_lottery(
                [("a", -1.0, 0.5), ("b", 1.0, 0.5)], prng
            )
        with pytest.raises(SchedulerError):
            weighted_inverse_lottery(
                [("a", 1.0, -0.5), ("b", 1.0, 0.5)], prng
            )
