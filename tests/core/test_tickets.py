"""Tests for tickets, currencies, and the funding graph (paper §3-4)."""

import pytest

from repro.core.tickets import Ledger, TicketHolder
from repro.errors import (
    CurrencyCycleError,
    CurrencyError,
    TicketError,
)


class TestLedgerBasics:
    def test_base_currency_exists(self, ledger):
        assert ledger.base.is_base
        assert ledger.currency("base") is ledger.base

    def test_create_and_lookup_currency(self, ledger):
        alice = ledger.create_currency("alice")
        assert ledger.currency("alice") is alice
        assert not alice.is_base

    def test_duplicate_currency_rejected(self, ledger):
        ledger.create_currency("alice")
        with pytest.raises(CurrencyError):
            ledger.create_currency("alice")

    def test_unknown_currency_lookup(self, ledger):
        with pytest.raises(CurrencyError):
            ledger.currency("nope")

    def test_base_cannot_be_destroyed(self, ledger):
        with pytest.raises(CurrencyError):
            ledger.base.destroy()

    def test_destroy_empty_currency(self, ledger):
        alice = ledger.create_currency("alice")
        alice.destroy()
        with pytest.raises(CurrencyError):
            ledger.currency("alice")

    def test_destroy_currency_with_issue_rejected(self, ledger):
        alice = ledger.create_currency("alice")
        ledger.create_ticket(10, currency=alice)
        with pytest.raises(CurrencyError):
            alice.destroy()

    def test_destroying_currency_unfunds_backing(self, ledger):
        alice = ledger.create_currency("alice")
        backing = ledger.create_ticket(100, fund=alice)
        alice.destroy()
        assert backing.target is None

    def test_snapshot_lists_every_currency(self, ledger):
        ledger.create_currency("a")
        ledger.create_currency("b")
        snapshot = ledger.snapshot()
        assert set(snapshot) == {"base", "a", "b"}


class TestTicketBasics:
    def test_negative_amount_rejected(self, ledger):
        with pytest.raises(TicketError):
            ledger.create_ticket(-1)

    def test_ticket_funds_holder_and_detaches(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(100, fund=holder)
        assert ticket in holder.tickets
        ticket.unfund()
        assert ticket not in holder.tickets
        assert ticket.target is None

    def test_double_fund_rejected(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(100, fund=holder)
        with pytest.raises(TicketError):
            ticket.fund(holder)

    def test_unfund_is_idempotent(self, ledger):
        ticket = ledger.create_ticket(10)
        ticket.unfund()
        ticket.unfund()

    def test_destroy_removes_from_currency_issue(self, ledger):
        ticket = ledger.create_ticket(10)
        assert ticket in ledger.base.issued
        ticket.destroy()
        assert ticket not in ledger.base.issued

    def test_set_amount_updates_active_sum(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(100, fund=holder)
        holder.start_competing()
        assert ledger.base.active_amount == 100
        ticket.set_amount(250)
        assert ledger.base.active_amount == 250

    def test_set_amount_rejects_negative(self, ledger):
        ticket = ledger.create_ticket(10)
        with pytest.raises(TicketError):
            ticket.set_amount(-1)

    def test_wrong_ledger_currency_rejected(self, ledger):
        other = Ledger()
        foreign = other.create_currency("foreign")
        with pytest.raises(TicketError):
            ledger.create_ticket(10, currency=foreign)


class TestActivationPropagation:
    def test_holder_competing_activates_tickets(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(100, fund=holder)
        assert not ticket.active
        holder.start_competing()
        assert ticket.active
        holder.stop_competing()
        assert not ticket.active

    def test_attach_while_competing_activates_immediately(self, ledger):
        holder = TicketHolder("h")
        holder.start_competing()
        ticket = ledger.create_ticket(100, fund=holder)
        assert ticket.active
        assert ledger.base.active_amount == 100

    def test_propagation_through_currency(self, ledger):
        alice = ledger.create_currency("alice")
        backing = ledger.create_ticket(1000, fund=alice)
        holder = TicketHolder("h")
        thread_ticket = ledger.create_ticket(100, currency=alice, fund=holder)
        # Nothing active yet: the backing ticket is dormant too.
        assert not backing.active
        holder.start_competing()
        # Activation propagated: alice now has active issue, so its
        # backing base ticket activates (paper section 4.4).
        assert thread_ticket.active
        assert backing.active
        assert ledger.base.active_amount == 1000
        holder.stop_competing()
        assert not backing.active
        assert ledger.base.active_amount == 0

    def test_partial_deactivation_keeps_backing_active(self, ledger):
        alice = ledger.create_currency("alice")
        backing = ledger.create_ticket(1000, fund=alice)
        h1, h2 = TicketHolder("h1"), TicketHolder("h2")
        ledger.create_ticket(100, currency=alice, fund=h1)
        ledger.create_ticket(200, currency=alice, fund=h2)
        h1.start_competing()
        h2.start_competing()
        assert alice.active_amount == 300
        h1.stop_competing()
        # One consumer remains: backing stays active.
        assert backing.active
        assert alice.active_amount == 200


class TestValuation:
    def test_base_ticket_worth_face_value(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(42, fund=holder)
        holder.start_competing()
        assert ticket.base_value() == 42

    def test_inactive_ticket_worth_nothing(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(42, fund=holder)
        assert ticket.base_value() == 0.0

    def test_paper_figure3_worked_example(self, ledger):
        """Figure 3: alice=1000 base, bob=2000 base; task1 inactive,
        task2 = 200.alice with threads 200+300, task3 = 100.bob with
        thread4 = 100; values 400/600/2000."""
        alice = ledger.create_currency("alice")
        bob = ledger.create_currency("bob")
        ledger.create_ticket(1000, fund=alice)
        ledger.create_ticket(2000, fund=bob)
        task1 = ledger.create_currency("task1")
        task2 = ledger.create_currency("task2")
        task3 = ledger.create_currency("task3")
        ledger.create_ticket(100, currency=alice, fund=task1)  # inactive
        ledger.create_ticket(200, currency=alice, fund=task2)
        ledger.create_ticket(100, currency=bob, fund=task3)
        thread1 = TicketHolder("thread1")  # never competes
        thread2, thread3, thread4 = (
            TicketHolder(f"thread{i}") for i in (2, 3, 4)
        )
        ledger.create_ticket(100, currency=task1, fund=thread1)
        ledger.create_ticket(200, currency=task2, fund=thread2)
        ledger.create_ticket(300, currency=task2, fund=thread3)
        ledger.create_ticket(100, currency=task3, fund=thread4)
        for holder in (thread2, thread3, thread4):
            holder.start_competing()
        assert thread2.funding() == pytest.approx(400)
        assert thread3.funding() == pytest.approx(600)
        assert thread4.funding() == pytest.approx(2000)
        assert ledger.total_active_base() == pytest.approx(3000)

    def test_currency_value_sums_backing(self, ledger):
        alice = ledger.create_currency("alice")
        ledger.create_ticket(300, fund=alice)
        ledger.create_ticket(200, fund=alice)
        holder = TicketHolder("h")
        ledger.create_ticket(1, currency=alice, fund=holder)
        holder.start_competing()
        assert alice.base_value() == pytest.approx(500)

    def test_exchange_rate(self, ledger):
        alice = ledger.create_currency("alice")
        ledger.create_ticket(1000, fund=alice)
        holder = TicketHolder("h")
        ledger.create_ticket(100, currency=alice, fund=holder)
        holder.start_competing()
        # 1 alice unit = 10 base units.
        assert alice.exchange_rate(ledger.base) == pytest.approx(10.0)

    def test_exchange_rate_with_inactive_counterparty(self, ledger):
        alice = ledger.create_currency("alice")
        bob = ledger.create_currency("bob")
        ledger.create_ticket(1000, fund=alice)
        holder = TicketHolder("h")
        ledger.create_ticket(100, currency=alice, fund=holder)
        holder.start_competing()
        with pytest.raises(CurrencyError):
            alice.exchange_rate(bob)

    def test_inflation_dilutes_siblings(self, ledger):
        alice = ledger.create_currency("alice")
        ledger.create_ticket(1000, fund=alice)
        h1, h2 = TicketHolder("h1"), TicketHolder("h2")
        t1 = ledger.create_ticket(100, currency=alice, fund=h1)
        ledger.create_ticket(100, currency=alice, fund=h2)
        h1.start_competing()
        h2.start_competing()
        assert h1.funding() == pytest.approx(500)
        # h1 inflates its ticket; h2's share shrinks, total conserved.
        t1.set_amount(300)
        assert h1.funding() == pytest.approx(750)
        assert h2.funding() == pytest.approx(250)
        assert ledger.total_active_base() == pytest.approx(1000)

    def test_nominal_value_defined_while_inactive(self, ledger):
        alice = ledger.create_currency("alice")
        ledger.create_ticket(1000, fund=alice)
        holder = TicketHolder("h")
        ledger.create_ticket(100, currency=alice, fund=holder)
        assert holder.funding() == 0.0
        assert holder.nominal_funding() == pytest.approx(1000)

    def test_value_cache_invalidated_by_mutation(self, ledger):
        alice = ledger.create_currency("alice")
        backing = ledger.create_ticket(500, fund=alice)
        holder = TicketHolder("h")
        ledger.create_ticket(1, currency=alice, fund=holder)
        holder.start_competing()
        assert alice.base_value() == pytest.approx(500)
        backing.set_amount(900)
        assert alice.base_value() == pytest.approx(900)


class TestCycleDetection:
    def test_self_funding_rejected(self, ledger):
        alice = ledger.create_currency("alice")
        ticket = ledger.create_ticket(10, currency=alice)
        with pytest.raises(CurrencyCycleError):
            ticket.fund(alice)

    def test_two_currency_cycle_rejected(self, ledger):
        a = ledger.create_currency("a")
        b = ledger.create_currency("b")
        ledger.create_ticket(10, currency=a, fund=b)
        bad = ledger.create_ticket(10, currency=b)
        with pytest.raises(CurrencyCycleError):
            bad.fund(a)

    def test_long_cycle_rejected(self, ledger):
        names = ["c1", "c2", "c3", "c4"]
        currencies = [ledger.create_currency(n) for n in names]
        for upstream, downstream in zip(currencies, currencies[1:]):
            ledger.create_ticket(10, currency=upstream, fund=downstream)
        bad = ledger.create_ticket(10, currency=currencies[-1])
        with pytest.raises(CurrencyCycleError):
            bad.fund(currencies[0])

    def test_diamond_graph_allowed(self, ledger):
        # a funds b and c; b and c both fund d: acyclic, legal.
        a = ledger.create_currency("a")
        b = ledger.create_currency("b")
        c = ledger.create_currency("c")
        d = ledger.create_currency("d")
        ledger.create_ticket(10, currency=a, fund=b)
        ledger.create_ticket(10, currency=a, fund=c)
        ledger.create_ticket(10, currency=b, fund=d)
        ledger.create_ticket(10, currency=c, fund=d)  # should not raise
