"""Tests for ticket inflation and the error-driven controller (§3.2, §5.2)."""

import pytest

from repro.core.inflation import (
    ErrorDrivenInflator,
    deflate,
    inflate,
    set_share,
)
from repro.core.tickets import TicketHolder
from repro.errors import InsufficientTicketsError, TicketError


@pytest.fixture
def funded(ledger):
    currency = ledger.create_currency("group")
    ledger.create_ticket(1000, fund=currency)
    holder = TicketHolder("h")
    ledger.create_ticket(100, currency=currency, fund=holder)
    holder.start_competing()
    return currency, holder


class TestPrimitives:
    def test_set_share(self, ledger, funded):
        currency, holder = funded
        set_share(holder, currency, 250)
        assert holder.tickets[0].amount == 250

    def test_inflate_and_deflate(self, ledger, funded):
        currency, holder = funded
        inflate(holder, currency, 50)
        assert holder.tickets[0].amount == 150
        deflate(holder, currency, 100)
        assert holder.tickets[0].amount == 50

    def test_inflation_immediately_visible_in_funding(self, ledger, funded):
        currency, holder = funded
        other = TicketHolder("other")
        ledger.create_ticket(100, currency=currency, fund=other)
        other.start_competing()
        assert holder.funding() == pytest.approx(500)
        inflate(holder, currency, 200)
        assert holder.funding() == pytest.approx(750)

    def test_deflate_below_zero_rejected(self, ledger, funded):
        currency, holder = funded
        with pytest.raises(InsufficientTicketsError):
            deflate(holder, currency, 200)

    def test_negative_deltas_rejected(self, ledger, funded):
        currency, holder = funded
        with pytest.raises(TicketError):
            inflate(holder, currency, -5)
        with pytest.raises(TicketError):
            deflate(holder, currency, -5)

    def test_missing_ticket_rejected(self, ledger):
        currency = ledger.create_currency("c")
        with pytest.raises(TicketError):
            set_share(TicketHolder("stranger"), currency, 10)

    def test_compensation_tickets_ignored(self, ledger, funded):
        currency, holder = funded
        comp = ledger.create_ticket(999, currency=currency, tag="compensation")
        comp.fund(holder)
        # set_share must adjust the real ticket, not the compensation.
        set_share(holder, currency, 42)
        amounts = sorted(t.amount for t in holder.tickets)
        assert amounts == [42, 999]


class TestErrorDrivenInflator:
    def test_quadratic_mapping(self, ledger, funded):
        currency, holder = funded
        inflator = ErrorDrivenInflator(currency, scale=1000, exponent=2.0,
                                       floor=0.0)
        assert inflator.update(holder, 0.5) == pytest.approx(250)
        assert inflator.update(holder, 1.0) == pytest.approx(1000)

    def test_error_clamped_to_unit_interval(self, ledger, funded):
        currency, holder = funded
        inflator = ErrorDrivenInflator(currency, scale=1000, floor=0.0)
        assert inflator.update(holder, 5.0) == pytest.approx(1000)
        assert inflator.update(holder, -1.0) == 0.0

    def test_floor_applies(self, ledger, funded):
        currency, holder = funded
        inflator = ErrorDrivenInflator(currency, scale=1000, floor=7.0)
        assert inflator.update(holder, 0.0) == pytest.approx(7.0)

    def test_exponent_choice(self, ledger, funded):
        currency, holder = funded
        linear = ErrorDrivenInflator(currency, scale=1000, exponent=1.0,
                                     floor=0.0)
        assert linear.update(holder, 0.5) == pytest.approx(500)
        cubic = ErrorDrivenInflator(currency, scale=1000, exponent=3.0,
                                    floor=0.0)
        assert cubic.update(holder, 0.5) == pytest.approx(125)

    def test_last_error_tracked(self, ledger, funded):
        currency, holder = funded
        inflator = ErrorDrivenInflator(currency, scale=100)
        assert inflator.last_error(holder) is None
        inflator.update(holder, 0.25)
        assert inflator.last_error(holder) == pytest.approx(0.25)

    def test_invalid_parameters_rejected(self, ledger, funded):
        currency, _ = funded
        with pytest.raises(TicketError):
            ErrorDrivenInflator(currency, scale=0)
        with pytest.raises(TicketError):
            ErrorDrivenInflator(currency, scale=10, floor=-1)
