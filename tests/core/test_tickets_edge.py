"""Edge-case tests for the ticket/currency object model."""

import pytest

from repro.core.tickets import TicketHolder
from repro.errors import TicketError


class TestDestroyedTickets:
    def test_destroyed_ticket_cannot_be_refunded(self, ledger):
        ticket = ledger.create_ticket(10)
        ticket.destroy()
        with pytest.raises(TicketError):
            ticket.fund(TicketHolder("h"))

    def test_destroy_active_ticket_deactivates(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(100, fund=holder)
        holder.start_competing()
        assert ledger.base.active_amount == 100
        ticket.destroy()
        assert ledger.base.active_amount == 0
        assert ticket not in holder.tickets

    def test_double_destroy_harmless(self, ledger):
        ticket = ledger.create_ticket(10)
        ticket.destroy()
        ticket.destroy()


class TestZeroAmountTickets:
    def test_zero_ticket_is_legal_but_worthless(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(0, fund=holder)
        holder.start_competing()
        assert ticket.active
        assert holder.funding() == 0.0

    def test_zero_ticket_can_be_inflated_later(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(0, fund=holder)
        holder.start_competing()
        ticket.set_amount(75)
        assert holder.funding() == pytest.approx(75)
        assert ledger.base.active_amount == pytest.approx(75)


class TestRefunding:
    def test_ticket_can_move_between_holders(self, ledger):
        a, b = TicketHolder("a"), TicketHolder("b")
        a.start_competing()
        b.start_competing()
        ticket = ledger.create_ticket(60, fund=a)
        assert a.funding() == 60
        ticket.unfund()
        ticket.fund(b)
        assert a.funding() == 0
        assert b.funding() == 60

    def test_ticket_can_move_from_holder_to_currency(self, ledger):
        holder = TicketHolder("h")
        group = ledger.create_currency("group")
        member = TicketHolder("member")
        ledger.create_ticket(10, currency=group, fund=member)
        member.start_competing()
        ticket = ledger.create_ticket(40, fund=holder)
        ticket.unfund()
        ticket.fund(group)
        assert member.funding() == pytest.approx(40)


class TestHolderLifecycle:
    def test_double_start_competing_is_idempotent(self, ledger):
        holder = TicketHolder("h")
        ledger.create_ticket(30, fund=holder)
        holder.start_competing()
        holder.start_competing()
        assert ledger.base.active_amount == 30
        holder.stop_competing()
        holder.stop_competing()
        assert ledger.base.active_amount == 0

    def test_detach_inactive_ticket(self, ledger):
        holder = TicketHolder("h")
        ticket = ledger.create_ticket(10, fund=holder)
        # Never competed: detach must not underflow active amounts.
        ticket.unfund()
        assert ledger.base.active_amount == 0

    def test_funding_currency_value_with_multiple_backers(self, ledger):
        group = ledger.create_currency("group")
        ledger.create_ticket(100, fund=group)
        ledger.create_ticket(50, fund=group)
        third = ledger.create_ticket(25, fund=group)
        holder = TicketHolder("h")
        ledger.create_ticket(1, currency=group, fund=holder)
        holder.start_competing()
        assert holder.funding() == pytest.approx(175)
        third.unfund()
        assert holder.funding() == pytest.approx(150)


class TestLedgerSnapshot:
    def test_snapshot_reflects_activity(self, ledger):
        group = ledger.create_currency("group")
        ledger.create_ticket(200, fund=group)
        holder = TicketHolder("h")
        ledger.create_ticket(20, currency=group, fund=holder)
        holder.start_competing()
        snapshot = ledger.snapshot()
        assert snapshot["group"]["active_amount"] == 20
        assert snapshot["group"]["base_value"] == pytest.approx(200)
        assert snapshot["base"]["active_amount"] == 200
        assert snapshot["group"]["backing_tickets"] == 1
        assert snapshot["group"]["issued_tickets"] == 1
