"""Tests for ticket transfers (paper sections 3.1 / 4.6)."""

import pytest

from repro.core.tickets import TicketHolder
from repro.core.transfers import split_transfer, transfer_funding
from repro.errors import TicketError


def make_client_with_currency(ledger, base_amount=800.0, issue=100.0):
    """A client funded the way kernel tasks are: base -> currency -> client."""
    currency = ledger.create_currency(f"client-{base_amount:g}")
    ledger.create_ticket(base_amount, fund=currency)
    client = TicketHolder("client")
    client.funding_currency = currency
    ledger.create_ticket(issue, currency=currency, fund=client)
    return client, currency


class TestTransferFunding:
    def test_base_denominated_transfer(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(500, fund=source)
        server = TicketHolder("server")
        server.start_competing()
        handle = transfer_funding(ledger, source, server)
        assert handle.amount == pytest.approx(500)
        assert server.funding() == pytest.approx(500)

    def test_currency_transfer_captures_whole_currency(self, ledger):
        # The paper's elegance: the blocked client's own ticket is
        # inactive, so the minted transfer ticket is the currency's only
        # active issue and captures its entire value.
        client, currency = make_client_with_currency(ledger, 800)
        server = TicketHolder("server")
        server.start_competing()
        handle = transfer_funding(ledger, client, server)
        assert server.funding() == pytest.approx(800)
        # ... and tracks later changes to the client's funding.
        currency.backing[0].set_amount(1200)
        assert server.funding() == pytest.approx(1200)
        handle.revoke()

    def test_revoke_restores_rights(self, ledger):
        client, _ = make_client_with_currency(ledger, 800)
        server = TicketHolder("server")
        server.start_competing()
        handle = transfer_funding(ledger, client, server)
        handle.revoke()
        assert server.funding() == 0.0
        assert not handle.active
        client.start_competing()
        assert client.funding() == pytest.approx(800)

    def test_revoke_is_idempotent(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        server = TicketHolder("server")
        handle = transfer_funding(ledger, source, server)
        handle.revoke()
        handle.revoke()
        assert handle.base_value() == 0.0

    def test_retarget_moves_funding(self, ledger):
        client, _ = make_client_with_currency(ledger, 600)
        s1, s2 = TicketHolder("s1"), TicketHolder("s2")
        s1.start_competing()
        s2.start_competing()
        handle = transfer_funding(ledger, client, s1)
        assert s1.funding() == pytest.approx(600)
        handle.retarget(s2)
        assert s1.funding() == 0.0
        assert s2.funding() == pytest.approx(600)

    def test_retarget_after_revoke_rejected(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        handle = transfer_funding(ledger, source, TicketHolder("s"))
        handle.revoke()
        with pytest.raises(TicketError):
            handle.retarget(TicketHolder("other"))

    def test_fractional_transfer(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(400, fund=source)
        server = TicketHolder("server")
        server.start_competing()
        handle = transfer_funding(ledger, source, server, fraction=0.25)
        assert handle.amount == pytest.approx(100)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, ledger, bad):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        with pytest.raises(TicketError):
            transfer_funding(ledger, source, TicketHolder("s"), fraction=bad)

    def test_transfer_can_fund_currency(self, ledger):
        # Mutex currencies are funded exactly this way (section 6.1).
        source = TicketHolder("src")
        ledger.create_ticket(300, fund=source)
        lock_currency = ledger.create_currency("lock")
        owner = TicketHolder("owner")
        ledger.create_ticket(1, currency=lock_currency, fund=owner)
        owner.start_competing()
        transfer_funding(ledger, source, lock_currency)
        assert owner.funding() == pytest.approx(300)


class TestSplitTransfer:
    def test_weights_divide_amount(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(900, fund=source)
        servers = [TicketHolder(f"s{i}") for i in range(3)]
        for server in servers:
            server.start_competing()
        handles = split_transfer(
            ledger, source, [(servers[0], 2.0), (servers[1], 1.0),
                             (servers[2], 0.0)]
        )
        assert len(handles) == 2  # zero-weight target skipped
        assert servers[0].funding() == pytest.approx(600)
        assert servers[1].funding() == pytest.approx(300)
        assert servers[2].funding() == 0.0

    def test_empty_targets_rejected(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        with pytest.raises(TicketError):
            split_transfer(ledger, source, [])

    def test_zero_total_weight_rejected(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        with pytest.raises(TicketError):
            split_transfer(ledger, source, [(TicketHolder("s"), 0.0)])

    def test_negative_weight_rejected(self, ledger):
        source = TicketHolder("src")
        ledger.create_ticket(100, fund=source)
        with pytest.raises(TicketError):
            split_transfer(
                ledger, source,
                [(TicketHolder("a"), 2.0), (TicketHolder("b"), -1.0)],
            )
