"""Integration: kernel threads blocking on lottery-scheduled disk I/O."""


from repro.core.prng import ParkMillerPRNG
from repro.iosched.disk import Disk, LOTTERY
from repro.kernel.ipc import Port
from repro.kernel.syscalls import Compute, Receive
from tests.conftest import make_lottery_kernel


def make_io_thread(kernel, disk, client, io_kb, prng, counter):
    """A thread that loops: submit a read, block for it, compute."""
    port = Port(kernel, f"io:{client}")

    def body(ctx):
        while True:
            disk.submit(client, prng.randrange(10_000), io_kb,
                        on_complete=lambda r: port.send(None, r))
            yield Receive(port)
            yield Compute(5.0)
            counter[client] = counter.get(client, 0) + 1

    return body


class TestDiskKernelComposition:
    def test_dual_resource_shares_compose(self):
        """Two I/O-bound threads differing only in *disk* tickets: the
        disk lottery alone differentiates their item rates, because the
        shared CPU demand (5 ms per item) is far below capacity."""
        kernel = make_lottery_kernel(seed=61)
        disk = Disk(kernel.engine, scheduler=LOTTERY,
                    tickets={"fast": 300.0, "slow": 100.0},
                    prng=ParkMillerPRNG(62))
        counter = {}
        prng = ParkMillerPRNG(63)
        kernel.spawn(
            make_io_thread(kernel, disk, "fast", 64, prng, counter),
            "fast", tickets=100,
        )
        kernel.spawn(
            make_io_thread(kernel, disk, "slow", 64, prng, counter),
            "slow", tickets=100,
        )
        # A disk-hog keeps the disk saturated so the lottery matters.
        hog_prng = ParkMillerPRNG(64)

        def hog_pump(request=None):
            disk.submit("hog", hog_prng.randrange(10_000), 128,
                        on_complete=hog_pump)

        for _ in range(4):
            hog_pump()
        disk.set_tickets("hog", 400.0)
        kernel.run_until(120_000)
        assert counter["fast"] > 0 and counter["slow"] > 0
        ratio = counter["fast"] / counter["slow"]
        # One request in flight each: service rate ~ tickets => ~3:1,
        # compressed by the equal per-item CPU slice and queueing.
        assert 1.8 < ratio < 4.0

    def test_io_threads_release_cpu_while_waiting(self):
        """Blocked-on-disk threads burn no CPU: a compute thread gets
        nearly the whole processor despite two I/O loops running."""
        kernel = make_lottery_kernel(seed=71)
        disk = Disk(kernel.engine, scheduler=LOTTERY,
                    prng=ParkMillerPRNG(72))
        counter = {}
        prng = ParkMillerPRNG(73)
        for name in ("io1", "io2"):
            kernel.spawn(
                make_io_thread(kernel, disk, name, 512, prng, counter),
                name, tickets=100,
            )
        from tests.conftest import spin_body

        spinner = kernel.spawn(spin_body(), "spin", tickets=100)
        kernel.run_until(60_000)
        io_cpu = sum(
            t.cpu_time for t in kernel.threads if t.name != "spin"
        )
        # Each item costs 5 ms CPU against ~30 ms of disk service.
        assert spinner.cpu_time > 45_000
        assert spinner.cpu_time + io_cpu <= 60_000 + 1e-6
        assert counter["io1"] > 100
