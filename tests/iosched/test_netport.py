"""Tests for the virtual-circuit link scheduler (paper section 6)."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.iosched.netport import LinkScheduler
from repro.sim.engine import Engine


class TestLinkBasics:
    def test_open_and_lookup(self, engine):
        link = LinkScheduler(engine)
        circuit = link.open_circuit("x", 10.0)
        assert link.circuit("x") is circuit
        with pytest.raises(ReproError):
            link.circuit("ghost")
        with pytest.raises(ReproError):
            link.open_circuit("x", 5.0)

    def test_parameter_validation(self, engine):
        with pytest.raises(ReproError):
            LinkScheduler(engine, cell_time=0)
        with pytest.raises(ReproError):
            LinkScheduler(engine, mode="weird")
        link = LinkScheduler(engine)
        with pytest.raises(ReproError):
            link.open_circuit("neg", -1.0)

    def test_cells_forward_at_cell_rate(self, engine):
        link = LinkScheduler(engine, cell_time=2.0)
        link.open_circuit("x", 1.0)
        link.arrive("x", 5)
        engine.run()
        assert link.circuit("x").cells_forwarded == 5
        assert engine.now == pytest.approx(10.0)

    def test_queue_limit_drops(self, engine):
        link = LinkScheduler(engine, queue_limit=3)
        link.open_circuit("x", 1.0)
        link.arrive("x", 10)
        circuit = link.circuit("x")
        # One cell may already be in service; queue holds <= 3.
        assert circuit.cells_dropped >= 6

    def test_delays_recorded(self, engine):
        link = LinkScheduler(engine, cell_time=1.0)
        link.open_circuit("x", 1.0)
        link.arrive("x", 3)
        engine.run()
        assert link.circuit("x").mean_delay() > 0


class TestProportionalForwarding:
    def test_lottery_shares_track_tickets(self):
        engine = Engine()
        link = LinkScheduler(engine, cell_time=0.01, mode="lottery",
                             queue_limit=100_000,
                             prng=ParkMillerPRNG(3))
        for name, tickets in (("x", 400.0), ("y", 200.0), ("z", 100.0)):
            link.open_circuit(name, tickets)
            link.arrive(name, 60_000)
        engine.run(until=0.01 * 60_000)  # one-third of the backlog
        shares = link.shares()
        assert shares["x"] / shares["z"] == pytest.approx(4.0, rel=0.15)
        assert shares["y"] / shares["z"] == pytest.approx(2.0, rel=0.15)

    def test_round_robin_splits_evenly(self):
        engine = Engine()
        link = LinkScheduler(engine, cell_time=0.01, mode="round-robin",
                             queue_limit=100_000)
        for name, tickets in (("x", 400.0), ("y", 100.0)):
            link.open_circuit(name, tickets)
            link.arrive(name, 50_000)
        engine.run(until=0.01 * 50_000)
        shares = link.shares()
        assert shares["x"] == pytest.approx(shares["y"], rel=0.02)

    def test_idle_circuit_gets_no_cells_charged(self):
        engine = Engine()
        link = LinkScheduler(engine, mode="lottery",
                             prng=ParkMillerPRNG(4))
        link.open_circuit("busy", 1.0)
        link.open_circuit("idle", 1000.0)
        link.arrive("busy", 100)
        engine.run()
        assert link.circuit("busy").cells_forwarded == 100
        assert link.circuit("idle").cells_forwarded == 0
