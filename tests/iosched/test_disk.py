"""Tests for the lottery-scheduled disk (paper section 6, footnote 7)."""

import pytest

from repro.core.prng import ParkMillerPRNG
from repro.errors import ReproError
from repro.iosched.disk import Disk, FIFO, LOTTERY, ROUND_ROBIN
from repro.sim.engine import Engine


def saturate(disk, clients, requests=200, seed=4):
    stream = ParkMillerPRNG(seed)
    for client in clients:
        for _ in range(requests):
            disk.submit(client, stream.randrange(10_000), size_kb=64)


class TestDiskBasics:
    def test_single_request_completes(self, engine):
        disk = Disk(engine)
        done = []
        request = disk.submit("a", 100, 64, on_complete=done.append)
        engine.run()
        assert done == [request]
        assert request.response_time > 0
        assert disk.throughput_kb("a") == 64

    def test_service_time_model(self, engine):
        disk = Disk(engine, seek_ms_per_1000_sectors=4.0, rotational_ms=4.0,
                    transfer_kb_per_ms=20.0)
        request = disk.submit("a", 1000, 40)
        engine.run()
        # seek 4ms + rotation 4ms + transfer 2ms.
        assert request.response_time == pytest.approx(10.0)

    def test_invalid_parameters(self, engine):
        disk = Disk(engine)
        with pytest.raises(ReproError):
            disk.submit("a", -1, 64)
        with pytest.raises(ReproError):
            disk.submit("a", 0, 0)
        with pytest.raises(ReproError):
            Disk(engine, scheduler="elevator")
        with pytest.raises(ReproError):
            disk.set_tickets("a", -1)

    def test_pending_count(self, engine):
        disk = Disk(engine)
        disk.submit("a", 0, 64)
        disk.submit("a", 10, 64)
        assert disk.pending() == 2
        engine.run()
        assert disk.pending() == 0

    def test_requests_complete_under_all_schedulers(self):
        for scheduler in (LOTTERY, FIFO, ROUND_ROBIN):
            engine = Engine()
            disk = Disk(engine, scheduler=scheduler)
            saturate(disk, ["a", "b"], requests=50)
            engine.run()
            assert len(disk.completed["a"]) == 50
            assert len(disk.completed["b"]) == 50


class TestProportionalService:
    def test_lottery_shares_track_tickets(self):
        engine = Engine()
        disk = Disk(engine, scheduler=LOTTERY,
                    tickets={"rich": 300.0, "poor": 100.0},
                    prng=ParkMillerPRNG(6))
        saturate(disk, ["rich", "poor"], requests=2000)
        engine.run(until=40_000)  # stop while both stay backlogged
        ratio = disk.throughput_kb("rich") / disk.throughput_kb("poor")
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_round_robin_ignores_tickets(self):
        engine = Engine()
        disk = Disk(engine, scheduler=ROUND_ROBIN,
                    tickets={"rich": 300.0, "poor": 100.0})
        saturate(disk, ["rich", "poor"], requests=2000)
        engine.run(until=40_000)
        ratio = disk.throughput_kb("rich") / disk.throughput_kb("poor")
        assert ratio == pytest.approx(1.0, rel=0.1)

    def test_fifo_serves_in_arrival_order(self, engine):
        disk = Disk(engine, scheduler=FIFO)
        order = []
        for i, client in enumerate(["a", "b", "a", "b"]):
            disk.submit(client, i * 10, 64,
                        on_complete=lambda r: order.append(r.client))
        engine.run()
        assert order == ["a", "b", "a", "b"]

    def test_lottery_response_times_favour_funded(self):
        engine = Engine()
        disk = Disk(engine, scheduler=LOTTERY,
                    tickets={"rich": 500.0, "poor": 100.0},
                    prng=ParkMillerPRNG(9))
        saturate(disk, ["rich", "poor"], requests=500)
        engine.run(until=60_000)
        assert (disk.mean_response_time("rich")
                < disk.mean_response_time("poor"))

    def test_unknown_client_defaults_to_one_ticket(self):
        engine = Engine()
        disk = Disk(engine, scheduler=LOTTERY, tickets={"known": 99.0},
                    prng=ParkMillerPRNG(10))
        saturate(disk, ["known", "unknown"], requests=1000)
        engine.run(until=15_000)
        assert disk.throughput_kb("known") > disk.throughput_kb("unknown") * 5
