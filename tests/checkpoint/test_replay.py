"""Replay: dispatch-stream recording, diffing, and the chaos crash test."""

import pytest

from repro.checkpoint import (
    build_recipe,
    diff_streams,
    format_divergence,
    read_stream_file,
    restore,
    save,
    write_stream_file,
)
from repro.errors import CheckpointError


def test_identical_runs_produce_identical_streams():
    left = build_recipe("lottery-mix", {"seed": 4})
    right = build_recipe("lottery-mix", {"seed": 4})
    left.advance(5_000.0)
    right.advance(5_000.0)
    entries = left.components["recorder"].entries
    assert len(entries) > 10
    assert diff_streams(entries, right.components["recorder"].entries) is None


def test_different_seeds_diverge_with_named_triple():
    left = build_recipe("lottery-mix", {"seed": 4})
    right = build_recipe("lottery-mix", {"seed": 5})
    left.advance(5_000.0)
    right.advance(5_000.0)
    divergence = diff_streams(left.components["recorder"].entries,
                              right.components["recorder"].entries)
    assert divergence is not None
    assert divergence.field in ("time", "tid", "name", "draw")
    report = format_divergence(divergence)
    assert f"event #{divergence.index}" in report


def test_diff_streams_reports_first_mismatch_and_prefix():
    base = [{"time": t, "tid": 1, "name": "a", "draw": t * 7}
            for t in range(5)]
    tampered = [dict(e) for e in base]
    tampered[3]["draw"] = 999
    divergence = diff_streams(base, tampered)
    assert (divergence.index, divergence.field) == (3, "draw")
    assert divergence.expected == 21 and divergence.actual == 999

    divergence = diff_streams(base, base[:2])
    assert (divergence.index, divergence.field) == (2, "length")
    assert diff_streams(base, [dict(e) for e in base]) is None


def test_stream_file_round_trip_and_corruption(tmp_path):
    entries = [{"time": 1.0, "tid": 2, "name": "x", "draw": 3}]
    path = str(tmp_path / "run.stream")
    write_stream_file(path, entries)
    assert read_stream_file(path) == entries
    text = open(path).read()
    open(path, "w").write(text.replace('"draw": 3', '"draw": 4'))
    with pytest.raises(CheckpointError, match="integrity"):
        read_stream_file(path)


def test_chaos_crash_restore_is_bit_identical(tmp_path):
    """The acceptance criterion: crash at t=T, restore, continue, and
    the trace stream matches the uninterrupted run with zero divergence."""
    duration, crash_at = 90_000.0, 40_000.0

    reference = build_recipe("chaos-fairness", {"seed": 2718})
    reference.advance(duration)
    expected = reference.components["recorder"].entries

    crashed = build_recipe("chaos-fairness", {"seed": 2718})
    crashed.advance(crash_at)
    path = str(tmp_path / "crash.ckpt")
    save(crashed, path)
    del crashed  # the crash: the live system is gone
    restored, _ = restore(path)
    restored.advance(duration)
    actual = restored.components["recorder"].entries

    assert len(expected) > 1_000
    divergence = diff_streams(expected, actual)
    assert divergence is None, format_divergence(divergence)


def test_draw_field_tracks_prng_position():
    handle = build_recipe("lottery-mix", {"seed": 8})
    handle.advance(2_000.0)
    draws = [e["draw"] for e in handle.components["recorder"].entries]
    assert all(isinstance(d, int) for d in draws)
    assert len(set(draws)) > 1  # the stream position moves between wins
