"""Canonical encoding, checksums, diffs, and the checkpoint file format."""

import json
import os

import pytest

from repro.checkpoint.statetree import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    build_payload,
    canonical_json,
    diff_trees,
    format_mismatches,
    read_checkpoint_file,
    tree_checksum,
    write_checkpoint_file,
)
from repro.errors import CheckpointError


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == \
        canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1})


def test_canonical_json_rejects_nan_and_unserializable():
    with pytest.raises(CheckpointError):
        canonical_json({"x": float("nan")})
    with pytest.raises(CheckpointError):
        canonical_json({"x": object()})


def test_checksum_changes_with_content():
    base = {"a": 1, "b": [1, 2, 3]}
    assert tree_checksum(base) == tree_checksum(dict(base))
    assert tree_checksum(base) != tree_checksum({"a": 1, "b": [1, 2, 4]})


def test_diff_trees_names_first_mismatch_path():
    expected = {"kernel": {"running": 3, "queue": [1, 2]}}
    actual = {"kernel": {"running": 4, "queue": [1, 2]}}
    mismatches = diff_trees(expected, actual)
    assert mismatches == [("state.kernel.running", 3, 4)]
    assert "state.kernel.running" in format_mismatches(mismatches)


def test_diff_trees_reports_missing_keys_and_length():
    mismatches = diff_trees({"a": 1}, {"b": 2})
    paths = {path for path, _, _ in mismatches}
    assert paths == {"state.a", "state.b"}
    mismatches = diff_trees({"q": [1, 2]}, {"q": [1]})
    assert ("state.q.length", 2, 1) in mismatches


def test_diff_trees_identical_is_empty():
    tree = {"a": [1, {"b": 2.5}], "c": None}
    assert diff_trees(tree, json.loads(canonical_json(tree))) == []


def test_diff_trees_respects_limit():
    expected = {str(i): i for i in range(100)}
    actual = {str(i): i + 1 for i in range(100)}
    assert len(diff_trees(expected, actual, limit=5)) == 5


def test_payload_round_trips_through_file(tmp_path):
    payload = build_payload("lottery-mix", {"seed": 3}, 1234.5,
                            {"kernel": {"running": None}})
    path = str(tmp_path / "a.ckpt")
    write_checkpoint_file(path, payload)
    loaded = read_checkpoint_file(path)
    assert loaded == payload
    assert loaded["format"] == FORMAT_NAME
    assert loaded["schema_version"] == SCHEMA_VERSION


def test_atomic_write_leaves_no_temp_files(tmp_path):
    payload = build_payload("lottery-mix", {}, 0.0, {})
    write_checkpoint_file(str(tmp_path / "a.ckpt"), payload)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["a.ckpt"]


def test_corrupted_checkpoint_is_rejected_not_loaded(tmp_path):
    payload = build_payload("lottery-mix", {"seed": 3}, 10.0,
                            {"counter": 41})
    path = str(tmp_path / "a.ckpt")
    write_checkpoint_file(path, payload)
    text = open(path).read()
    open(path, "w").write(text.replace('"counter": 41', '"counter": 42'))
    with pytest.raises(CheckpointError, match="integrity"):
        read_checkpoint_file(path)


def test_truncated_and_non_json_files_are_rejected(tmp_path):
    path = str(tmp_path / "a.ckpt")
    open(path, "w").write('{"format": "repro-checkpoint", "sch')
    with pytest.raises(CheckpointError, match="JSON"):
        read_checkpoint_file(path)
    open(path, "w").write("[1, 2, 3]")
    with pytest.raises(CheckpointError):
        read_checkpoint_file(path)


def test_wrong_format_and_version_are_rejected(tmp_path):
    payload = build_payload("lottery-mix", {}, 0.0, {})
    path = str(tmp_path / "a.ckpt")

    wrong_format = dict(payload, format="something-else")
    write_checkpoint_file(path, wrong_format)
    with pytest.raises(CheckpointError, match="format"):
        read_checkpoint_file(path)

    wrong_version = dict(payload, schema_version=SCHEMA_VERSION + 1)
    write_checkpoint_file(path, wrong_version)
    with pytest.raises(CheckpointError, match="schema version"):
        read_checkpoint_file(path)


def test_missing_fields_are_rejected(tmp_path):
    payload = build_payload("lottery-mix", {}, 0.0, {})
    del payload["recipe"]
    path = str(tmp_path / "a.ckpt")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    with pytest.raises(CheckpointError, match="missing"):
        read_checkpoint_file(path)


def test_missing_file_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint_file(os.path.join(str(tmp_path), "nope.ckpt"))
