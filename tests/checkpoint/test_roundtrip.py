"""Round-trip property tests: save -> restore -> verify, per subsystem.

Restore re-executes the checkpoint's recipe and diffs the rebuilt state
tree against the saved one, so a clean ``restore()`` *is* the round-trip
property: every subsystem the recipe touches (PRNG streams, event queue,
run queues, tickets, compensation, IPC, memory, disks, cluster
membership) reconstructed bit-for-bit.
"""

import json

import pytest

from repro.checkpoint import (
    build_recipe,
    capture_payload,
    capture_tree,
    diff_trees,
    restore,
    save,
)
from repro.checkpoint.statetree import build_payload, write_checkpoint_file
from repro.errors import CheckpointError, DivergenceError


@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("use_tree", [False, True])
def test_lottery_mix_round_trip(tmp_path, seed, use_tree):
    handle = build_recipe("lottery-mix", {"seed": seed, "use_tree": use_tree})
    handle.advance(3_000.0)
    path = str(tmp_path / "mix.ckpt")
    payload = save(handle, path)
    restored, loaded = restore(path)
    assert loaded == payload
    assert restored.now == handle.now
    assert diff_trees(capture_tree(handle), capture_tree(restored)) == []


@pytest.mark.parametrize("seed", [2718, 9])
def test_chaos_cluster_round_trip(tmp_path, seed):
    handle = build_recipe("chaos-fairness", {"seed": seed})
    # Past the first crash (t=30s): dead node, reclaimed tickets,
    # evacuations and fault log all inside the captured tree.
    handle.advance(35_000.0)
    path = str(tmp_path / "chaos.ckpt")
    save(handle, path)
    restored, _ = restore(path)
    assert diff_trees(capture_tree(handle), capture_tree(restored)) == []
    cluster = restored.components["cluster"]
    assert cluster.node_crashes == 1


def test_checkpoint_at_every_quantum(tmp_path):
    """Crash-at-every-quantum sweep: any boundary is a valid checkpoint."""
    quantum = 100.0
    handle = build_recipe("lottery-mix", {"seed": 5, "quantum": quantum})
    path = str(tmp_path / "q.ckpt")
    for boundary in range(1, 16):
        handle.advance(boundary * quantum)
        save(handle, path)
        # Drop the live system; continue from the file alone.
        handle, _ = restore(path)
        assert handle.now == boundary * quantum


def test_restore_continues_identically(tmp_path):
    reference = build_recipe("lottery-mix", {"seed": 11})
    reference.advance(8_000.0)
    expected = capture_tree(reference)

    interrupted = build_recipe("lottery-mix", {"seed": 11})
    interrupted.advance(2_500.0)
    path = str(tmp_path / "mid.ckpt")
    save(interrupted, path)
    restored, _ = restore(path)
    restored.advance(8_000.0)
    assert diff_trees(expected, capture_tree(restored)) == []


def test_tampered_state_with_valid_checksum_raises_divergence(tmp_path):
    """A re-checksummed edit passes integrity but fails verification."""
    handle = build_recipe("lottery-mix", {"seed": 2})
    handle.advance(1_000.0)
    payload = capture_payload(handle)
    state = json.loads(json.dumps(payload["state"]))
    state["kernel"]["dispatch_count"] += 1
    forged = build_payload(payload["recipe"], payload["args"],
                           payload["time_ms"], state)
    path = str(tmp_path / "forged.ckpt")
    write_checkpoint_file(path, forged)
    with pytest.raises(DivergenceError, match="dispatch_count"):
        restore(path)


def test_unknown_recipe_is_rejected(tmp_path):
    payload = build_payload("no-such-recipe", {}, 0.0, {})
    path = str(tmp_path / "bad.ckpt")
    write_checkpoint_file(path, payload)
    with pytest.raises(CheckpointError, match="unknown recipe"):
        restore(path)


def test_handle_refuses_to_advance_backwards():
    handle = build_recipe("lottery-mix", {"seed": 1})
    handle.advance(500.0)
    with pytest.raises(CheckpointError, match="backwards"):
        handle.advance(100.0)


def test_capture_is_json_serializable_and_stable():
    handle = build_recipe("chaos-fairness", {"seed": 3})
    handle.advance(5_000.0)
    tree = capture_tree(handle)
    assert json.loads(json.dumps(tree)) == tree
    assert diff_trees(tree, capture_tree(handle)) == []  # capture is pure
