"""The checkpoint-facing CLI commands: save / load / replay."""

import pytest

from repro.checkpoint import build_recipe
from repro.cli.commands import chaos, load, replay, save
from repro.cli.state import CommandState
from repro.errors import CheckpointError, ReproError


@pytest.fixture
def state():
    return CommandState()


def attach_simulation(state, seed=3, until=2_000.0):
    handle = build_recipe("lottery-mix", {"seed": seed})
    handle.advance(until)
    state.simulation = handle
    return handle


class TestSave:
    def test_requires_live_simulation(self, state, tmp_path):
        with pytest.raises(ReproError, match="no live simulation"):
            save(state, [str(tmp_path / "a.ckpt")])

    def test_usage(self, state):
        with pytest.raises(ReproError):
            save(state, [])

    def test_saves_live_simulation(self, state, tmp_path):
        attach_simulation(state)
        path = str(tmp_path / "a.ckpt")
        output = save(state, [path])
        assert path in output and "lottery-mix" in output


class TestLoad:
    def test_round_trip_becomes_live_simulation(self, state, tmp_path):
        handle = attach_simulation(state)
        path = str(tmp_path / "a.ckpt")
        save(state, [path])
        state.simulation = None
        output = load(state, [path])
        assert "verified, invariants OK" in output
        assert state.simulation is not None
        assert state.simulation.now == handle.now

    def test_corrupted_file_is_rejected(self, state, tmp_path):
        attach_simulation(state)
        path = str(tmp_path / "a.ckpt")
        save(state, [path])
        text = open(path).read()
        open(path, "w").write(text.replace("lottery-mix", "lottery-mlx"))
        with pytest.raises(CheckpointError, match="integrity"):
            load(state, [path])
        with pytest.raises(ReproError):
            load(state, [str(tmp_path / "missing.ckpt")])


class TestReplay:
    def test_against_live_run_reports_zero_divergence(self, state, tmp_path):
        attach_simulation(state, until=1_000.0)
        path = str(tmp_path / "a.ckpt")
        save(state, [path])
        state.simulation.advance(4_000.0)
        output = replay(state, [path])
        assert "against the live run" in output
        assert "zero divergence" in output

    def test_without_live_simulation_self_checks(self, state, tmp_path):
        attach_simulation(state)
        path = str(tmp_path / "a.ckpt")
        save(state, [path])
        state.simulation = None
        output = replay(state, [path])
        assert "two independent restores" in output
        assert "zero divergence" in output


def test_chaos_attaches_simulation_for_checkpointing(state, tmp_path):
    chaos(state, ["2718", "40000"])
    assert state.simulation is not None
    assert state.simulation.recipe == "chaos-fairness"
    output = save(state, [str(tmp_path / "chaos.ckpt")])
    assert "chaos-fairness" in output
