"""Snapshotting around the dispatch window (kill/preempt hardening).

A restore must never land inside a torn dispatch: ``kill`` and
``preempt_running`` tear the whole window down (quantum accounting
included), ``check_dispatch_window`` audits coherence, and
``Kernel.snapshot_state`` refuses to capture an incoherent window.
"""

import pytest

from repro.errors import KernelError
from tests.conftest import make_lottery_kernel, spin_body


def test_preempt_resets_quantum_accounting():
    kernel = make_lottery_kernel(quantum=100.0)
    kernel.spawn(spin_body(30.0), "a", tickets=100)
    kernel.run_until(130.0)  # mid-quantum: 30ms chunks against 100ms quanta
    assert kernel.running is not None
    kernel.preempt_running()
    assert kernel.running is None
    assert kernel._quantum_left == 0.0
    assert kernel._instant_syscalls == 0
    assert kernel.check_dispatch_window() == []
    kernel.snapshot_state()  # must not raise


def test_kill_running_thread_leaves_coherent_window():
    kernel = make_lottery_kernel(quantum=100.0)
    victim = kernel.spawn(spin_body(30.0), "victim", tickets=100)
    kernel.spawn(spin_body(30.0), "other", tickets=100)
    kernel.run_until(130.0)
    running = kernel.running
    assert running is not None
    kernel.kill(running)
    assert kernel.check_dispatch_window() == []
    kernel.snapshot_state()  # must not raise
    assert victim is running or victim.alive


def test_snapshot_inside_dispatch_window_is_coherent_or_refused():
    """Regression: snapshot at times landing mid-dispatch.

    With a context-switch cost the kernel spends windows with an
    in-flight event; sampling many offsets must always yield either a
    coherent snapshot or an explicit KernelError -- never a silently
    torn tree.
    """
    kernel = make_lottery_kernel(quantum=50.0)
    kernel.context_switch_cost = 5.0
    kernel.spawn(spin_body(20.0), "a", tickets=300)
    kernel.spawn(spin_body(20.0), "b", tickets=100)
    captured = 0
    for step in range(1, 60):
        kernel.run_until(step * 7.0)  # offsets straddling switch windows
        try:
            tree = kernel.snapshot_state()
        except KernelError:
            continue
        captured += 1
        if tree["running"] is None:
            assert tree["quantum_left"] == 0.0
    assert captured > 0


def test_snapshot_refuses_incoherent_window():
    kernel = make_lottery_kernel(quantum=100.0)
    kernel.spawn(spin_body(30.0), "a", tickets=100)
    kernel.run_until(130.0)
    # Forge the torn-window bug the abort path used to leave behind.
    kernel.running = None
    kernel._quantum_left = 40.0
    assert kernel.check_dispatch_window() != []
    with pytest.raises(KernelError, match="incoherent dispatch window"):
        kernel.snapshot_state()
